//! Umbrella crate of the rFaaS reproduction (IPDPS 2023).
//!
//! Re-exports every workspace crate so examples and downstream users can pull
//! the whole system in with a single dependency. See the `rfaas` crate for
//! the platform itself, `rdma_fabric` for the software RDMA substrate, and
//! `DESIGN.md` / `EXPERIMENTS.md` at the repository root for the system
//! inventory and the per-figure reproduction index.

pub use cluster_sim;
pub use faas_baselines;
pub use mpi_sim;
pub use net_stack;
pub use rdma_fabric;
pub use rfaas;
pub use sandbox;
pub use sim_core;
pub use state_plane;
pub use workloads;
