//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build container has no crates.io access, so this crate provides a
//! deterministic random-input test harness behind the same macro surface:
//! `proptest! { #[test] fn f(x: Vec<u8>, y in 0u32..100) { ... } }` plus
//! `prop_assert!` / `prop_assert_eq!`. Each property runs [`cases()`] cases
//! ([`CASES`] by default, overridable through the `PROPTEST_CASES`
//! environment variable as in real proptest) with inputs drawn from a
//! fixed-seed SplitMix64 stream, so failures are reproducible. There is no
//! shrinking — a failing case asserts directly with the generated inputs
//! visible in the panic message via `assert_eq!`.

/// Default number of cases each property runs (proptest's default is 256).
pub const CASES: usize = 256;

/// Cases each property actually runs: the `PROPTEST_CASES` environment
/// variable overrides the default — mirroring real proptest — so a nightly
/// CI profile can deep-fuzz (`PROPTEST_CASES=1024`) without slowing the
/// regular test gate. Read once; invalid or zero values fall back to the
/// default.
pub fn cases() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| cases_from(std::env::var("PROPTEST_CASES").ok()))
}

/// Pure resolution of the case count from an (optional) override string.
pub fn cases_from(env: Option<String>) -> usize {
    env.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(CASES)
}

/// Deterministic generator backing input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Seed derived from the property name so each test has its own stream but
/// reruns are identical.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Types that can generate an arbitrary instance (type-annotated parameters:
/// `fn prop(x: Vec<u8>)`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        // Mix plain uniform values with boundary-heavy ones so edge cases
        // (0, MAX, small counts) appear often, as proptest's strategies do.
        match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            2 => rng.below(16),
            _ => rng.next_u64(),
        }
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        u64::arbitrary(rng) as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities and NaN too,
        // mixed with well-behaved uniform values.
        if rng.below(2) == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(33) as usize;
        (0..len)
            .map(|_| {
                // Mostly ASCII with occasional multi-byte scalars.
                if rng.below(8) == 0 {
                    char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('\u{00A1}')
                } else {
                    (0x20 + rng.below(0x5F)) as u8 as char
                }
            })
            .collect()
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// Explicit sampling strategies (`x in 0u32..100` parameters).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one sample.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The property-test entry macro. Mirrors `proptest::proptest!` for
/// parameter lists mixing `name: Type` (→ [`Arbitrary`]) and
/// `name in strategy` (→ [`Strategy`]) forms.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($params:tt)* ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let mut prop_rng =
                    $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _prop_case in 0..$crate::cases() {
                    $crate::__proptest_bind!(prop_rng, $($params)*);
                    $body
                }
            }
        )*
    };
}

/// Internal: expand a parameter list into `let` bindings. Tail-recursive
/// token muncher so the two parameter forms can be freely mixed.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Property assertion; without shrinking this is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; without shrinking this is `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #[test]
        fn typed_and_strategy_params_mix(a in 10u32..20, b: u8, xs: Vec<u8>) {
            crate::prop_assert!((10..20).contains(&a));
            crate::prop_assert!(u32::from(b) <= 255);
            crate::prop_assert!(xs.len() <= 64);
        }

        #[test]
        fn inclusive_ranges_hit_bounds(x in 3u8..=7) {
            crate::prop_assert!((3..=7).contains(&x));
        }
    }

    #[test]
    fn case_count_resolution() {
        assert_eq!(cases_from(None), CASES);
        assert_eq!(cases_from(Some("1024".into())), 1024);
        assert_eq!(cases_from(Some(" 32 ".into())), 32);
        // Invalid or zero overrides fall back to the default.
        assert_eq!(cases_from(Some("0".into())), CASES);
        assert_eq!(cases_from(Some("lots".into())), CASES);
        // The live resolver agrees with the pure one for this process.
        assert_eq!(cases(), cases_from(std::env::var("PROPTEST_CASES").ok()));
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::new(seed_from_name("p"));
        let mut b = TestRng::new(seed_from_name("p"));
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn u64_arbitrary_emits_boundaries() {
        let mut rng = TestRng::new(1);
        let values: Vec<u64> = (0..256).map(|_| u64::arbitrary(&mut rng)).collect();
        assert!(values.contains(&0));
        assert!(values.contains(&u64::MAX));
    }
}
