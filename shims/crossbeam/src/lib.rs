//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of `crossbeam::channel` the workspace uses: cloneable multi-producer
//! multi-consumer channels with blocking, timeout and non-blocking receives,
//! plus queue-length introspection. Performance is a plain mutex + condvar
//! queue — adequate for the simulation's control-plane traffic; swap in the
//! real crate when a registry is reachable.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn new() -> Arc<Shared<T>> {
            Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                senders: AtomicUsize::new(1),
                receivers: AtomicUsize::new(1),
            })
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders were dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Shared::new();
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a "bounded" channel.
    ///
    /// The capacity is accepted for API compatibility but not enforced: sends
    /// never block. Every bounded channel in this workspace is a rendezvous
    /// reply slot where the sender fires exactly once, so the relaxation is
    /// unobservable.
    pub fn bounded<T>(_capacity: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Send `value`, failing only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives, all senders disconnect, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, result) = self
                    .shared
                    .available
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_blocks_until_cross_thread_send() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || rx.recv().unwrap());
            thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn dropping_senders_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn dropping_receiver_fails_send() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        }

        #[test]
        fn clones_share_the_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(7).unwrap();
            assert_eq!(rx2.recv().unwrap(), 7);
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
