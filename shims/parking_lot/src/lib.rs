//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build container has no access to crates.io, so this workspace ships a
//! small API-compatible subset of `parking_lot` backed by `std::sync`
//! primitives. The semantic difference that matters to callers — parking_lot
//! locks do not poison, `lock()`/`read()`/`write()` return guards directly —
//! is preserved by unwrapping poisoned guards (a panic while holding a lock
//! still propagates the payload to the next locker instead of deadlocking).
//!
//! Only the surface the rFaaS workspace uses is provided:
//! [`Mutex`], [`RwLock`], [`Condvar`] (with [`Condvar::wait`] /
//! [`Condvar::wait_until`] on a guard held by reference), and the guard types.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take the
/// underlying std guard by value (std's condvar API consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_until`]: reports whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable matching parking_lot's guard-by-reference API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is released while waiting and
    /// re-acquired before returning (spurious wake-ups are possible).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn condvar_wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let result = cv.wait_until(&mut guard, Instant::now() + Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
