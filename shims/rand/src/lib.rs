//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build container has no crates.io access, so this crate supplies the
//! small `rand` surface the workspace uses: [`SeedableRng::seed_from_u64`],
//! the [`Rng`] convenience trait, and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and of
//! ample quality for workload payload generation; it is *not* the CSPRNG the
//! real `StdRng` provides, which is irrelevant here (nothing in the
//! simulation needs cryptographic randomness).

/// A source of random 64-bit values.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its full range (or `[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample in `[low, high)`. Panics if the range is empty.
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable uniformly over their natural domain.
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types sampleable uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Draw one sample in `[low, high)`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range requires low < high");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl UniformRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range requires low < high");
        low + f64::sample(rng) * (high - low)
    }
}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u64..25);
            assert!((5..25).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
