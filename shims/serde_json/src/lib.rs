//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the shim `serde::Value` tree as JSON text and parses JSON text
//! back into it. Supports [`to_string`], [`to_string_pretty`] and
//! [`from_str`] — the surface this workspace uses for machine-readable
//! results tables.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize `value` to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        // JSON has no Infinity/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("rFaaS".into())),
            ("x".into(), Value::F64(1.5)),
            ("n".into(), Value::U64(7)),
            ("ok".into(), Value::Bool(true)),
            ("tags".into(), Value::Array(vec![Value::Null])),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(
            out,
            r#"{"name":"rFaaS","x":1.5,"n":7,"ok":true,"tags":[null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        write_value(&Value::String("a\"b\\c\nd".into()), &mut out);
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parses_what_it_renders() {
        let text = r#"{"series":"hot","x":1024,"median":3.96,"nested":[1,-2,3.5],"none":null}"#;
        let v: Value = {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn round_trips_through_traits() {
        let xs = vec![1u64, 2, u64::MAX];
        let text = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u8, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Vec<u8>>("[1] junk").is_err());
    }
}
