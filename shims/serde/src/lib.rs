//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build container has no crates.io access, so this crate provides a
//! JSON-oriented serialization facade with the same *spelling* as serde —
//! `use serde::{Serialize, Deserialize}` and `#[derive(Serialize,
//! Deserialize)]` work unchanged — but a much smaller model: values
//! serialize into a [`Value`] tree (see the `serde_json` shim for text output)
//! instead of driving a generic `Serializer`. The derive macros live in
//! `serde_derive` and are re-exported here, matching serde's `derive`
//! feature layout.
//!
//! When a registry is reachable again, deleting the `shims/` path overrides
//! and depending on real serde is designed to be a drop-in change for every
//! call site in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON value tree — the serialization target of the shim.
///
/// Integers are kept exact (separate from `F64`) so `u64` nanosecond
/// timestamps survive a round-trip undamaged.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (exact).
    U64(u64),
    /// Signed integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            _ => Err(Error::new(format!(
                "expected object with field `{name}`, found {self:?}"
            ))),
        }
    }

    /// Look up an element of an array value.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::new(format!("missing array element {i}"))),
            _ => Err(Error::new(format!("expected array, found {self:?}"))),
        }
    }

    /// Interpret the value as an enum variant name.
    pub fn as_variant(&self) -> Result<&str, Error> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(Error::new(format!(
                "expected variant string, found {self:?}"
            ))),
        }
    }
}

/// Error produced by the (de)serialization facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    /// Error for an unknown enum variant string.
    pub fn unknown_variant(found: &str) -> Error {
        Error::new(format!("unknown variant `{found}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Build the value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    Value::I64(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    _ => Err(Error::new(format!("expected integer, found {value:?}"))),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range"))),
                    _ => Err(Error::new(format!("expected integer, found {value:?}"))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::new(format!("expected number, found {value:?}"))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Keep exact: u64-sized values stay integers, larger ones become
        // decimal strings (JSON numbers are f64-lossy past 2^53 anyway).
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::String(s) => s
                .parse::<u128>()
                .map_err(|_| Error::new(format!("invalid u128 `{s}`"))),
            _ => Err(Error::new(format!("expected integer, found {value:?}"))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::I64(n),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::I64(n) => Ok(i128::from(*n)),
            Value::U64(n) => Ok(*n as i128),
            Value::String(s) => s
                .parse::<i128>()
                .map_err(|_| Error::new(format!("invalid i128 `{s}`"))),
            _ => Err(Error::new(format!("expected integer, found {value:?}"))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Same shape as real serde: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(value.field("secs")?)?;
        let nanos = u32::from_value(value.field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new(format!("expected bool, found {value:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new(format!("expected string, found {value:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new(format!("expected array, found {value:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; HashMap iteration order is random.
        let sorted: BTreeMap<&String, &V> = self.iter().collect();
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new(format!("expected object, found {value:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn exact_u64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
    }
}
