//! Derive macros for the offline `serde` stand-in.
//!
//! The container building this workspace cannot reach crates.io, so these
//! derives are written against the raw [`proc_macro`] API — no `syn`, no
//! `quote`. They understand exactly the shapes this workspace derives on:
//! structs with named fields, tuple structs (newtypes and larger), unit
//! structs, and enums whose variants are all unit variants. Anything else
//! (generics, data-carrying variants, `#[serde(...)]` attributes) produces a
//! `compile_error!` pointing here, so a future upgrade to real serde is a
//! conscious step instead of a silent behaviour change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the type a derive was applied to.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — number of fields.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { V1, V2 }` — variant names in order (unit variants only).
    UnitEnum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Consume leading `#[...]` attributes (including doc comments).
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracket group of the attribute.
                tokens.next();
            }
            _ => return,
        }
    }
}

/// Consume a leading `pub` / `pub(...)` visibility qualifier.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Parse the fields of a `{ ... }` struct body into their names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            None => return Ok(names),
            Some(TokenTree::Ident(field)) => {
                names.push(field.to_string());
                // Expect `:`, then swallow the type up to the next top-level `,`.
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, got {other:?}")),
                }
                let mut depth = 0usize;
                for tt in tokens.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            depth = depth.saturating_sub(1)
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in struct body: {other:?}")),
        }
    }
}

/// Count the fields of a `( ... )` tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0usize;
    let mut in_field = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

/// Parse the variants of an `enum { ... }` body; unit variants only.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        match tokens.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(v)) => {
                variants.push(v.to_string());
                match tokens.next() {
                    None => return Ok(variants),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "variant `{}` carries data; the offline serde_derive shim \
                             only supports unit variants",
                            variants.last().unwrap()
                        ));
                    }
                    Some(other) => {
                        return Err(format!("unexpected token after variant: {other:?}"))
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "`{name}` is generic; the offline serde_derive shim does not support generics"
        ));
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Parsed { name, shape })
}

/// Derive `serde::Serialize` (the offline shim's JSON-value trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?}"))
                .collect();
            format!(
                "::serde::Value::String(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` (the offline shim's JSON-value trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_item(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(value.index({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match value.as_variant()? {{ {}, other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(other)) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
