//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build container has no crates.io access, so this crate implements the
//! benchmark-definition surface the workspace's five benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!`, `criterion_main!`, [`black_box`] — on top of a simple
//! wall-clock timer. Each benchmark is warmed up, then sampled
//! `sample_size` times, and the median/min/max per-iteration times are
//! printed. There are no HTML reports and no statistical regression
//! analysis; when a registry is reachable, real criterion drops in without
//! touching the bench sources.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion into the printable benchmark label; lets `bench_function`
/// accept both `&str` and [`BenchmarkId`] like real criterion.
pub trait IntoBenchmarkId {
    /// The label under which results are reported.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting one duration sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until one batch
        // takes ~1 ms so per-iteration timing noise stays bounded.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (criterion's default is 100;
    /// ours is smaller because every sample is a full calibrated batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Define a benchmark in this group.
    pub fn bench_function<O, F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, |b| {
            f(b);
        });
        self
    }

    /// Define a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, O, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I) -> O,
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Define an ungrouped benchmark.
    pub fn bench_function<O, F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        run_one(name, 10, |b| {
            f(b);
        });
        self
    }

    /// Compatibility no-op (real criterion parses CLI args here).
    pub fn final_summary(&self) {}
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 3,
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("hot", 64).to_string(), "hot/64");
        assert_eq!(BenchmarkId::from_parameter(4096).to_string(), "4096");
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
