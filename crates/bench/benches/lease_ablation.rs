//! Ablation bench: allocation leases vs per-invocation control-plane
//! involvement — the architectural claim of Sec. III-B. Compares invoking on
//! a cached lease with tearing the lease down and reacquiring it around every
//! invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;

fn lease_reuse_vs_reallocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_ablation");
    group.sample_size(10);

    // With leases: the control plane is involved exactly once.
    {
        let testbed = Testbed::new(1);
        let session =
            testbed.allocated_session("lease-client", 1, SandboxType::BareMetal, PollingMode::Hot);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        echo.invoke(&[3u8; 512][..]).unwrap();
        let virtual_us = echo.invoke_timed(&[3u8; 512][..]).unwrap().1;
        println!("[lease] cached lease invocation: {virtual_us} (virtual)");
        group.bench_function("cached_lease_invocation", |b| {
            b.iter(|| echo.invoke(&[3u8; 512][..]).unwrap())
        });
    }

    // Without leases: every invocation pays manager placement + cold start,
    // which is what centralized FaaS control planes effectively do.
    {
        let testbed = Testbed::new(1);
        group.bench_function("reallocate_per_invocation", |b| {
            b.iter(|| {
                let session = testbed
                    .session("no-lease-client")
                    .memory_mib(512)
                    .connect()
                    .unwrap();
                let echo = session.function::<[u8], [u8]>("echo").unwrap();
                let (_, rtt) = echo.invoke_timed(&[3u8; 512][..]).unwrap();
                session.close().unwrap();
                rtt
            })
        });
        let session = testbed
            .session("no-lease-report")
            .memory_mib(512)
            .connect()
            .unwrap();
        println!(
            "[lease] cold path per invocation without leases: {} (virtual)",
            session.cold_start().unwrap().total()
        );
    }
    group.finish();
}

criterion_group!(benches, lease_reuse_vs_reallocation);
criterion_main!(benches);
