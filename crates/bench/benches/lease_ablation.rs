//! Ablation bench: allocation leases vs per-invocation control-plane
//! involvement — the architectural claim of Sec. III-B. Compares invoking on
//! a cached lease with tearing the lease down and reacquiring it around every
//! invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use rfaas::{LeaseRequest, PollingMode};
use rfaas_bench::{Testbed, PACKAGE};
use sandbox::SandboxType;

fn lease_reuse_vs_reallocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lease_ablation");
    group.sample_size(10);

    // With leases: the control plane is involved exactly once.
    {
        let testbed = Testbed::new(1);
        let invoker =
            testbed.allocated_invoker("lease-client", 1, SandboxType::BareMetal, PollingMode::Hot);
        let alloc = invoker.allocator();
        let input = alloc.input(1024);
        let output = alloc.output(1024);
        input.write_payload(&[3u8; 512]).unwrap();
        invoker.invoke_sync("echo", &input, 512, &output).unwrap();
        let virtual_us = invoker.invoke_sync("echo", &input, 512, &output).unwrap().1;
        println!("[lease] cached lease invocation: {virtual_us} (virtual)");
        group.bench_function("cached_lease_invocation", |b| {
            b.iter(|| invoker.invoke_sync("echo", &input, 512, &output).unwrap())
        });
    }

    // Without leases: every invocation pays manager placement + cold start,
    // which is what centralized FaaS control planes effectively do.
    {
        let testbed = Testbed::new(1);
        group.bench_function("reallocate_per_invocation", |b| {
            b.iter(|| {
                let mut invoker = testbed.invoker("no-lease-client");
                invoker
                    .allocate(
                        LeaseRequest::single_worker(PACKAGE)
                            .with_cores(1)
                            .with_memory_mib(512),
                        PollingMode::Hot,
                    )
                    .unwrap();
                let alloc = invoker.allocator();
                let input = alloc.input(1024);
                let output = alloc.output(1024);
                input.write_payload(&[3u8; 512]).unwrap();
                let (_, rtt) = invoker.invoke_sync("echo", &input, 512, &output).unwrap();
                invoker.deallocate().unwrap();
                rtt
            })
        });
        let mut invoker = testbed.invoker("no-lease-report");
        invoker
            .allocate(
                LeaseRequest::single_worker(PACKAGE)
                    .with_cores(1)
                    .with_memory_mib(512),
                PollingMode::Hot,
            )
            .unwrap();
        println!(
            "[lease] cold path per invocation without leases: {} (virtual)",
            invoker.cold_start().unwrap().total()
        );
    }
    group.finish();
}

criterion_group!(benches, lease_reuse_vs_reallocation);
criterion_main!(benches);
