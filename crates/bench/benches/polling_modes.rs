//! Ablation bench: hot vs warm vs adaptive polling — the design choice of
//! Sec. III-C. Reports the virtual-time RTT per mode as a custom measurement
//! printed alongside the Criterion wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::median;

fn polling_mode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("polling_mode_ablation");
    group.sample_size(15);
    for (label, mode) in [
        ("hot_busy_poll", PollingMode::Hot),
        ("warm_blocking", PollingMode::Warm),
        ("adaptive", PollingMode::Adaptive),
    ] {
        let testbed = Testbed::new(1);
        let session = testbed.allocated_session("ablation-client", 1, SandboxType::BareMetal, mode);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        echo.invoke(&[7u8; 128][..]).unwrap();

        // Report the virtual-time latency (the paper's metric) once per mode.
        let virtual_us: Vec<f64> = (0..50)
            .map(|_| {
                echo.invoke_timed(&[7u8; 128][..])
                    .unwrap()
                    .1
                    .as_micros_f64()
            })
            .collect();
        println!(
            "[ablation] {label}: median virtual RTT {:.2} us",
            median(&virtual_us)
        );

        group.bench_function(label, |b| b.iter(|| echo.invoke(&[7u8; 128][..]).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, polling_mode_ablation);
criterion_main!(benches);
