//! Ablation bench: hot vs warm vs adaptive polling — the design choice of
//! Sec. III-C. Reports the virtual-time RTT per mode as a custom measurement
//! printed alongside the Criterion wall-clock numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::median;

fn polling_mode_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("polling_mode_ablation");
    group.sample_size(15);
    for (label, mode) in [
        ("hot_busy_poll", PollingMode::Hot),
        ("warm_blocking", PollingMode::Warm),
        ("adaptive", PollingMode::Adaptive),
    ] {
        let testbed = Testbed::new(1);
        let invoker = testbed.allocated_invoker("ablation-client", 1, SandboxType::BareMetal, mode);
        let alloc = invoker.allocator();
        let input = alloc.input(256);
        let output = alloc.output(256);
        input.write_payload(&[7u8; 128]).unwrap();
        invoker.invoke_sync("echo", &input, 128, &output).unwrap();

        // Report the virtual-time latency (the paper's metric) once per mode.
        let virtual_us: Vec<f64> = (0..50)
            .map(|_| {
                invoker
                    .invoke_sync("echo", &input, 128, &output)
                    .unwrap()
                    .1
                    .as_micros_f64()
            })
            .collect();
        println!(
            "[ablation] {label}: median virtual RTT {:.2} us",
            median(&virtual_us)
        );

        group.bench_function(label, |b| {
            b.iter(|| invoker.invoke_sync("echo", &input, 128, &output).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, polling_mode_ablation);
criterion_main!(benches);
