//! Ablation bench: the RDMA message-inlining threshold (Sec. V-A's 128-byte
//! anomaly). Sweeps the payload across the inline boundary and reports the
//! virtual-time RTT of raw RDMA and of an rFaaS hot invocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::median;

fn inline_threshold(c: &mut Criterion) {
    let profile = rdma_fabric::NicProfile::mellanox_cx5_100g();
    println!(
        "[inline] threshold = {} bytes, non-inline DMA fetch = {}",
        profile.max_inline_data, profile.non_inline_dma_fetch
    );
    for payload in [64usize, 96, 128, 160, 256] {
        println!(
            "[inline] raw RDMA write ping-pong {payload} B: {:.3} us",
            profile.write_pingpong_rtt(payload).as_micros_f64()
        );
    }

    let testbed = Testbed::new(1);
    // The inline threshold is a zero-copy measurement: drive pre-registered
    // buffers through the raw escape hatch, not the typed codec surface.
    let session =
        testbed.allocated_session("inline-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let mut group = c.benchmark_group("inline_threshold");
    group.sample_size(15);
    for payload in [64usize, 96, 128, 160, 256] {
        let input = alloc.input(payload);
        let output = alloc.output(payload);
        input.write_payload(&vec![1u8; payload]).unwrap();
        invoker
            .invoke_sync("echo", &input, payload, &output)
            .unwrap();
        let virtual_us: Vec<f64> = (0..40)
            .map(|_| {
                invoker
                    .invoke_sync("echo", &input, payload, &output)
                    .unwrap()
                    .1
                    .as_micros_f64()
            })
            .collect();
        println!(
            "[inline] rFaaS hot {payload} B: median {:.3} us (header pushes the wire message past the inline limit earlier than raw RDMA)",
            median(&virtual_us)
        );
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, &p| {
            b.iter(|| invoker.invoke_sync("echo", &input, p, &output).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, inline_threshold);
criterion_main!(benches);
