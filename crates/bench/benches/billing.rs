//! Bench: billing-record flushes through RDMA fetch-and-add (Sec. IV-C) and
//! the cost-model arithmetic itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rdma_fabric::{Endpoint, Fabric, QueuePair};
use rfaas::billing::{BillingClient, BillingDatabase, UsageRecord};
use rfaas::RFaasConfig;
use sim_core::SimDuration;

fn billing_flush(c: &mut Criterion) {
    let fabric = Fabric::with_defaults();
    let manager_ep = Endpoint::new(&fabric, &fabric.add_node("manager"));
    let executor_ep = Endpoint::new(&fabric, &fabric.add_node("executor"));
    let db = BillingDatabase::new(&manager_ep);
    let manager_qp = QueuePair::new(&manager_ep);
    let executor_qp = QueuePair::new(&executor_ep);
    QueuePair::connect_pair(&manager_qp, &executor_qp).unwrap();
    let client = BillingClient::new(executor_qp, db.slot_handle(db.reserve_slot()));

    c.bench_function("billing_record_and_flush", |b| {
        b.iter(|| {
            client.record_compute(SimDuration::from_micros(120));
            client.record_hot_poll(SimDuration::from_micros(15));
            client.record_allocation(SimDuration::from_millis(1), 2048);
            client.flush().unwrap();
        })
    });

    let config = RFaasConfig::default();
    c.bench_function("billing_cost_model", |b| {
        b.iter(|| {
            let usage = UsageRecord {
                allocation_gib_us: 5_000_000,
                compute_us: 750_000,
                hot_poll_us: 250_000,
            };
            usage.cost(&config)
        })
    });
}

criterion_group!(benches, billing_flush);
criterion_main!(benches);
