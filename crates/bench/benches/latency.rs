//! Criterion bench: hot/warm invocation latency (virtual time is the metric
//! of record — see the fig8 binary — but this bench also keeps the *real*
//! cost of the client/executor code path visible, which is what Criterion
//! measures here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;

fn invocation_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocation_roundtrip");
    group.sample_size(20);
    for (label, mode) in [("hot", PollingMode::Hot), ("warm", PollingMode::Warm)] {
        for payload in [64usize, 4096, 64 * 1024] {
            let testbed = Testbed::new(1);
            let session =
                testbed.allocated_session("bench-client", 1, SandboxType::BareMetal, mode);
            let echo = session.function::<[u8], [u8]>("echo").unwrap();
            let data = workloads::generate_payload(payload, 1);
            echo.invoke(&data[..]).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, payload),
                &payload,
                |b, &_payload| b.iter(|| echo.invoke(&data[..]).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, invocation_latency);
criterion_main!(benches);
