//! Criterion bench: hot/warm invocation latency (virtual time is the metric
//! of record — see the fig8 binary — but this bench also keeps the *real*
//! cost of the client/executor code path visible, which is what Criterion
//! measures here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;

fn invocation_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocation_roundtrip");
    group.sample_size(20);
    for (label, mode) in [("hot", PollingMode::Hot), ("warm", PollingMode::Warm)] {
        for payload in [64usize, 4096, 64 * 1024] {
            let testbed = Testbed::new(1);
            let invoker =
                testbed.allocated_invoker("bench-client", 1, SandboxType::BareMetal, mode);
            let alloc = invoker.allocator();
            let input = alloc.input(payload);
            let output = alloc.output(payload);
            input
                .write_payload(&workloads::generate_payload(payload, 1))
                .unwrap();
            invoker
                .invoke_sync("echo", &input, payload, &output)
                .unwrap();
            group.bench_with_input(BenchmarkId::new(label, payload), &payload, |b, &payload| {
                b.iter(|| {
                    invoker
                        .invoke_sync("echo", &input, payload, &output)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, invocation_latency);
criterion_main!(benches);
