//! Figure 7 (Fig. 5/6, Sec. V-A/V-B): the hot/warm/cold invocation spectrum.
//!
//! The paper's headline result is a latency *hierarchy*: a hot executor
//! busy-polls its receive ring and serves an invocation in single-digit
//! microseconds, a warm executor sleeps on completion events and pays the
//! wake-up path, and a cold invocation pays the full allocation pipeline
//! (manager round-trip, lease, sandbox spawn, code submission, worker
//! connections). This binary measures all three across payload sizes and
//! enforces the ordering the paper reports: for small payloads the hot
//! median must be at least 10× below the cold median, with warm strictly
//! in between. A violated ordering aborts the run, so the CI smoke pass
//! (`--quick`) doubles as a regression gate.
//!
//! A second section demonstrates the hot→warm demotion: after an idle gap
//! longer than `hot_poll_timeout` the worker parks itself, the polling bill
//! is capped, and the next invocation pays warm latency.

use rfaas::{PollingMode, RFaasConfig};
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed};
use sandbox::SandboxType;

fn payload_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 1024, 16 * 1024]
    } else {
        vec![1, 16, 128, 1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024]
    }
}

/// Median + p99 RTT of repeated invocations on an already-leased worker.
///
/// Measured through `Session::raw()`: the spectrum is *the* zero-copy
/// latency gate, so it drives pre-registered buffers and explicit payload
/// lengths rather than the typed codec surface.
fn leased_series(mode: PollingMode, sizes: &[usize], repetitions: usize) -> Vec<(usize, f64, f64)> {
    let testbed = Testbed::new(1);
    let session = testbed.allocated_session("fig7-client", 1, SandboxType::BareMetal, mode);
    let invoker = session.raw();
    let alloc = invoker.allocator();
    sizes
        .iter()
        .map(|&size| {
            let input = alloc.input(size.max(8));
            let output = alloc.output(size.max(8));
            input
                .write_payload(&workloads::generate_payload(size, 7))
                .expect("payload fits");
            invoker
                .invoke_sync("echo", &input, size, &output)
                .expect("warm-up");
            let samples: Vec<_> = (0..repetitions)
                .map(|_| {
                    invoker
                        .invoke_sync("echo", &input, size, &output)
                        .expect("invoke")
                        .1
                })
                .collect();
            let s = summarize_us(&samples);
            (size, s.median, s.p99)
        })
        .collect()
}

/// Median + p99 of full cold invocations: a fresh lease, executor process
/// and worker connections per sample, plus the first invocation.
fn cold_series(sizes: &[usize], repetitions: usize) -> Vec<(usize, f64, f64)> {
    sizes
        .iter()
        .map(|&size| {
            let samples: Vec<_> = (0..repetitions)
                .map(|rep| {
                    // A fresh testbed per sample (as in fig9): a cold client
                    // meets a platform with no residual port occupancy or
                    // allocator state from earlier samples.
                    let testbed = Testbed::new(1);
                    let session = testbed.allocated_session(
                        &format!("fig7-cold-{size}-{rep}"),
                        1,
                        SandboxType::BareMetal,
                        PollingMode::Hot,
                    );
                    let invoker = session.raw();
                    let cold_start = session.cold_start().expect("fresh allocation").total();
                    let alloc = invoker.allocator();
                    let input = alloc.input(size.max(8));
                    let output = alloc.output(size.max(8));
                    input
                        .write_payload(&workloads::generate_payload(size, 7))
                        .expect("payload fits");
                    let (_, rtt) = invoker
                        .invoke_sync("echo", &input, size, &output)
                        .expect("invoke");
                    session.close().expect("deallocate");
                    cold_start + rtt
                })
                .collect();
            let s = summarize_us(&samples);
            (size, s.median, s.p99)
        })
        .collect()
}

fn main() {
    let quick = quick_mode();
    let sizes = payload_sizes(quick);
    let leased_reps = if quick { 20 } else { 200 };
    let cold_reps = if quick { 5 } else { 30 };

    let hot = leased_series(PollingMode::Hot, &sizes, leased_reps);
    let warm = leased_series(PollingMode::Warm, &sizes, leased_reps);
    let cold = cold_series(&sizes, cold_reps);

    let mut rows = Vec::new();
    for (series, data) in [("hot", &hot), ("warm", &warm), ("cold", &cold)] {
        for &(size, median, p99) in data.iter() {
            rows.push(ResultRow {
                series: format!("rFaaS {series}"),
                x: size as f64,
                median,
                p99,
                unit: "us".into(),
            });
        }
    }
    print_table("Figure 7: hot/warm/cold invocation spectrum", &rows);

    // The spectrum gate: the hierarchy must hold at every payload size, and
    // for small payloads hot must beat cold by at least an order of
    // magnitude (the paper reports nearly four orders).
    println!("\n# spectrum ordering (hot < warm < cold at every size; cold/hot >= 10x for small payloads)");
    for (i, &size) in sizes.iter().enumerate() {
        let (h, w, c) = (hot[i].1, warm[i].1, cold[i].1);
        let ratio = c / h;
        println!(
            "payload {size:>8} B: hot {h:>10.3} us, warm {w:>10.3} us, cold {c:>12.3} us, cold/hot {ratio:>8.1}x"
        );
        assert!(
            h < w && w < c,
            "spectrum ordering violated at {size} B: hot {h}, warm {w}, cold {c}"
        );
        if size <= 4096 {
            assert!(
                c >= 10.0 * h,
                "cold p50 must be >= 10x hot p50 at {size} B: hot {h} us, cold {c} us"
            );
        }
    }

    // Hot→warm demotion: one idle gap past the hot-poll budget parks the
    // worker; the next invocation pays warm latency and the polling bill is
    // capped at the budget.
    let config = RFaasConfig::paper_calibration();
    let testbed = Testbed::with_config(1, config.clone());
    let session =
        testbed.allocated_session("fig7-demotion", 1, SandboxType::BareMetal, PollingMode::Hot);
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input
        .write_payload(&workloads::generate_payload(8, 7))
        .expect("payload fits");
    invoker
        .invoke_sync("echo", &input, 8, &output)
        .expect("warm-up");
    let (_, hot_rtt) = invoker
        .invoke_sync("echo", &input, 8, &output)
        .expect("hot invoke");
    invoker.clock().advance(config.hot_poll_timeout * 2);
    let (_, demoted_rtt) = invoker
        .invoke_sync("echo", &input, 8, &output)
        .expect("demoted invoke");
    let stats = testbed.executors[0]
        .allocator()
        .processes()
        .pop()
        .expect("live process")
        .lock()
        .stats();
    println!(
        "\n# hot→warm demotion (hot_poll_timeout = {})",
        config.hot_poll_timeout
    );
    println!(
        "hot rtt {:.3} us, post-demotion rtt {:.3} us, demotions {}, billed polling {}",
        hot_rtt.as_micros_f64(),
        demoted_rtt.as_micros_f64(),
        stats.demotions,
        stats.hot_poll_time
    );
    assert_eq!(stats.demotions, 1, "exactly one demotion expected");
    assert!(
        demoted_rtt > hot_rtt,
        "the demoted invocation must pay the warm wake-up"
    );
    assert!(
        stats.hot_poll_time < config.hot_poll_timeout + sim_core::SimDuration::from_millis(1),
        "polling bill must be capped at the demotion budget"
    );
}
