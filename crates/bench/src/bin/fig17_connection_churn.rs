//! Figure 17: connection-plane cost under tenant churn — pooled QPs, shared
//! receive queues, and the datagram first-contact path.
//!
//! A multi-tenant fleet (10k+ tenants, Poisson episode arrivals, heavy-hitter
//! skew) churns allocation episodes through a sharded manager plane. Every
//! episode allocates through the datagram control path, connects its worker
//! through a *shared connection pool* keyed by executor node, invokes once
//! and releases. The first episode against each executor pays the full RC
//! handshake (first contact); later episodes ride the warm tier bought by
//! pooled connection warmth. We report the connection-setup cost of both
//! classes (connect-to-manager + connect-to-workers, the connection-plane
//! slice of the cold start) and assert warm re-allocation is at least 5×
//! cheaper.
//!
//! A second probe allocates 1-worker and 16-worker processes on one executor
//! and compares their shared-receive-queue depths: executor receive memory
//! must grow sublinearly in the connection count (the point of the SRQ), and
//! the binary gates on 16 workers holding at most 4× the slots of one.

use std::sync::Arc;

use cluster_sim::{episode_ordinals, NodeResources, TenantFleet};
use rdma_fabric::{ConnectionPool, Fabric};
use rfaas::{ManagerGroup, RFaasConfig, Session, SpotExecutor};
use rfaas_bench::{evaluation_package, print_table, quick_mode, ResultRow, PACKAGE};
use sandbox::FunctionRegistry;
use sim_core::{SimDuration, Summary};

/// Register spot executors with the plane until the requested count is
/// reached AND every shard owns at least one.
fn register_executors(
    fabric: &Arc<Fabric>,
    registry: &FunctionRegistry,
    config: &RFaasConfig,
    group: &ManagerGroup,
    at_least: usize,
) -> Vec<Arc<SpotExecutor>> {
    let mut executors = Vec::new();
    let mut covered = vec![false; group.shard_count()];
    let mut index = 0;
    while executors.len() < at_least || covered.iter().any(|c| !c) {
        let executor = SpotExecutor::new(
            fabric,
            &format!("churn-exec-{index:03}"),
            NodeResources::xeon_gold_6154_dual(),
            registry.clone(),
            config.clone(),
        );
        covered[group.register_executor(&executor)] = true;
        executors.push(executor);
        index += 1;
    }
    executors
}

fn main() {
    let quick = quick_mode();
    let tenants = if quick { 10_000 } else { 12_000 };
    let episode_cap = if quick { 400 } else { 2_000 };
    let shards = 8usize;
    let executor_count = 12usize;

    let config = RFaasConfig::paper_calibration();
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let group = ManagerGroup::new(&fabric, config.clone(), shards);
    let executors = register_executors(&fabric, &registry, &config, &group, executor_count);

    // The whole fleet flows through the consistent-hash ring: placement of
    // every tenant's episodes, even the ones beyond the session-driven
    // sample below, exercises shard routing at fleet scale.
    let fleet = TenantFleet::generate(17, tenants, SimDuration::from_secs(20));
    let requests = fleet.requests(SimDuration::from_secs(40));
    let ordinals = episode_ordinals(&requests);
    let mut per_shard = vec![0usize; shards];
    for request in &requests {
        per_shard[group.shard_for_tenant(&request.tenant)] += 1;
    }
    let revisits = ordinals.iter().filter(|&&o| o > 0).count();
    println!("# Figure 17: connection churn — pooled QPs, SRQ memory, datagram first contact");
    println!(
        "# fleet: {tenants} tenants, {} episodes in the horizon ({revisits} revisits), {shards} manager shards, {} executors",
        requests.len(),
        executors.len()
    );
    println!("# per-shard episode load: {per_shard:?} (consistent hashing over tenant ids)");

    // Connection warmth shared across every episode: the pool is the tenant
    // churn survivor — leases come and go, executor-node warmth stays.
    let pool = ConnectionPool::new();
    let mut first_contact_us: Vec<f64> = Vec::new();
    let mut warm_us: Vec<f64> = Vec::new();
    let mut connections_opened = 0u64;
    let mut srq_watermark = 0usize;

    for (episode, request) in requests.iter().take(episode_cap).enumerate() {
        let manager = group.manager_for_tenant(&request.tenant);
        let hits_before = pool.stats().hits;
        let session = Session::builder(&fabric, &request.tenant, &manager, PACKAGE)
            .config(config.clone())
            .workers(1)
            .memory_mib(1024)
            .connection_pool(&pool)
            .starting_at(request.arrival)
            .connect()
            .unwrap_or_else(|e| panic!("episode {episode} allocation failed: {e}"));
        let cold = session.cold_start().expect("cold start recorded");
        let setup_us =
            cold.connect_to_manager.as_micros_f64() + cold.connect_to_workers.as_micros_f64();
        if pool.stats().hits > hits_before {
            warm_us.push(setup_us);
        } else {
            first_contact_us.push(setup_us);
        }
        let echo = session.function::<[u8], [u8]>("echo").expect("echo");
        let payload = workloads::generate_payload(64, episode as u64);
        echo.invoke(&payload[..]).expect("invocation succeeds");
        let stats = session.stats().connections;
        connections_opened += stats.connections_opened;
        srq_watermark = srq_watermark.max(stats.srq_depth_high_watermark);
        session.close().expect("release");
    }

    let pool_stats = pool.stats();
    println!(
        "# connection plane: {connections_opened} connections opened, pool hits {} / misses {} (returned {}, evicted {}), SRQ depth high watermark {srq_watermark}",
        pool_stats.hits, pool_stats.misses, pool_stats.returned, pool_stats.evictions
    );

    // SRQ memory probe: one executor, 1-worker vs 16-worker processes. The
    // shared receive queue must keep executor receive memory sublinear in
    // the connection count.
    let probe = &executors[0];
    let probe_manager = group.managers()[group.shard_for_executor(probe.name())].clone();
    let mut srq_slots = Vec::new();
    for workers in [1u32, 16] {
        let session = Session::builder(&fabric, "fig17-srq-probe", &probe_manager, PACKAGE)
            .config(config.clone())
            .workers(workers)
            .memory_mib(4096)
            .connect()
            .expect("probe allocation succeeds");
        let lease = session.lease().expect("probe lease");
        let depth = executors
            .iter()
            .find(|e| e.name() == lease.executor_node)
            .expect("probe lease lands on a registered executor")
            .allocator()
            .processes()
            .iter()
            .find_map(|p| {
                let p = p.lock();
                (p.lease_id() == lease.id).then(|| p.srq_stats().max_depth)
            })
            .expect("probe process visible");
        srq_slots.push((workers, depth));
        session.close().expect("probe release");
    }

    let first = Summary::of(&first_contact_us);
    let warm = Summary::of(&warm_us);
    let rows = vec![
        ResultRow {
            series: "connection setup".into(),
            x: 0.0,
            median: first.median,
            p99: first.p99,
            unit: "us".into(),
        },
        ResultRow {
            series: "connection setup".into(),
            x: 1.0,
            median: warm.median,
            p99: warm.p99,
            unit: "us".into(),
        },
        ResultRow {
            series: "srq slots".into(),
            x: srq_slots[0].0 as f64,
            median: srq_slots[0].1 as f64,
            p99: srq_slots[0].1 as f64,
            unit: "slots".into(),
        },
        ResultRow {
            series: "srq slots".into(),
            x: srq_slots[1].0 as f64,
            median: srq_slots[1].1 as f64,
            p99: srq_slots[1].1 as f64,
            unit: "slots".into(),
        },
    ];
    print_table(
        "Connection setup under churn (x=0 first contact, x=1 warm re-allocation) and SRQ depth vs workers",
        &rows,
    );

    assert!(
        !first_contact_us.is_empty() && warm_us.len() > first_contact_us.len(),
        "churn must produce both first contacts ({}) and a warm majority ({})",
        first_contact_us.len(),
        warm_us.len()
    );
    assert!(
        warm.median * 5.0 <= first.median,
        "warm re-allocation ({:.1} us) must be at least 5x cheaper than first contact ({:.1} us)",
        warm.median,
        first.median
    );
    let (w1, slots1) = srq_slots[0];
    let (w16, slots16) = srq_slots[1];
    assert!(
        slots16 <= 4 * slots1,
        "SRQ depth must be sublinear in connections: {w1} workers -> {slots1} slots, {w16} workers -> {slots16} slots"
    );
}
