//! Figure 8 (and Sec. V-A): round-trip time of a no-op rFaaS function for
//! 1 B – 4 kB payloads against the raw RDMA write ping-pong and kernel TCP/IP
//! baselines, for bare-metal and Docker executors in hot and warm mode.
//! Also prints the hot/warm overhead over raw RDMA (paper: ~326 ns / ~4.67 µs)
//! and the inlining anomaly at 128 B.

use net_stack::TcpProfile;
use rfaas::PollingMode;
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed};
use sandbox::SandboxType;

fn payload_sizes() -> Vec<usize> {
    (0..=12).map(|p| 1usize << p).collect() // 1 B .. 4096 B
}

struct SeriesSpec {
    label: &'static str,
    sandbox: SandboxType,
    mode: PollingMode,
}

fn main() {
    let repetitions = if quick_mode() { 20 } else { 200 };
    let mut rows = Vec::new();

    // Raw transport baselines.
    let rdma = rdma_fabric::NicProfile::mellanox_cx5_100g();
    let tcp = TcpProfile::kernel_100g();
    for &size in &payload_sizes() {
        rows.push(ResultRow {
            series: "RDMA (ib_write_lat)".into(),
            x: size as f64,
            median: rdma.write_pingpong_rtt(size).as_micros_f64(),
            p99: rdma.write_pingpong_rtt(size).as_micros_f64(),
            unit: "us".into(),
        });
        rows.push(ResultRow {
            series: "TCP/IP (netperf)".into(),
            x: size as f64,
            median: tcp.request_response(size, size).as_micros_f64(),
            p99: tcp.request_response(size, size).as_micros_f64(),
            unit: "us".into(),
        });
    }

    let series = [
        SeriesSpec {
            label: "rFaaS hot (bare-metal)",
            sandbox: SandboxType::BareMetal,
            mode: PollingMode::Hot,
        },
        SeriesSpec {
            label: "rFaaS warm (bare-metal)",
            sandbox: SandboxType::BareMetal,
            mode: PollingMode::Warm,
        },
        SeriesSpec {
            label: "rFaaS hot (Docker)",
            sandbox: SandboxType::Docker,
            mode: PollingMode::Hot,
        },
        SeriesSpec {
            label: "rFaaS warm (Docker)",
            sandbox: SandboxType::Docker,
            mode: PollingMode::Warm,
        },
    ];
    for spec in &series {
        let testbed = Testbed::new(1);
        let session = testbed.allocated_session("fig8-client", 1, spec.sandbox, spec.mode);
        let echo = session.function::<[u8], [u8]>("echo").expect("echo");
        for &size in &payload_sizes() {
            let payload = workloads::generate_payload(size, 7);
            echo.invoke(&payload[..]).expect("warm-up");
            let samples: Vec<_> = (0..repetitions)
                .map(|_| echo.invoke_timed(&payload[..]).expect("invoke").1)
                .collect();
            let summary = summarize_us(&samples);
            rows.push(ResultRow {
                series: spec.label.to_string(),
                x: size as f64,
                median: summary.median,
                p99: summary.p99,
                unit: "us".into(),
            });
        }
    }
    print_table("Figure 8: no-op function RTT vs message size", &rows);

    // Overhead over raw RDMA, averaged over the sweep (Sec. V-A).
    println!("\n# overhead over raw RDMA transmission (paper: hot 326 ns, warm 4.67 us; Docker +50 ns / +650 ns)");
    for spec in &series {
        let mut deltas = Vec::new();
        for &size in &payload_sizes() {
            let rfaas = rows
                .iter()
                .find(|r| r.series == spec.label && r.x == size as f64)
                .map(|r| r.median)
                .unwrap_or(f64::NAN);
            let baseline = rdma.write_pingpong_rtt(size).as_micros_f64();
            deltas.push((rfaas - baseline) * 1_000.0); // ns
        }
        let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
        println!("{:<28} mean overhead {:>8.0} ns", spec.label, mean);
    }

    // The 128-byte inlining anomaly: rFaaS adds the header so it loses the
    // inline optimisation one step earlier than raw RDMA.
    let hot_at = |x: f64| {
        rows.iter()
            .find(|r| r.series == "rFaaS hot (bare-metal)" && r.x == x)
            .map(|r| r.median)
            .unwrap_or(f64::NAN)
    };
    println!("\n# inlining effect around 128 B (paper: overhead grows to ~630 ns at 128 B)");
    for size in [64.0, 128.0, 256.0] {
        let baseline = rdma.write_pingpong_rtt(size as usize).as_micros_f64();
        println!(
            "payload {size:>5} B: rFaaS hot {:.3} us, raw RDMA {:.3} us, overhead {:.0} ns",
            hot_at(size),
            baseline,
            (hot_at(size) - baseline) * 1_000.0
        );
    }
}
