//! Figure 13: accelerating MPI applications with rFaaS — (a) per-rank
//! matrix-matrix multiplication and (b) a Jacobi linear solver whose system
//! matrix is cached in the warm executor.
//!
//! Every MPI rank leases one bare-metal rFaaS worker and offloads half of its
//! work; the plotted metric is the median per-rank kernel time (a) or the
//! total solve time (b), for MPI-only versus MPI + rFaaS.

use mpi_sim::MpiWorld;
use rfaas::{RFaasConfig, Session};
use rfaas_bench::{print_table, quick_mode, sub_experiment, ResultRow, Testbed};
use sim_core::median;
use workloads::jacobi::{encode_install, encode_iterate, sweep_cost, JacobiSystem};
use workloads::matmul::{compute_cost, encode_matmul_request, random_matrix};

fn rank_counts() -> Vec<usize> {
    if quick_mode() {
        vec![8]
    } else if std::env::args().any(|a| a == "--full") {
        vec![16, 32, 64]
    } else {
        vec![16, 32]
    }
}

/// Per-rank session with one rFaaS worker inside an MPI rank body.
fn rank_session(testbed: &Testbed, config: &RFaasConfig, rank: usize) -> Session {
    testbed
        .session(&format!("mpi-rank-{rank}"))
        .config(config.clone())
        .memory_mib(4 * 1024)
        .connect()
        .expect("rank allocation")
}

fn matmul_experiment() {
    let sizes: Vec<usize> = if quick_mode() {
        vec![400, 800]
    } else {
        vec![400, 500, 600, 700, 800]
    };
    let mut rows = Vec::new();
    for &ranks in &rank_counts() {
        for &n in &sizes {
            // MPI only: every rank multiplies its full n x n matrices.
            let world = MpiWorld::new();
            let mpi_only = world.run(ranks, |rank| {
                rank.barrier();
                rank.compute(compute_cost(n, n));
                rank.barrier();
                compute_cost(n, n).as_secs_f64()
            });
            let mpi_median = median(&mpi_only.iter().map(|r| r.value).collect::<Vec<_>>());
            rows.push(ResultRow {
                series: format!("MPI ({ranks} processes)"),
                x: n as f64,
                median: mpi_median,
                p99: mpi_median,
                unit: "s".into(),
            });

            // MPI + rFaaS: each rank offloads the lower half of the result.
            let mut config = RFaasConfig::paper_calibration();
            config.max_payload_bytes = 2 * n * n * 8 + 1024;
            let testbed = Testbed::with_config(2, config.clone());
            let testbed = &testbed;
            let config = &config;
            let world = MpiWorld::new();
            let results = world.run(ranks, move |rank| {
                let session = rank_session(testbed, config, rank.rank());
                let matmul = session
                    .function::<[u8], [f64]>("matmul")
                    .expect("matmul deployed")
                    .with_output_capacity((n / 2) * n * 8);
                let a = random_matrix(n, rank.rank() as u64 + 1);
                let b = random_matrix(n, rank.rank() as u64 + 1000);
                let request = encode_matmul_request(&a, &b, n, n / 2, n);
                rank.barrier();
                let start = session.clock().now();
                // Offload the lower half, compute the upper half locally.
                let future = matmul.submit(&request[..]).expect("submit");
                rank.compute(compute_cost(n / 2, n));
                // The client clock must reflect the local half's work before
                // it waits for the offloaded half.
                session.clock().advance(compute_cost(n / 2, n));
                future.wait().expect("offloaded half");
                let elapsed = session.clock().now().saturating_since(start);
                rank.barrier();
                elapsed.as_secs_f64()
            });
            let hybrid_median = median(&results.iter().map(|r| r.value).collect::<Vec<_>>());
            rows.push(ResultRow {
                series: format!("MPI + rFaaS ({ranks} processes)"),
                x: n as f64,
                median: hybrid_median,
                p99: hybrid_median,
                unit: "s".into(),
            });
            println!(
                "# matmul n={n}, {ranks} ranks: MPI {mpi_median:.3} s, MPI+rFaaS {hybrid_median:.3} s, speedup {:.2}x",
                mpi_median / hybrid_median
            );
        }
    }
    print_table(
        "Figure 13a: matrix-matrix multiplication, MPI vs MPI + rFaaS (paper speedup: 1.88x-1.97x)",
        &rows,
    );
}

fn jacobi_experiment() {
    let sizes: Vec<usize> = if quick_mode() {
        vec![500, 1500]
    } else {
        vec![500, 1000, 1500, 2000, 2500]
    };
    let iterations = if quick_mode() { 30 } else { 100 };
    let mut rows = Vec::new();
    for &ranks in &rank_counts() {
        for &n in &sizes {
            // MPI only: every rank runs the full solver locally.
            let world = MpiWorld::new();
            let mpi_only = world.run(ranks, |rank| {
                rank.barrier();
                for _ in 0..iterations {
                    rank.compute(sweep_cost(n, n));
                }
                (sweep_cost(n, n) * iterations as u64).as_secs_f64()
            });
            let mpi_median = median(&mpi_only.iter().map(|r| r.value).collect::<Vec<_>>());
            rows.push(ResultRow {
                series: format!("MPI ({ranks} processes)"),
                x: n as f64,
                median: mpi_median,
                p99: mpi_median,
                unit: "s".into(),
            });

            // MPI + rFaaS: half of every sweep offloaded; the matrix is sent
            // only with the first invocation (cached in the warm executor).
            let mut config = RFaasConfig::paper_calibration();
            config.max_payload_bytes = n * n * 8 + 4 * n * 8 + 4096;
            let testbed = Testbed::with_config(2, config.clone());
            let testbed = &testbed;
            let config = &config;
            let world = MpiWorld::new();
            let results = world.run(ranks, move |rank| {
                let session = rank_session(testbed, config, rank.rank());
                let jacobi = session
                    .function::<[u8], [f64]>("jacobi")
                    .expect("jacobi deployed")
                    .with_output_capacity(n * 8);
                // Every rank solves the same system: the registry hands every
                // executor process the same function object, so the cached
                // matrix is shared platform-wide (one deployed model/system
                // per code package, as with the ResNet checkpoint in V-E).
                let system = JacobiSystem::generate(n, 7);
                let mut x = vec![0.0f64; n];
                rank.barrier();
                let start = session.clock().now();
                for iteration in 0..iterations {
                    let message = if iteration == 0 {
                        encode_install(&system, &x, n / 2, n)
                    } else {
                        encode_iterate(&x, n / 2, n)
                    };
                    let future = jacobi.submit(&message[..]).expect("submit");
                    // Local upper half while the executor computes the lower half.
                    let local = workloads::jacobi::jacobi_sweep_rows(&system, &x, 0, n / 2);
                    rank.compute(sweep_cost(n / 2, n));
                    session.clock().advance(sweep_cost(n / 2, n));
                    let remote = future.wait().expect("offloaded half");
                    x[..n / 2].copy_from_slice(&local);
                    x[n / 2..].copy_from_slice(&remote);
                }
                let elapsed = session.clock().now().saturating_since(start);
                // Sanity: the distributed solve must actually converge.
                assert!(system.residual(&x) < system.residual(&vec![0.0; n]).max(1.0));
                rank.barrier();
                elapsed.as_secs_f64()
            });
            let hybrid_median = median(&results.iter().map(|r| r.value).collect::<Vec<_>>());
            rows.push(ResultRow {
                series: format!("MPI + rFaaS ({ranks} processes)"),
                x: n as f64,
                median: hybrid_median,
                p99: hybrid_median,
                unit: "s".into(),
            });
            println!(
                "# jacobi n={n}, {ranks} ranks, {iterations} iterations: MPI {mpi_median:.3} s, MPI+rFaaS {hybrid_median:.3} s, speedup {:.2}x",
                mpi_median / hybrid_median
            );
        }
    }
    print_table(
        "Figure 13b: Jacobi solver, MPI vs MPI + rFaaS (paper speedup: 1.7x-2.2x on large systems)",
        &rows,
    );
}

fn main() {
    let which = sub_experiment().unwrap_or_else(|| "all".to_string());
    if which == "matmul" || which == "all" {
        matmul_experiment();
    }
    if which == "jacobi" || which == "all" {
        jacobi_experiment();
    }
}
