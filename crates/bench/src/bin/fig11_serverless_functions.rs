//! Figure 11: real-world serverless functions from SeBS on rFaaS and AWS
//! Lambda — (a) thumbnail generation and (b) ResNet-50 image recognition —
//! with small and large inputs, bare-metal and Docker executors, hot and warm
//! invocations.

use faas_baselines::aws_lambda;
use rfaas::PollingMode;
use rfaas_bench::{print_table, quick_mode, sub_experiment, summarize_ms, ResultRow, Testbed};
use sandbox::SandboxType;
use sim_core::{DeterministicRng, Summary};
use workloads::{image_recognition_function, thumbnailer_function, Image, InputSizes};

/// The thumbnailer returns an encoded image, the classifier returns logits;
/// both decode from raw result bytes, so the handles are byte-typed on the
/// output side and Image-typed on the input side.
type ImageFn<'s> = rfaas::FunctionHandle<'s, Image, [u8]>;

struct Case {
    function: &'static str,
    input_label: &'static str,
    input_bytes: usize,
    output_capacity: usize,
}

fn thumbnailer_cases() -> Vec<Case> {
    vec![
        Case {
            function: "thumbnailer",
            input_label: "small (97 kB)",
            input_bytes: InputSizes::THUMBNAIL_SMALL,
            output_capacity: 300 * 1024,
        },
        Case {
            function: "thumbnailer",
            input_label: "large (3.6 MB)",
            input_bytes: InputSizes::THUMBNAIL_LARGE,
            output_capacity: 300 * 1024,
        },
    ]
}

fn inference_cases() -> Vec<Case> {
    vec![
        Case {
            function: "image-recognition",
            input_label: "small (53 kB)",
            input_bytes: InputSizes::INFERENCE_SMALL,
            output_capacity: 16 * 1024,
        },
        Case {
            function: "image-recognition",
            input_label: "large (230 kB)",
            input_bytes: InputSizes::INFERENCE_LARGE,
            output_capacity: 16 * 1024,
        },
    ]
}

fn run(cases: &[Case], title: &str, repetitions: usize) {
    let mut rows = Vec::new();
    let configurations = [
        (
            "rFaaS bare-metal hot",
            SandboxType::BareMetal,
            PollingMode::Hot,
        ),
        (
            "rFaaS bare-metal warm",
            SandboxType::BareMetal,
            PollingMode::Warm,
        ),
        ("rFaaS Docker hot", SandboxType::Docker, PollingMode::Hot),
        ("rFaaS Docker warm", SandboxType::Docker, PollingMode::Warm),
    ];
    for (case_idx, case) in cases.iter().enumerate() {
        let image = Image::synthetic(case.input_bytes, 40 + case_idx as u64);
        let payload = image.encode();
        for (label, sandbox, mode) in configurations {
            let testbed = Testbed::new(1);
            let session = testbed.allocated_session("fig11-client", 1, sandbox, mode);
            let function: ImageFn = session
                .function(case.function)
                .expect("function deployed")
                .with_output_capacity(case.output_capacity);
            function.invoke(&image).expect("warm-up invocation");
            let samples: Vec<_> = (0..repetitions)
                .map(|_| function.invoke_timed(&image).expect("invocation").1)
                .collect();
            let summary = summarize_ms(&samples);
            rows.push(ResultRow {
                series: format!("{label}, {}", case.input_label),
                x: case.input_bytes as f64 / 1024.0,
                median: summary.median,
                p99: summary.p99,
                unit: "ms".into(),
            });
        }

        // AWS Lambda baseline: same function work, HTTP/JSON invocation path.
        let aws = aws_lambda();
        let work = if case.function == "thumbnailer" {
            thumbnailer_function().compute_cost(payload.len())
        } else {
            image_recognition_function().compute_cost(payload.len())
        };
        let mut rng = DeterministicRng::new(99);
        let samples: Vec<_> = (0..200)
            .map(|_| {
                aws.sample_rtt(
                    payload.len(),
                    case.output_capacity.min(256 * 1024),
                    work,
                    &mut rng,
                )
            })
            .collect();
        let summary = Summary::of_durations_ms(&samples);
        rows.push(ResultRow {
            series: format!("AWS Lambda, {}", case.input_label),
            x: case.input_bytes as f64 / 1024.0,
            median: summary.median,
            p99: summary.p99,
            unit: "ms".into(),
        });
    }
    print_table(title, &rows);
}

fn main() {
    let repetitions = if quick_mode() { 5 } else { 30 };
    let which = sub_experiment().unwrap_or_else(|| "all".to_string());
    if which == "thumbnailer" || which == "all" {
        run(
            &thumbnailer_cases(),
            "Figure 11a: thumbnail generation (paper: rFaaS bare-metal 4.4 ms small / ~115 ms large; AWS 128-3072 ms)",
            repetitions,
        );
    }
    if which == "inference" || which == "all" {
        run(
            &inference_cases(),
            "Figure 11b: ResNet-50 image recognition (paper: rFaaS ~112-118 ms; AWS 512-3072 ms)",
            repetitions,
        );
    }
}
