//! Figure 15: control-plane scale-out — allocation throughput and latency of
//! the sharded manager plane under a trace-driven multi-tenant fleet.
//!
//! The paper argues (Sec. III-D) that decentralised allocation scales by
//! replicating the resource manager; Swift (arXiv:2501.19051) shows the RDMA
//! control plane — allocation, registration, lease churn — is where elastic
//! systems bottleneck. This experiment measures exactly that: a seeded
//! tenant fleet (hundreds of tenants, Poisson episode arrivals, mixed
//! workload shapes, heavy-hitter skew) fires an allocation storm at a
//! [`ManagerGroup`] of 1 → 8 consistent-hash shards while leases churn
//! underneath — 80% of episodes release explicitly (cross-shard), the rest
//! abandon their leases for the lifecycle driver to expire.
//!
//! Per-shard allocation processing is serialised on the shard's virtual
//! clock (one manager replica is one service queue), so end-to-end grant
//! latency includes queueing delay and the plane's sustained throughput is
//! `grants / makespan`. The `--quick` run asserts 4-shard throughput ≥ 2×
//! the 1-shard baseline, making the CI smoke run a scale-out regression
//! gate; the committed `BENCH_BASELINE.json` additionally pins the absolute
//! numbers (perf-snapshot job, ±15%).
//!
//! A second phase drives the full allocate→invoke→bill→release pipeline
//! end-to-end: real invokers, real workload payloads (echo, thumbnailer,
//! inference, Black-Scholes, matmul, Jacobi), per-shard billing aggregation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cluster_sim::{NodeResources, TenantFleet, TenantRequest, WorkloadKind};
use rdma_fabric::Fabric;
use rfaas::{GroupLifecycleDriver, LeaseRequest, ManagerGroup, RFaasConfig, Session};
use rfaas_bench::{evaluation_package, print_table, quick_mode, ResultRow, PACKAGE};
use sandbox::FunctionRegistry;
use sim_core::{SimDuration, SimTime, Summary, VirtualClock};
use workloads::{
    blackscholes::{generate_options, options_to_bytes},
    generate_payload,
    jacobi::encode_install,
    matmul::{encode_matmul_request, random_matrix},
    Image, JacobiSystem,
};

/// Register spot executors with the plane until the requested count is
/// reached AND every shard owns at least one (the ring decides placement;
/// a shard without inventory would refuse its tenants outright).
fn register_executors(
    fabric: &Arc<Fabric>,
    registry: &FunctionRegistry,
    config: &RFaasConfig,
    group: &ManagerGroup,
    at_least: usize,
) -> usize {
    let mut registered = 0;
    let mut covered = vec![false; group.shard_count()];
    let mut index = 0;
    while registered < at_least || covered.iter().any(|c| !c) {
        let executor = rfaas::SpotExecutor::new(
            fabric,
            &format!("fleet-exec-{index:04}"),
            NodeResources::xeon_gold_6154_dual(),
            registry.clone(),
            config.clone(),
        );
        covered[group.register_executor(&executor)] = true;
        registered += 1;
        index += 1;
    }
    registered
}

struct StormOutcome {
    granted: u64,
    rejected: u64,
    latencies_us: Vec<f64>,
    /// Sustained plane throughput: grants per second of makespan (first
    /// arrival to the last shard going idle).
    throughput: f64,
    expired: u64,
}

/// Drive one allocation storm against a plane of `shards` shards and drain
/// the churn afterwards. Each shard is a serial service queue: a request
/// arriving at `t` starts service at `max(t, shard busy-until)`.
fn run_storm(requests: &[TenantRequest], shards: usize, executors: usize) -> StormOutcome {
    let config = RFaasConfig::paper_calibration();
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let group = ManagerGroup::new(&fabric, config.clone(), shards);
    register_executors(&fabric, &registry, &config, &group, executors);
    let driver = GroupLifecycleDriver::new(&group);

    // Episodes that release do so this long after the grant (virtual time);
    // jitter decorrelates the release train from the arrival train.
    let hold_base = SimDuration::from_millis(30);

    let mut busy_until = vec![SimTime::ZERO; group.shard_count()];
    let mut pending_releases: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut granted = 0u64;
    let mut rejected = 0u64;
    let mut latencies_us = Vec::with_capacity(requests.len());
    let mut lifecycle_cursor = SimTime::ZERO;
    let lifecycle_cadence = SimDuration::from_millis(100);
    let mut first_arrival: Option<SimTime> = None;

    for (i, request) in requests.iter().enumerate() {
        first_arrival.get_or_insert(request.arrival);
        let shard = group.shard_for_tenant(&request.tenant);
        // Service start: the shard's queue may already be backlogged far
        // past this arrival — releases and lifecycle work due before then
        // have happened from the plane's point of view, so process them
        // first (otherwise a saturated storm never returns resources).
        let service_start = request.arrival.max(busy_until[shard]);
        while let Some(Reverse((at, lease_id))) = pending_releases.peek().copied() {
            if at > service_start {
                break;
            }
            pending_releases.pop();
            // The lifecycle driver may have expired it first; both paths
            // return the resources, so an unknown lease is fine.
            let _ = group.release_lease(lease_id);
        }
        // Background lifecycle work (heartbeats, expiry) at a fixed cadence.
        while lifecycle_cursor + lifecycle_cadence <= service_start {
            lifecycle_cursor += lifecycle_cadence;
            driver.step(lifecycle_cursor);
        }

        let clock = VirtualClock::new();
        clock.advance_to(request.arrival);
        // The client serialises and submits, then waits for the shard's
        // queue: the manager replica serves one allocation at a time.
        clock.advance(config.allocation_submit_cost);
        clock.advance_to(busy_until[shard].max(clock.now()));
        let mut lease_request = LeaseRequest::single_worker(PACKAGE)
            .with_cores(request.cores)
            .with_memory_mib(request.memory_mib);
        lease_request.timeout = request.lease_timeout;
        match group.managers()[shard].request_lease(&lease_request, &clock) {
            Ok((lease, _executor)) => {
                granted += 1;
                latencies_us.push(
                    clock
                        .now()
                        .saturating_since(request.arrival)
                        .as_micros_f64(),
                );
                if request.releases_lease {
                    let jitter = SimDuration::from_millis((i % 50) as u64);
                    pending_releases.push(Reverse((clock.now() + hold_base + jitter, lease.id)));
                }
                // Abandoned leases stay until the lifecycle driver expires
                // them — the second churn source.
            }
            Err(_) => rejected += 1,
        }
        // Rejections consumed manager time too (the processing cost is
        // charged before the placement decision).
        busy_until[shard] = group.managers()[shard].clock().now();
    }

    let makespan_end = busy_until.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let makespan = makespan_end.saturating_since(first_arrival.unwrap_or(SimTime::ZERO));

    // Drain: release the stragglers, then let expiry reclaim the abandoned
    // leases. Every lease must be gone — churn enforcement is part of what
    // this figure certifies.
    let mut now = makespan_end;
    while let Some(Reverse((at, lease_id))) = pending_releases.pop() {
        now = now.max(at);
        let _ = group.release_lease(lease_id);
    }
    let drain_deadline = now + SimDuration::from_secs(60);
    while group.lease_count() > 0 {
        now += SimDuration::from_secs(1);
        driver.step(now);
        assert!(
            now < drain_deadline,
            "leases survived the drain: {} left",
            group.lease_count()
        );
    }

    StormOutcome {
        granted,
        rejected,
        latencies_us,
        throughput: granted as f64 / makespan.as_secs_f64().max(1e-9),
        expired: driver.total().leases_expired,
    }
}

/// Build a valid invocation payload for a workload kind (the structured
/// layouts the real functions expect), plus a sufficient output capacity.
fn payload_for(kind: WorkloadKind, approx_bytes: usize, seed: u64) -> (Vec<u8>, usize) {
    match kind {
        WorkloadKind::Echo => (
            generate_payload(approx_bytes.max(8), seed),
            approx_bytes.max(8),
        ),
        WorkloadKind::Thumbnailer => (
            Image::synthetic(approx_bytes.max(4096), seed).encode(),
            300 * 1024,
        ),
        WorkloadKind::Inference => (
            Image::synthetic(approx_bytes.max(4096), seed).encode(),
            16 * 1024,
        ),
        WorkloadKind::BlackScholes => {
            let contracts = (approx_bytes / 48).max(1);
            (
                options_to_bytes(&generate_options(contracts, seed)),
                contracts * 8 + 64,
            )
        }
        WorkloadKind::Matmul => {
            let n = 16;
            let a = random_matrix(n, seed);
            let b = random_matrix(n, seed + 1);
            (encode_matmul_request(&a, &b, n, 0, n), n * n * 8)
        }
        WorkloadKind::Jacobi => {
            let n = 16;
            let system = JacobiSystem::generate(n, seed);
            let x = vec![0.0f64; n];
            (encode_install(&system, &x, 0, n), n * 8 + 64)
        }
    }
}

struct FleetOutcome {
    episodes: u64,
    invocations: u64,
    latencies_us: Vec<f64>,
    shard_costs: Vec<f64>,
    tenant_shards: Vec<usize>,
}

/// Phase 2: the full allocate → invoke → bill → release pipeline, tenant by
/// tenant, on a fixed-size plane. Real invokers, real workload payloads,
/// RDMA-atomic billing flushed into each shard's database.
fn run_fleet(requests: &[TenantRequest], shards: usize, executors: usize) -> FleetOutcome {
    let config = RFaasConfig::paper_calibration();
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let group = ManagerGroup::new(&fabric, config.clone(), shards);
    register_executors(&fabric, &registry, &config, &group, executors);
    let driver = GroupLifecycleDriver::new(&group);

    let mut latencies_us = Vec::new();
    let mut invocations = 0u64;
    let mut episodes = 0u64;
    let mut tenant_shards = Vec::new();
    for (episode, request) in requests.iter().enumerate() {
        driver.step(request.arrival);
        let shard = group.shard_for_tenant(&request.tenant);
        tenant_shards.push(shard);
        let manager = group.manager_for_tenant(&request.tenant);
        let session = Session::builder(
            &fabric,
            &format!("{}-ep{episode}", request.tenant),
            &manager,
            PACKAGE,
        )
        .config(config.clone())
        .workers(request.cores)
        .memory_mib(request.memory_mib)
        .lease_timeout(request.lease_timeout.max(SimDuration::from_secs(30)))
        .starting_at(request.arrival)
        .connect()
        .expect("fleet allocation succeeds");
        let (payload, output_capacity) =
            payload_for(request.workload, request.payload_bytes, episode as u64);
        let function = session
            .function::<[u8], [u8]>(request.workload.function_name())
            .expect("workload function deployed")
            .with_output_capacity(output_capacity);
        for _ in 0..request.invocations {
            let (_, rtt) = function
                .invoke_timed(&payload[..])
                .expect("fleet invocation succeeds");
            latencies_us.push(rtt.as_micros_f64());
            invocations += 1;
        }
        session.close().expect("release succeeds");
        episodes += 1;
    }
    assert_eq!(group.lease_count(), 0, "every fleet lease must be released");

    FleetOutcome {
        episodes,
        invocations,
        latencies_us,
        shard_costs: group.per_shard_costs(),
        tenant_shards,
    }
}

fn main() {
    let quick = quick_mode();
    // Storm shape: `tenants` tenants whose combined episode rate saturates a
    // multi-shard plane (single-shard service rate is 1/allocation cost ≈
    // 1.4 k/s), so queueing — and its relief by sharding — is visible.
    let (tenants, mean_gap_ms, horizon_ms, executors) = if quick {
        (600, 70u64, 500u64, 160)
    } else {
        (2000, 200u64, 1000u64, 256)
    };
    let shard_counts = [1usize, 2, 4, 8];

    let fleet = TenantFleet::generate(1503, tenants, SimDuration::from_millis(mean_gap_ms));
    let requests = fleet.requests(SimDuration::from_millis(horizon_ms));
    println!("# Figure 15: sharded manager plane — allocation throughput under multi-tenant churn");
    println!(
        "# fleet: {tenants} tenants, {} allocation episodes over {horizon_ms} ms, {executors} spot executors",
        requests.len()
    );

    let mut rows = Vec::new();
    let mut throughput_by_shards = Vec::new();
    let mut p99_by_shards = Vec::new();
    for &shards in &shard_counts {
        let outcome = run_storm(&requests, shards, executors);
        let latency = Summary::of(&outcome.latencies_us);
        println!(
            "# {shards} shard(s): {} granted, {} rejected, {} expired by the lifecycle driver, {:.0} alloc/s, p50 {:.0} us, p99 {:.0} us",
            outcome.granted, outcome.rejected, outcome.expired,
            outcome.throughput, latency.median, latency.p99
        );
        assert!(
            outcome.rejected * 4 < outcome.granted,
            "capacity must not dominate the storm: {} rejected vs {} granted at {shards} shards",
            outcome.rejected,
            outcome.granted
        );
        assert!(
            outcome.expired > 0,
            "abandoned leases must churn through expiry at {shards} shards"
        );
        rows.push(ResultRow {
            series: "allocation throughput".into(),
            x: shards as f64,
            median: outcome.throughput,
            p99: outcome.throughput,
            unit: "alloc/s".into(),
        });
        rows.push(ResultRow {
            series: "allocation latency".into(),
            x: shards as f64,
            median: latency.median,
            p99: latency.p99,
            unit: "us".into(),
        });
        throughput_by_shards.push((shards, outcome.throughput));
        p99_by_shards.push((shards, latency.p99));
    }

    // Phase 2: the full pipeline on a 4-shard plane with a smaller fleet.
    let (fleet_tenants, fleet_horizon_s) = if quick { (12, 30u64) } else { (32, 60) };
    let fleet2 = TenantFleet::generate(2718, fleet_tenants, SimDuration::from_secs(15));
    let fleet_requests = fleet2.requests(SimDuration::from_secs(fleet_horizon_s));
    let fleet_outcome = run_fleet(&fleet_requests, 4, 16);
    let fleet_latency = Summary::of(&fleet_outcome.latencies_us);
    let total_cost: f64 = fleet_outcome.shard_costs.iter().sum();
    println!(
        "# fleet pipeline: {} episodes, {} invocations across {} tenants; per-shard billing {:?} (total {total_cost:.6})",
        fleet_outcome.episodes,
        fleet_outcome.invocations,
        fleet_tenants,
        fleet_outcome.shard_costs
    );
    rows.push(ResultRow {
        series: "fleet invocation latency".into(),
        x: fleet_tenants as f64,
        median: fleet_latency.median,
        p99: fleet_latency.p99,
        unit: "us".into(),
    });
    rows.push(ResultRow {
        series: "fleet billing total".into(),
        x: 4.0,
        median: total_cost,
        p99: total_cost,
        unit: "USD".into(),
    });
    print_table(
        "Allocation throughput and end-to-end latency, 1-8 manager shards",
        &rows,
    );

    // --- Regression gates -------------------------------------------------
    let thr = |s: usize| {
        throughput_by_shards
            .iter()
            .find(|(n, _)| *n == s)
            .map(|(_, t)| *t)
            .expect("shard count measured")
    };
    assert!(
        thr(4) >= 2.0 * thr(1),
        "4-shard allocation throughput must be >= 2x the 1-shard baseline: {:.0} vs {:.0} alloc/s",
        thr(4),
        thr(1)
    );
    assert!(thr(8) > thr(1), "throughput must keep rising past 4 shards");
    let p99 = |s: usize| {
        p99_by_shards
            .iter()
            .find(|(n, _)| *n == s)
            .map(|(_, t)| *t)
            .expect("shard count measured")
    };
    assert!(
        p99(4) < p99(1),
        "sharding must cut p99 grant latency under saturation: {:.0} vs {:.0} us",
        p99(4),
        p99(1)
    );
    assert!(
        fleet_outcome.invocations > 0 && total_cost > 0.0,
        "the fleet pipeline must invoke and bill"
    );
    // Billing must land on the shard that owns each tenant: every shard
    // that served at least one episode must have accrued usage.
    let served: std::collections::BTreeSet<usize> =
        fleet_outcome.tenant_shards.iter().copied().collect();
    for shard in served {
        assert!(
            fleet_outcome.shard_costs[shard] > 0.0,
            "shard {shard} served tenants but billed nothing"
        );
    }
}
