//! Figure 9: cold-invocation cost breakdown for bare-metal and Docker
//! executors, with 1 B and 1 MB payloads and 1 or 32 worker threads.
//! The stacked components are: connect to manager, submit allocation,
//! spawn worker (sandbox + executor + threads), submit code, and the first
//! invocation itself.

use rfaas::PollingMode;
use rfaas_bench::{quick_mode, Testbed};
use sandbox::SandboxType;

fn run_case(sandbox: SandboxType, payload: usize, workers: u32, repetitions: usize) {
    let mut components = [0.0f64; 6];
    let mut opened = 0u64;
    let mut pool_misses = 0u64;
    let mut srq_watermark = 0usize;
    for rep in 0..repetitions {
        let testbed = Testbed::new(1);
        let session = testbed
            .session(&format!("fig9-client-{rep}"))
            .workers(workers)
            .sandbox(sandbox)
            .polling(PollingMode::Hot)
            .connect()
            .expect("allocation succeeds");
        let cold = session.cold_start().expect("cold start recorded").clone();
        let echo = session.function::<[u8], [u8]>("echo").expect("echo");
        let data = workloads::generate_payload(payload, 3);
        let (_, first_invocation) = echo.invoke_timed(&data[..]).expect("first invocation");
        components[0] += cold.connect_to_manager.as_millis_f64();
        components[1] += cold.submit_allocation.as_millis_f64();
        components[2] += cold.spawn_workers.as_millis_f64();
        components[3] += cold.submit_code.as_millis_f64();
        components[4] += cold.connect_to_workers.as_millis_f64();
        components[5] += first_invocation.as_millis_f64();
        let conn = session.stats().connections;
        opened += conn.connections_opened;
        pool_misses += conn.pool_misses;
        srq_watermark = srq_watermark.max(conn.srq_depth_high_watermark);
        session.close().expect("deallocate");
    }
    println!(
        "#   connection plane: {opened} connections opened ({pool_misses} pool misses — every cold start is first contact), SRQ depth high watermark {srq_watermark}"
    );
    for c in components.iter_mut() {
        *c /= repetitions as f64;
    }
    let total: f64 = components.iter().sum();
    println!(
        "{:<11} payload={:<9} workers={:<3} | connect-mgr {:>7.2} ms | submit-alloc {:>7.2} ms | spawn-worker {:>9.2} ms | submit-code {:>7.2} ms | connect-workers {:>7.2} ms | invoke {:>7.3} ms | total {:>9.2} ms",
        format!("{sandbox:?}"),
        if payload >= 1024 * 1024 { "1 MB" } else { "1 B" },
        workers,
        components[0],
        components[1],
        components[2],
        components[3],
        components[4],
        components[5],
        total
    );
}

fn main() {
    let repetitions = if quick_mode() { 2 } else { 10 };
    println!("# Figure 9: cold invocation breakdown (means over {repetitions} cold starts)");
    println!("# paper: bare-metal sandbox init ~25 ms, Docker + SR-IOV ~2.7 s; spawn worker dominates, all other steps single-digit ms");
    for sandbox in [SandboxType::BareMetal, SandboxType::Docker] {
        for payload in [1usize, 1024 * 1024] {
            for workers in [1u32, 32] {
                run_case(sandbox, payload, workers, repetitions);
            }
        }
    }
}
