//! Figure 12: parallel serverless offloading of the PARSEC Black-Scholes
//! batch — OpenMP-style local threading, full rFaaS offloading, and the
//! hybrid OpenMP + rFaaS configuration, for parallelism 1–32.
//!
//! The paper's batch is ~229 MB of option data (≈5 million contracts). The
//! default run scales the batch down by 8× (the compute-to-communication
//! ratio, and therefore the crossover behaviour, is unchanged because both
//! scale linearly in the option count); pass `--full` for the paper-sized
//! batch.

use rfaas::{LeaseRequest, PollingMode, RFaasConfig};
use rfaas_bench::{print_table, quick_mode, ResultRow, Testbed, PACKAGE};
use sim_core::SimDuration;
use workloads::blackscholes::{local_parallel_cost, options_to_bytes, COST_PER_OPTION};
use workloads::generate_options;

fn parallelism_sweep() -> Vec<usize> {
    vec![1, 4, 8, 12, 16, 20, 24, 28, 32]
}

/// Offload `options[range]` across the invoker's workers and return the
/// client-observed batch completion time.
fn offload_batch(
    invoker: &rfaas::Invoker,
    encoded_chunks: &[Vec<u8>],
    output_capacity: usize,
) -> SimDuration {
    let alloc = invoker.allocator();
    let start = invoker.clock().now();
    let buffers: Vec<_> = encoded_chunks
        .iter()
        .map(|chunk| {
            let input = alloc.input(chunk.len());
            let output = alloc.output(output_capacity);
            input.write_payload(chunk).expect("chunk fits");
            (input, output, chunk.len())
        })
        .collect();
    let futures: Vec<_> = buffers
        .iter()
        .enumerate()
        .map(|(worker, (input, output, len))| {
            invoker
                .submit_to_worker(worker, "blackscholes", input, *len, output)
                .expect("submit")
        })
        .collect();
    for future in futures {
        future.wait().expect("result");
    }
    invoker.clock().now().saturating_since(start)
}

fn split_chunks(options_bytes: &[u8], parts: usize) -> Vec<Vec<u8>> {
    const RECORD: usize = 48;
    let records = options_bytes.len() / RECORD;
    let per_part = records.div_ceil(parts);
    (0..parts)
        .map(|p| {
            let begin = (p * per_part).min(records) * RECORD;
            let end = ((p + 1) * per_part).min(records) * RECORD;
            options_bytes[begin..end].to_vec()
        })
        .filter(|c| !c.is_empty())
        .collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let total_options: usize = if full {
        5_000_000
    } else if quick_mode() {
        200_000
    } else {
        625_000
    };
    let options = generate_options(total_options, 2021);
    let encoded = options_to_bytes(&options);
    let serial = local_parallel_cost(total_options, 1);
    println!(
        "# Figure 12: Black-Scholes offloading, {total_options} options ({:.1} MB input, {:.1} MB output), serial time {:.1} ms",
        encoded.len() as f64 / 1e6,
        (total_options * 8) as f64 / 1e6,
        serial.as_millis_f64()
    );

    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = encoded.len() + (1 << 20);
    let mut rows = Vec::new();

    for &parallelism in &parallelism_sweep() {
        // OpenMP: static partition over local threads.
        let openmp = local_parallel_cost(total_options, parallelism);
        rows.push(ResultRow {
            series: "OpenMP".into(),
            x: parallelism as f64,
            median: openmp.as_millis_f64(),
            p99: openmp.as_millis_f64(),
            unit: "ms".into(),
        });

        // rFaaS: the entire batch offloaded to `parallelism` remote workers.
        let testbed = Testbed::with_config(2, config.clone());
        let mut invoker = testbed.invoker("fig12-client");
        invoker
            .allocate(
                LeaseRequest::single_worker(PACKAGE)
                    .with_cores(parallelism as u32)
                    .with_memory_mib(32 * 1024),
                PollingMode::Hot,
            )
            .expect("allocation");
        let chunks = split_chunks(&encoded, parallelism);
        let output_capacity = (total_options.div_ceil(parallelism) + 64) * 8;
        let rfaas_time = offload_batch(&invoker, &chunks, output_capacity);
        rows.push(ResultRow {
            series: "rFaaS".into(),
            x: parallelism as f64,
            median: rfaas_time.as_millis_f64(),
            p99: rfaas_time.as_millis_f64(),
            unit: "ms".into(),
        });

        // OpenMP + rFaaS: half the batch locally, half offloaded; the
        // application finishes when the slower half finishes.
        let local_half = local_parallel_cost(total_options / 2, parallelism);
        let half_chunks = split_chunks(&encoded[..encoded.len() / 2], parallelism);
        let remote_half = offload_batch(&invoker, &half_chunks, output_capacity);
        let hybrid = local_half.max(remote_half);
        rows.push(ResultRow {
            series: "OpenMP + rFaaS".into(),
            x: parallelism as f64,
            median: hybrid.as_millis_f64(),
            p99: hybrid.as_millis_f64(),
            unit: "ms".into(),
        });
        invoker.deallocate().expect("deallocate");
    }
    print_table(
        "Figure 12 (left): Black-Scholes completion time vs parallelism",
        &rows,
    );

    // Speedup over the serial execution (right panel of Fig. 12).
    let mut speedups = Vec::new();
    for row in &rows {
        speedups.push(ResultRow {
            series: format!("speedup {}", row.series),
            x: row.x,
            median: serial.as_millis_f64() / row.median,
            p99: serial.as_millis_f64() / row.median,
            unit: "x".into(),
        });
    }
    print_table(
        "Figure 12 (right): speedup over serial execution",
        &speedups,
    );
    println!(
        "\n# network transmission time of the full batch: {:.1} ms (paper: ~20 ms for 229 MB)",
        rdma_fabric::NicProfile::mellanox_cx5_100g()
            .serialization(encoded.len())
            .as_millis_f64()
    );
    println!("# expected shape: rFaaS tracks OpenMP until per-worker compute approaches the transmission time;");
    println!("# OpenMP + rFaaS roughly doubles the OpenMP speedup (paper: ~2x boost through FaaS offloading).");
    println!(
        "# per-option compute cost model: {} ns",
        COST_PER_OPTION.as_nanos()
    );
}
