//! Figure 12: parallel serverless offloading of the PARSEC Black-Scholes
//! batch — OpenMP-style local threading, full rFaaS offloading, and the
//! hybrid OpenMP + rFaaS configuration, for parallelism 1–32.
//!
//! The offloading path is the typed session API end-to-end: a
//! `FunctionHandle<OptionBatch, [f64]>` scatters the chunks with
//! `map_workers`, so all N submissions ride one doorbell (the chained-WQE
//! path of `QueuePair::post_send_batch`) and the results come back through a
//! `CompletionSet`. The final section prints the doorbell/chained-WQE cost
//! breakdown and gates on the batching actually happening.
//!
//! The paper's batch is ~229 MB of option data (≈5 million contracts). The
//! default run scales the batch down by 8× (the compute-to-communication
//! ratio, and therefore the crossover behaviour, is unchanged because both
//! scale linearly in the option count); pass `--full` for the paper-sized
//! batch.

use rfaas::{BatchStats, FunctionHandle, RFaasConfig, Session};
use rfaas_bench::{print_table, quick_mode, ResultRow, Testbed};
use sim_core::SimDuration;
use workloads::blackscholes::{local_parallel_cost, COST_PER_OPTION};
use workloads::{generate_options, OptionBatch, OPTION_WIRE_BYTES};

fn parallelism_sweep() -> Vec<usize> {
    vec![1, 4, 8, 12, 16, 20, 24, 28, 32]
}

/// Scatter the chunks across the session's workers behind one doorbell and
/// return the client-observed batch completion time plus the submission's
/// doorbell accounting.
fn offload_batch(
    session: &Session,
    pricer: &FunctionHandle<'_, OptionBatch, [f64]>,
    chunks: &[OptionBatch],
) -> (SimDuration, BatchStats) {
    let start = session.clock().now();
    let set = pricer.map_workers(chunks.iter()).expect("scatter");
    let stats = set.stats();
    let results = set.wait_all().expect("results");
    let priced: usize = results.iter().map(|r| r.len()).sum();
    assert_eq!(
        priced,
        chunks.iter().map(|c| c.len()).sum::<usize>(),
        "every option must come back priced"
    );
    (session.clock().now().saturating_since(start), stats)
}

fn split_chunks(
    options: &[workloads::blackscholes::OptionContract],
    parts: usize,
) -> Vec<OptionBatch> {
    let per_part = options.len().div_ceil(parts);
    options
        .chunks(per_part)
        .map(|c| OptionBatch(c.to_vec()))
        .collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let total_options: usize = if full {
        5_000_000
    } else if quick_mode() {
        200_000
    } else {
        625_000
    };
    let options = generate_options(total_options, 2021);
    let input_bytes = total_options * OPTION_WIRE_BYTES;
    let serial = local_parallel_cost(total_options, 1);
    println!(
        "# Figure 12: Black-Scholes offloading, {total_options} options ({:.1} MB input, {:.1} MB output), serial time {:.1} ms",
        input_bytes as f64 / 1e6,
        (total_options * 8) as f64 / 1e6,
        serial.as_millis_f64()
    );

    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = input_bytes + (1 << 20);
    let mut rows = Vec::new();
    // Doorbell accounting of the widest scatter, for the breakdown below.
    let mut widest_batch: Option<(usize, BatchStats, usize)> = None;

    for &parallelism in &parallelism_sweep() {
        // OpenMP: static partition over local threads.
        let openmp = local_parallel_cost(total_options, parallelism);
        rows.push(ResultRow {
            series: "OpenMP".into(),
            x: parallelism as f64,
            median: openmp.as_millis_f64(),
            p99: openmp.as_millis_f64(),
            unit: "ms".into(),
        });

        // rFaaS: the entire batch offloaded to `parallelism` remote workers
        // through the typed scatter/gather path.
        let testbed = Testbed::with_config(2, config.clone());
        let session = testbed
            .session("fig12-client")
            .workers(parallelism as u32)
            .memory_mib(32 * 1024)
            .connect()
            .expect("allocation");
        let chunk_capacity = total_options.div_ceil(parallelism) * OPTION_WIRE_BYTES;
        let pricer = session
            .function::<OptionBatch, [f64]>("blackscholes")
            .expect("blackscholes deployed")
            .with_output_capacity((total_options.div_ceil(parallelism) + 64) * 8);
        let chunks = split_chunks(&options, parallelism);
        let (rfaas_time, stats) = offload_batch(&session, &pricer, &chunks);
        if widest_batch
            .as_ref()
            .is_none_or(|(p, _, _)| *p < parallelism)
        {
            widest_batch = Some((parallelism, stats, chunk_capacity));
        }
        rows.push(ResultRow {
            series: "rFaaS".into(),
            x: parallelism as f64,
            median: rfaas_time.as_millis_f64(),
            p99: rfaas_time.as_millis_f64(),
            unit: "ms".into(),
        });

        // OpenMP + rFaaS: half the batch locally, half offloaded; the
        // application finishes when the slower half finishes.
        let local_half = local_parallel_cost(total_options / 2, parallelism);
        let half_chunks = split_chunks(&options[..options.len() / 2], parallelism);
        let (remote_half, _) = offload_batch(&session, &pricer, &half_chunks);
        let hybrid = local_half.max(remote_half);
        rows.push(ResultRow {
            series: "OpenMP + rFaaS".into(),
            x: parallelism as f64,
            median: hybrid.as_millis_f64(),
            p99: hybrid.as_millis_f64(),
            unit: "ms".into(),
        });
        session.close().expect("deallocate");
    }
    print_table(
        "Figure 12 (left): Black-Scholes completion time vs parallelism",
        &rows,
    );

    // Speedup over the serial execution (right panel of Fig. 12).
    let mut speedups = Vec::new();
    for row in &rows {
        speedups.push(ResultRow {
            series: format!("speedup {}", row.series),
            x: row.x,
            median: serial.as_millis_f64() / row.median,
            p99: serial.as_millis_f64() / row.median,
            unit: "x".into(),
        });
    }
    print_table(
        "Figure 12 (right): speedup over serial execution",
        &speedups,
    );

    // Chained-WQE billing breakdown: the widest scatter must have shared one
    // doorbell, and the batched posting burst must beat what the same WQEs
    // would have cost posted individually.
    let profile = rdma_fabric::NicProfile::mellanox_cx5_100g();
    let (parallelism, stats, chunk_capacity) =
        widest_batch.expect("at least one offloaded configuration");
    let wire = chunk_capacity + rfaas::INVOCATION_HEADER_BYTES;
    let unchained_estimate = profile.issue_cost(wire) * stats.submissions as u64;
    let chained_estimate =
        profile.issue_cost(wire) + profile.issue_cost_chained(wire) * stats.chained_wqes as u64;
    println!("\n# scatter/gather submission cost breakdown ({parallelism} workers, typed map_workers path)");
    println!(
        "submissions {}, doorbells {}, chained WQEs {} (chained_wqe_overhead {} per WQE)",
        stats.submissions, stats.doorbells, stats.chained_wqes, profile.chained_wqe_overhead
    );
    println!(
        "posting burst on the client clock: {} (chained estimate {}, unchained estimate {})",
        stats.post_time, chained_estimate, unchained_estimate
    );
    assert_eq!(stats.doorbells, 1, "the scatter must share one doorbell");
    assert_eq!(
        stats.chained_wqes,
        stats.submissions - 1,
        "every WQE after the first must ride the chain"
    );
    assert!(
        stats.post_time < unchained_estimate,
        "batched posting ({}) must beat per-submission doorbells ({})",
        stats.post_time,
        unchained_estimate
    );

    println!(
        "\n# network transmission time of the full batch: {:.1} ms (paper: ~20 ms for 229 MB)",
        profile.serialization(input_bytes).as_millis_f64()
    );
    println!("# expected shape: rFaaS tracks OpenMP until per-worker compute approaches the transmission time;");
    println!("# OpenMP + rFaaS roughly doubles the OpenMP speedup (paper: ~2x boost through FaaS offloading).");
    println!(
        "# per-option compute cost model: {} ns",
        COST_PER_OPTION.as_nanos()
    );
}
