//! Figure 16: completion-driven saturation — in-flight depth vs throughput
//! and tail latency on one client thread.
//!
//! The paper's invocation protocol gives every worker a single registered
//! input slot, so sustaining N in-flight invocations means holding N live
//! worker connections. A thread-per-connection client (and a thread-per-
//! worker executor) stops scaling long before the fabric does; the reactor
//! rebuilds both sides as completion-driven event loops: every session's
//! worker connections register with one shared [`rfaas::Reactor`], every
//! executor process multiplexes its workers' receive CQs over one
//! [`rdma_fabric::CqSet`] dispatcher thread. This experiment measures what
//! that buys: one client thread (one shared virtual clock) drives sessions
//! whose combined worker count — the in-flight depth — sweeps 1 → 4096,
//! and we record sustained throughput and the p99 gather latency per round.
//!
//! Expected shape: throughput climbs steeply with depth while the per-wave
//! submit/pickup costs amortise, then saturates as the client clock's
//! serial per-completion pickup work (Sec. III-C's completion-pickup cost)
//! becomes the bottleneck; p99 grows with depth because the last completion
//! of a wave queues behind every earlier pickup. The `--quick` run gates
//! the headline claim: 1024 in-flight invocations on one client thread
//! must sustain at least 5x the depth-1 invocation rate. The committed
//! `BENCH_BASELINE.json` additionally pins depth-1 throughput, saturated
//! throughput and saturated p99 (perf-snapshot job, ±15%).

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{PollingMode, RFaasConfig, Reactor, ResourceManager, Session, SpotExecutor};
use rfaas_bench::{evaluation_package, print_table, quick_mode, ResultRow, PACKAGE};
use sandbox::FunctionRegistry;
use sim_core::{Summary, VirtualClock};

/// Payload of every invocation: small on purpose, so the measured costs are
/// the platform's per-invocation overheads, not payload bandwidth.
const PAYLOAD_BYTES: usize = 64;

struct DepthOutcome {
    invocations: u64,
    /// Sustained rate over the whole run, thousands of invocations per
    /// second of client virtual time.
    throughput_kinv_s: f64,
    /// Per-invocation gather latencies (gather instant minus the round's
    /// submit instant), microseconds.
    latencies_us: Vec<f64>,
    /// Completions pumped/dispatched by the shared reactor.
    pumped: u64,
    dispatched: u64,
}

/// Drive `rounds` full waves at a fixed in-flight depth: `sessions` sessions
/// of `depth / sessions` workers each, all sharing one reactor and one
/// client clock, each round scattering one invocation to every worker and
/// gathering all of them through the reactor.
fn run_depth(depth: usize, rounds: usize) -> DepthOutcome {
    // Per-worker input buffers are sized by `max_payload_bytes`; the default
    // 8 MiB would register gigabytes at depth 4096. Saturation is about
    // invocation count, not payload size.
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = 4096;

    let sessions = depth.min(8);
    assert_eq!(depth % sessions, 0, "depth must split evenly over sessions");
    let per_session = depth / sessions;

    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let manager = ResourceManager::new(&fabric, config.clone());
    // One executor node per session, sized exactly to its lease, so
    // placement is deterministic and every worker owns a core (hot workers
    // hold their core for their lifetime).
    for i in 0..sessions {
        let executor = SpotExecutor::new(
            &fabric,
            &format!("sat-exec-{i:02}"),
            NodeResources {
                cores: per_session as u32,
                memory_mib: 16 * 1024,
            },
            registry.clone(),
            config.clone(),
        );
        manager.register_executor(&executor);
    }

    // The "one client thread": a single reactor draining every session's
    // connections and a single virtual clock all submissions and pickups
    // serialise on.
    let reactor = Reactor::new();
    let clock = VirtualClock::shared();
    let session_handles: Vec<Session> = (0..sessions)
        .map(|i| {
            Session::builder(&fabric, &format!("sat-client-{i:02}"), &manager, PACKAGE)
                .config(config.clone())
                .workers(per_session as u32)
                .memory_mib(1024)
                .polling(PollingMode::Hot)
                .reactor(&reactor)
                .clock(&clock)
                .connect()
                .expect("saturation allocation succeeds")
        })
        .collect();
    let functions: Vec<_> = session_handles
        .iter()
        .map(|s| {
            s.function::<[u8], [u8]>("echo")
                .expect("echo deployed")
                .with_output_capacity(PAYLOAD_BYTES)
        })
        .collect();

    let payload = [0xabu8; PAYLOAD_BYTES];
    let inputs: Vec<&[u8]> = (0..per_session).map(|_| &payload[..]).collect();

    let mut latencies_us = Vec::with_capacity(depth * rounds);
    let mut invocations = 0u64;
    let start = clock.now();
    for _ in 0..rounds {
        let round_start = clock.now();
        // Scatter: one wave per session, `depth` invocations in flight
        // before the first gather.
        let mut sets: Vec<_> = functions
            .iter()
            .map(|f| {
                f.map_workers(inputs.iter().copied())
                    .expect("scatter succeeds")
            })
            .collect();
        // Gather: the shared reactor dispatches completions of every
        // session while any set is being drained.
        for set in &mut sets {
            while let Some((_, reply)) = set.wait_any().expect("gather succeeds") {
                assert_eq!(reply.len(), PAYLOAD_BYTES);
                latencies_us.push(clock.now().saturating_since(round_start).as_micros_f64());
                invocations += 1;
            }
        }
    }
    let elapsed = clock.now().saturating_since(start);
    let stats = reactor.stats();

    for session in session_handles {
        session.close().expect("release succeeds");
    }

    DepthOutcome {
        invocations,
        throughput_kinv_s: invocations as f64 / elapsed.as_secs_f64().max(1e-12) / 1e3,
        latencies_us,
        pumped: stats.pumped,
        dispatched: stats.dispatched,
    }
}

fn main() {
    let quick = quick_mode();
    let (depths, rounds): (&[usize], usize) = if quick {
        (&[1, 16, 256, 1024], 3)
    } else {
        (&[1, 4, 16, 64, 256, 1024, 4096], 6)
    };

    println!(
        "# Figure 16: completion-driven saturation — one client thread, depth 1 -> {}",
        depths.last().unwrap()
    );
    println!("# each depth: sessions x workers = depth connections sharing one reactor + one client clock, {rounds} full waves");

    let mut rows = Vec::new();
    let mut throughput_at = Vec::new();
    for &depth in depths {
        let outcome = run_depth(depth, rounds);
        let latency = Summary::of(&outcome.latencies_us);
        println!(
            "# depth {depth}: {} invocations, {:.1} kinv/s, gather p50 {:.1} us, p99 {:.1} us, reactor pumped {} dispatched {}",
            outcome.invocations,
            outcome.throughput_kinv_s,
            latency.median,
            latency.p99,
            outcome.pumped,
            outcome.dispatched
        );
        assert_eq!(
            outcome.invocations,
            (depth * rounds) as u64,
            "every scattered invocation must be gathered at depth {depth}"
        );
        assert!(
            outcome.pumped >= outcome.invocations,
            "the shared reactor must have pumped every completion at depth {depth}: {} < {}",
            outcome.pumped,
            outcome.invocations
        );
        rows.push(ResultRow {
            series: "throughput".into(),
            x: depth as f64,
            median: outcome.throughput_kinv_s,
            p99: outcome.throughput_kinv_s,
            unit: "kinv/s".into(),
        });
        rows.push(ResultRow {
            series: "gather latency".into(),
            x: depth as f64,
            median: latency.median,
            p99: latency.p99,
            unit: "us".into(),
        });
        throughput_at.push((depth, outcome.throughput_kinv_s));
    }

    print_table(
        "In-flight depth vs throughput and gather latency, one client thread",
        &rows,
    );

    // --- Regression gates -------------------------------------------------
    let thr = |d: usize| {
        throughput_at
            .iter()
            .find(|(n, _)| *n == d)
            .map(|(_, t)| *t)
            .expect("depth measured")
    };
    let saturated = depths.iter().copied().find(|&d| d >= 1024).unwrap_or(1);
    assert!(
        thr(saturated) >= 5.0 * thr(1),
        "one client thread must sustain >= 5x the depth-1 rate at depth {saturated}: {:.1} vs {:.1} kinv/s",
        thr(saturated),
        thr(1)
    );
    // Throughput must not collapse past the knee: the saturated plateau
    // (every depth >= 256) stays within 2x of the best depth measured.
    let best = throughput_at.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    for &(depth, t) in &throughput_at {
        if depth >= 256 {
            assert!(
                t * 2.0 >= best,
                "throughput collapsed past the knee at depth {depth}: {t:.1} vs best {best:.1} kinv/s"
            );
        }
    }
}
