//! Figure 2: idle-CPU and free-memory percentages of a batch-managed cluster
//! sampled at one-minute granularity (Piz Daint in the paper; a synthetic
//! batch workload with matching statistics here).

use rfaas_bench::{print_table, quick_mode, ResultRow};
use sim_core::SimDuration;

fn main() {
    let (days, nodes) = if quick_mode() { (1, 16) } else { (7, 64) };
    let trace = cluster_sim::UtilizationTrace::synthesize(
        2021,
        nodes,
        SimDuration::from_secs(days * 24 * 3600),
        SimDuration::from_secs(60),
    );

    // Down-sample to hourly rows for the table; the JSON lines carry the same.
    let mut rows = Vec::new();
    for (i, point) in trace.points.iter().enumerate() {
        if i % 60 != 0 {
            continue;
        }
        let hours = point.time.as_secs_f64() / 3600.0;
        rows.push(ResultRow {
            series: "idle CPU".into(),
            x: hours,
            median: point.idle_cpu_pct,
            p99: point.idle_cpu_pct,
            unit: "%".into(),
        });
        rows.push(ResultRow {
            series: "free memory".into(),
            x: hours,
            median: point.free_memory_pct,
            p99: point.free_memory_pct,
            unit: "%".into(),
        });
    }
    print_table(
        "Figure 2: cluster utilization trace (1-minute sampling, hourly rows shown)",
        &rows,
    );

    println!("\n# summary (paper: 80-94% node utilization, ~75% of memory unused)");
    println!("mean idle CPU:        {:.1}%", trace.mean_idle_cpu());
    println!("mean free memory:     {:.1}%", trace.mean_free_memory());
    let (lo, hi) = trace.idle_cpu_range();
    println!("idle CPU range:       {:.1}% .. {:.1}%", lo, hi);
    println!(
        "samples with >=10% idle cores (harvest opportunity): {:.1}%",
        100.0 * trace.harvest_opportunity(10.0)
    );
}
