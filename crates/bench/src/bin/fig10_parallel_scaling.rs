//! Figure 10: parallel invocations on 1–32 remote executor workers with 1 kB
//! and 1 MB payloads, hot vs warm, against the aggregate link-bandwidth bound.
//!
//! The reported metric is the round-trip time of dispatching one invocation
//! to every worker simultaneously and collecting all results (the client-side
//! batch latency, as in Sec. V-D).

use rfaas::{FunctionHandle, PollingMode};
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed};
use sandbox::SandboxType;
use sim_core::SimDuration;

fn worker_counts() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 32]
}

fn measure(
    mode: PollingMode,
    label_prefix: &str,
    payload: usize,
    repetitions: usize,
    rows: &mut Vec<ResultRow>,
) {
    for &workers in &worker_counts() {
        let testbed = Testbed::new(1);
        let session =
            testbed.allocated_session("fig10-client", workers, SandboxType::BareMetal, mode);
        let echo = session.function::<[u8], [u8]>("echo").expect("echo");
        let data = workloads::generate_payload(payload, 11);
        let chunks: Vec<&[u8]> = (0..workers).map(|_| data.as_slice()).collect();
        // Warm-up round.
        run_round(&session, &echo, &chunks);
        let mut samples = Vec::with_capacity(repetitions);
        for _ in 0..repetitions {
            if let Some(n) = testbed.fabric.node("spot-00") {
                n.reset_contention()
            }
            samples.push(run_round(&session, &echo, &chunks));
        }
        let summary = summarize_us(&samples);
        rows.push(ResultRow {
            series: format!(
                "{label_prefix} {}",
                if payload >= 1024 * 1024 {
                    "1 MB"
                } else {
                    "1 kB"
                }
            ),
            x: workers as f64,
            median: summary.median,
            p99: summary.p99,
            unit: "us".into(),
        });
    }
}

/// One batch round: scatter one invocation per worker behind a shared
/// doorbell and gather every result.
fn run_round(
    session: &rfaas::Session,
    echo: &FunctionHandle<'_, [u8], [u8]>,
    chunks: &[&[u8]],
) -> SimDuration {
    let start = session.clock().now();
    let set = echo.map_workers(chunks.iter().copied()).expect("scatter");
    set.wait_all().expect("results");
    session.clock().now().saturating_since(start)
}

fn main() {
    let repetitions = if quick_mode() { 5 } else { 30 };
    let mut rows = Vec::new();
    for payload in [1024usize, 1024 * 1024] {
        measure(
            PollingMode::Hot,
            "rFaaS hot",
            payload,
            repetitions,
            &mut rows,
        );
        measure(
            PollingMode::Warm,
            "rFaaS warm",
            payload,
            repetitions,
            &mut rows,
        );
        // Aggregate-bandwidth bound of the 100 Gb/s link: all payloads must
        // stream out of the client NIC and the results must stream back in.
        let profile = rdma_fabric::NicProfile::mellanox_cx5_100g();
        for &workers in &worker_counts() {
            let bound = profile.serialization(payload * workers as usize)
                + profile.one_way_latency
                + profile.serialization(payload)
                + profile.one_way_latency;
            rows.push(ResultRow {
                series: format!(
                    "RDMA bandwidth bound {}",
                    if payload >= 1024 * 1024 {
                        "1 MB"
                    } else {
                        "1 kB"
                    }
                ),
                x: workers as f64,
                median: bound.as_micros_f64(),
                p99: bound.as_micros_f64(),
                unit: "us".into(),
            });
        }
    }
    print_table(
        "Figure 10: parallel invocations on remote executors (batch RTT vs worker count)",
        &rows,
    );
    println!("\n# expected shape (paper): 1 kB hot stays flat (a few us), 1 kB warm grows with notification contention,");
    println!("# 1 MB grows with worker count because the 100 Gb/s link saturates (~2.7 ms at 32 workers).");
}
