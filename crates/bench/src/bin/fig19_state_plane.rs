//! Figure 19: state-plane access vs copy-in/copy-out across value sizes.
//!
//! rFaaS as evaluated in the paper is stateless: any value a function needs
//! must travel inside the invocation payload and any value it produces must
//! travel back, so the wire cost of working over a reference dataset scales
//! with the dataset, not with the request. This experiment measures the
//! state plane this codebase adds on top of the paper's design: the dataset
//! lives in a distributed KV store reachable over one-sided RDMA, functions
//! declare it with `with_state`, and the executor-side state client caches
//! hot keys in a pre-registered region so repeated reads cost no wire
//! traffic at all.
//!
//! Three series are swept over the dataset size:
//!
//! * **copy-in/copy-out** — the stateless baseline: an echo invocation
//!   carrying the dataset both ways,
//! * **state plane first read** — the invocation that materialises the key
//!   into the executor's cache over a one-sided READ (the value moves once,
//!   one way),
//! * **state plane hot** — every later invocation: the key is cache-resident
//!   and only the 8-byte request/fingerprint frames touch the wire.
//!
//! The run aborts unless hot state access beats copy-in/copy-out by at
//! least 5x at the megabyte sizes — the headline that makes stateful
//! functions worth a second data plane.

use rfaas::{PollingMode, StateKey, StatePlane};
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed, DATASET_KEY};
use sandbox::SandboxType;
use sim_core::SimDuration;

/// Dataset sizes swept (bytes). The default payload ceiling is 8 MiB, so the
/// copy baseline can carry every size.
const SIZES: [usize; 4] = [4 * 1024, 64 * 1024, 1024 * 1024, 4 * 1024 * 1024];

/// Hot invocations measured per size after the cache-filling first read.
const HOT_INVOCATIONS: usize = 4;

struct SizePoint {
    copy: Vec<SimDuration>,
    first_read: Vec<SimDuration>,
    hot: Vec<SimDuration>,
}

fn run_rep(rep: usize, points: &mut [SizePoint]) {
    let testbed = Testbed::new(1);
    let plane = StatePlane::new(&testbed.fabric, "state-0", 64 * 1024 * 1024);
    let session = testbed
        .session(&format!("fig19-client-{rep}"))
        .sandbox(SandboxType::BareMetal)
        .polling(PollingMode::Hot)
        .state_plane(&plane)
        .connect()
        .expect("allocation with a state plane attached");

    // Seed the key once so the read-only declaration below binds; each size
    // then overwrites it, which invalidates the executor's cached copy and
    // makes the next read a genuine first read.
    session
        .state()
        .put(DATASET_KEY, &[0u8; 8])
        .expect("seed dataset key");
    let echo = session.function::<[u8], [u8]>("echo").expect("echo");
    let touch = session
        .function::<[u8], [u8]>("state-touch")
        .expect("state-touch")
        .with_state([StateKey::read(DATASET_KEY)])
        .expect("dataset key declared");

    for (point, &size) in points.iter_mut().zip(&SIZES) {
        let dataset = workloads::generate_payload(size, size as u64);

        // Stateless baseline: the dataset travels inside the invocation,
        // there and back again.
        let (reply, rtt) = echo.invoke_timed(&dataset[..]).expect("copy baseline");
        assert_eq!(reply.len(), size);
        point.copy.push(rtt);

        // Publish the dataset; the executor's cached copy (if any) is
        // invalidated, so the next touch pays the one-sided READ.
        session
            .state()
            .put(DATASET_KEY, &dataset)
            .expect("publish dataset");
        let expected = (size + dataset[0] as usize + dataset[size - 1] as usize) as u64;
        let (reply, rtt) = touch.invoke_timed(&[0u8; 8][..]).expect("first read");
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), expected);
        point.first_read.push(rtt);

        // Steady state: the key is hot in the executor's cache.
        for _ in 0..HOT_INVOCATIONS {
            let (reply, rtt) = touch.invoke_timed(&[0u8; 8][..]).expect("hot read");
            assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), expected);
            point.hot.push(rtt);
        }
    }

    let stats = session.stats();
    let exec = stats.state_executor.expect("executor-side state client");
    assert_eq!(
        exec.remote_reads as usize,
        SIZES.len(),
        "exactly one one-sided READ per published size"
    );
    assert!(
        exec.cache_hits as usize >= SIZES.len() * HOT_INVOCATIONS,
        "hot touches must be cache hits"
    );
    session.close().expect("deallocate");
}

fn main() {
    let repetitions = if quick_mode() { 3 } else { 10 };
    println!(
        "# Figure 19: state-plane access vs copy-in/copy-out ({repetitions} reps, {HOT_INVOCATIONS} hot invocations per size)"
    );

    let mut points: Vec<SizePoint> = SIZES
        .iter()
        .map(|_| SizePoint {
            copy: Vec::new(),
            first_read: Vec::new(),
            hot: Vec::new(),
        })
        .collect();
    for rep in 0..repetitions {
        run_rep(rep, &mut points);
    }

    let mut rows = Vec::new();
    for (point, &size) in points.iter().zip(&SIZES) {
        for (series, samples) in [
            ("copy-in/copy-out", &point.copy),
            ("state plane first read", &point.first_read),
            ("state plane hot", &point.hot),
        ] {
            let s = summarize_us(samples);
            rows.push(ResultRow {
                series: series.into(),
                x: size as f64,
                median: s.median,
                p99: s.p99,
                unit: "us".into(),
            });
        }
    }
    print_table("Figure 19: state-plane access vs copy-in/copy-out", &rows);

    // The headline gate: at megabyte sizes, a hot state read beats shipping
    // the value with the invocation by at least 5x.
    for (point, &size) in points.iter().zip(&SIZES) {
        let copy = summarize_us(&point.copy).median;
        let first = summarize_us(&point.first_read).median;
        let hot = summarize_us(&point.hot).median;
        println!(
            "# {size} B: copy {copy:.3} us, first read {first:.3} us, hot {hot:.3} us ({:.1}x)",
            copy / hot
        );
        assert!(
            hot <= first,
            "a cache hit cannot cost more than the READ that filled it: hot {hot} us, first {first} us at {size} B"
        );
        if size >= 1024 * 1024 {
            assert!(
                copy / hot >= 5.0,
                "hot state access must be >= 5x cheaper than copy-in/copy-out at {size} B, got {:.1}x",
                copy / hot
            );
            assert!(
                first < copy,
                "the one-sided READ moves the value once; copying moves it twice: first {first} us, copy {copy} us at {size} B"
            );
        }
    }
}
