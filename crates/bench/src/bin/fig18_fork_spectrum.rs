//! Figure 18: the fork tier between warm and cold.
//!
//! rFaaS as evaluated in the paper offers exactly two allocation costs: a
//! ~25 ms cold spawn or an already-running executor. This experiment adds
//! the MITOSIS-style middle tier this codebase implements on top of the
//! paper's design: deallocated sandboxes park in a per-executor warm pool,
//! and a later allocation of the same package either *remote-forks* from a
//! parked parent's snapshot (child pages fault in lazily over one-sided
//! RDMA reads, no parent CPU involvement) or resumes the parked parent
//! outright.
//!
//! Three setup tiers are measured — cold spawn, remote fork, warm-pool hit —
//! as the executor-side allocation cost (sandbox provisioning + code
//! submission; the control-plane slices are identical across tiers and
//! excluded). A second section sweeps the forked child's first invocations:
//! each early invocation pays one prefetch batch of page faults, so the RTT
//! decays to the warm steady state once the page map is fully resident.
//!
//! The run aborts unless the fork tier delivers its headline: a forked
//! allocation lands under 100 µs and at least 100× below the cold spawn.

use rfaas::{AllocationPolicy, PollingMode, RFaasConfig, Session};
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed};
use sim_core::SimDuration;

/// Invocations swept on the freshly forked child. Five 32-page prefetch
/// batches cover the minimal executor image, so the tail of the sweep is
/// fault-free steady state.
const SPECTRUM_INVOCATIONS: usize = 8;

fn pool_config() -> RFaasConfig {
    let mut config = RFaasConfig::paper_calibration();
    // The paper-calibrated default keeps warm pooling off; the fork tier is
    // the subject here, so give every (sandbox, package) key two slots: the
    // parked parent plus the returned child.
    config.warm_pool_capacity = 2;
    config
}

/// Executor-side allocation cost of a session: sandbox provisioning plus
/// code submission.
fn setup_cost(session: &Session) -> SimDuration {
    let cold = session.cold_start().expect("allocation recorded");
    cold.spawn_workers + cold.submit_code
}

struct Rep {
    cold: SimDuration,
    forked: SimDuration,
    warm_hit: SimDuration,
    /// RTT of the forked child's i-th invocation.
    fork_rtts: Vec<SimDuration>,
}

fn run_rep(rep: usize) -> Rep {
    let testbed = Testbed::with_config(1, pool_config());

    // Tier 1: a full cold spawn — and, once closed, the warm parent every
    // later tier draws from.
    let parent = testbed
        .session(&format!("fig18-parent-{rep}"))
        .polling(PollingMode::Warm)
        .connect()
        .expect("cold allocation");
    let cold = setup_cost(&parent);
    parent.close().expect("deallocate parks the parent");

    // Tier 2: remote fork from the parked parent's snapshot. The parent
    // stays parked (it only donates pages); the child's first invocations
    // below pay the fault batches.
    let forked_session = testbed
        .session(&format!("fig18-fork-{rep}"))
        .polling(PollingMode::Warm)
        .allocation_policy(AllocationPolicy::Fork)
        .connect()
        .expect("fork allocation");
    let forked = setup_cost(&forked_session);
    let fork_state = forked_session
        .stats()
        .fork
        .expect("fork provisioning leaves a fault schedule");
    assert_eq!(
        fork_state.pages_faulted(),
        0,
        "pages fault lazily, not at fork"
    );

    let invoker = forked_session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input
        .write_payload(&workloads::generate_payload(8, 7))
        .expect("payload fits");
    let fork_rtts: Vec<SimDuration> = (0..SPECTRUM_INVOCATIONS)
        .map(|_| {
            invoker
                .invoke_sync("echo", &input, 8, &output)
                .expect("invoke on forked child")
                .1
        })
        .collect();
    assert!(
        fork_state.is_complete(),
        "the sweep must fault the whole page map in"
    );
    forked_session.close().expect("deallocate parks the child");

    // Tier 3: a warm-pool hit resumes the oldest parked parent outright.
    let pooled = testbed
        .session(&format!("fig18-pool-{rep}"))
        .polling(PollingMode::Warm)
        .allocation_policy(AllocationPolicy::WarmPool)
        .connect()
        .expect("warm-pool allocation");
    let warm_hit = setup_cost(&pooled);
    pooled.close().expect("deallocate");

    Rep {
        cold,
        forked,
        warm_hit,
        fork_rtts,
    }
}

fn main() {
    let repetitions = if quick_mode() { 5 } else { 20 };
    println!("# Figure 18: cold spawn vs remote fork vs warm-pool hit (executor-side allocation cost over {repetitions} reps)");

    let reps: Vec<Rep> = (0..repetitions).map(run_rep).collect();

    let mut rows = Vec::new();
    for (series, samples) in [
        (
            "cold spawn",
            reps.iter().map(|r| r.cold).collect::<Vec<_>>(),
        ),
        ("remote fork", reps.iter().map(|r| r.forked).collect()),
        ("warm-pool hit", reps.iter().map(|r| r.warm_hit).collect()),
    ] {
        let s = summarize_us(&samples);
        rows.push(ResultRow {
            series: series.into(),
            x: 0.0,
            median: s.median,
            p99: s.p99,
            unit: "us".into(),
        });
    }
    for i in 0..SPECTRUM_INVOCATIONS {
        let samples: Vec<_> = reps.iter().map(|r| r.fork_rtts[i]).collect();
        let s = summarize_us(&samples);
        rows.push(ResultRow {
            series: "forked invocation".into(),
            x: (i + 1) as f64,
            median: s.median,
            p99: s.p99,
            unit: "us".into(),
        });
    }
    print_table("Figure 18: the fork tier between warm and cold", &rows);

    // The fork-tier gate: forked allocations are µs-scale and at least two
    // orders of magnitude below the cold spawn, with the warm-pool resume
    // strictly in between.
    let cold = rows[0].median;
    let forked = rows[1].median;
    let warm_hit = rows[2].median;
    let ratio = cold / forked;
    println!(
        "\n# fork tier (cold {cold:.1} us, warm-pool hit {warm_hit:.1} us, forked {forked:.1} us, cold/forked {ratio:.0}x)"
    );
    assert!(
        forked < 100.0,
        "forked allocation must stay under 100 us, got {forked} us"
    );
    assert!(
        ratio >= 100.0,
        "fork must be >= 100x cheaper than cold, got {ratio}x"
    );
    assert!(
        forked < warm_hit && warm_hit < cold,
        "setup hierarchy violated: forked {forked} us, warm-pool {warm_hit} us, cold {cold} us"
    );

    // The fault residue decays: the first invocation pays a prefetch batch
    // on top of the warm path, the last is batch-free steady state.
    let first = rows[3].median;
    let steady = rows[rows.len() - 1].median;
    println!("# fault decay (invocation 1: {first:.3} us, invocation {SPECTRUM_INVOCATIONS}: {steady:.3} us)");
    assert!(
        first > steady,
        "early forked invocations must pay fault batches: first {first} us, steady {steady} us"
    );
}
