//! Figure 1: round-trip latency of invoking a no-op function across payload
//! sizes from 1 kB to 5 MB, comparing rFaaS hot/warm invocations with AWS
//! Lambda, OpenWhisk and Nightcore.

use faas_baselines::{aws_lambda, nightcore, openwhisk, BaselinePlatform};
use rfaas::PollingMode;
use rfaas_bench::{print_table, quick_mode, summarize_us, ResultRow, Testbed};
use sandbox::SandboxType;
use sim_core::{DeterministicRng, SimDuration, Summary};

const KB: usize = 1024;

fn payload_sizes() -> Vec<usize> {
    // 1, 2, 4, ..., 2048, 5120 kB as on the x-axis of Fig. 1.
    let mut sizes: Vec<usize> = (0..=11).map(|p| (1usize << p) * KB).collect();
    sizes.push(5120 * KB);
    sizes
}

fn measure_rfaas(mode: PollingMode, label: &str, repetitions: usize, rows: &mut Vec<ResultRow>) {
    let testbed = Testbed::new(1);
    let session = testbed.allocated_session("fig1-client", 1, SandboxType::BareMetal, mode);
    let echo = session.function::<[u8], [u8]>("echo").expect("echo");
    for &size in &payload_sizes() {
        let payload = workloads::generate_payload(size, 1);
        // Warm-up invocation, then measure.
        echo.invoke(&payload[..]).expect("invocation");
        let mut samples = Vec::with_capacity(repetitions);
        for _ in 0..repetitions {
            let (_, rtt) = echo.invoke_timed(&payload[..]).expect("invocation");
            samples.push(rtt);
        }
        let summary = summarize_us(&samples);
        rows.push(ResultRow {
            series: label.to_string(),
            x: (size / KB) as f64,
            median: summary.median,
            p99: summary.p99,
            unit: "us".into(),
        });
    }
}

fn measure_baseline(
    platform: &BaselinePlatform,
    rows: &mut Vec<ResultRow>,
    samples_per_size: usize,
) {
    let mut rng = DeterministicRng::new(2021);
    for &size in &payload_sizes() {
        if !platform.accepts_payload(size) {
            continue;
        }
        let samples: Vec<SimDuration> = (0..samples_per_size)
            .map(|_| platform.sample_rtt(size, size, SimDuration::ZERO, &mut rng))
            .collect();
        let summary = Summary::of_durations_us(&samples);
        rows.push(ResultRow {
            series: platform.name.clone(),
            x: (size / KB) as f64,
            median: summary.median,
            p99: summary.p99,
            unit: "us".into(),
        });
    }
}

fn main() {
    let repetitions = if quick_mode() { 10 } else { 50 };
    let mut rows = Vec::new();
    measure_rfaas(PollingMode::Hot, "rFaaS hot", repetitions, &mut rows);
    measure_rfaas(PollingMode::Warm, "rFaaS warm", repetitions, &mut rows);
    for platform in [aws_lambda(), openwhisk(), nightcore()] {
        measure_baseline(&platform, &mut rows, 200);
    }
    print_table(
        "Figure 1: no-op invocation RTT vs payload size (rFaaS vs AWS Lambda, OpenWhisk, Nightcore)",
        &rows,
    );

    // Headline ratios reported in Sec. V-C.
    let median_of = |series: &str, kb: f64| {
        rows.iter()
            .find(|r| r.series == series && r.x == kb)
            .map(|r| r.median)
            .unwrap_or(f64::NAN)
    };
    let rfaas_1k = median_of("rFaaS hot", 1.0);
    println!("\n# speedups at 1 kB (paper: 695x-3692x vs AWS, 23x-39x vs Nightcore)");
    println!(
        "vs AWS Lambda: {:.0}x",
        median_of("AWS Lambda", 1.0) / rfaas_1k
    );
    println!(
        "vs OpenWhisk:  {:.0}x",
        median_of("OpenWhisk", 1.0) / rfaas_1k
    );
    println!(
        "vs nightcore:  {:.0}x",
        median_of("nightcore", 1.0) / rfaas_1k
    );
}
