//! Figure 14: invocation availability and recovery latency under executor
//! churn.
//!
//! Spot executors live on batch-managed nodes, so they die whenever the batch
//! system takes a node back (Sec. III-A). This experiment drives exactly that
//! loop: a cluster of harvested nodes serves a client issuing one invocation
//! per second on short leases, while SLURM-style batch jobs periodically land
//! on a node and force its reclamation — the harvester returns the bundle,
//! the spot executor dies, the operator deregisters it, and the lifecycle
//! driver terminates its leases. Expiring leases (never renewed here) add a
//! second churn source. The client's transparent recovery re-allocates
//! through the manager and replays the invocation; we report how often that
//! happened, the availability it preserved, and what a recovery costs
//! compared with a hot invocation.

use std::sync::Arc;

use cluster_sim::{BatchScheduler, NodeResources, ResourceHarvester};
use rdma_fabric::Fabric;
use rfaas::{LifecycleDriver, RFaasConfig, ResourceManager, Session, SpotExecutor};
use rfaas_bench::{evaluation_package, print_table, quick_mode, ResultRow, PACKAGE};
use sandbox::FunctionRegistry;
use sim_core::{SimDuration, SimTime, Summary};

/// Cores and memory each spot executor harvests from its node.
const BUNDLE: NodeResources = NodeResources {
    cores: 16,
    memory_mib: 64 * 1024,
};

struct ChurnNode {
    /// Live spot executor on this node, if the node is currently harvested.
    executor: Option<Arc<SpotExecutor>>,
    /// Incremented per revival so re-registered executors get fresh names.
    generation: usize,
    /// While set, a batch job owns the node; cleared (and re-harvested) after.
    batch_until: Option<SimTime>,
}

fn spawn_executor(
    fabric: &Arc<Fabric>,
    registry: &FunctionRegistry,
    config: &RFaasConfig,
    manager: &ResourceManager,
    index: usize,
    generation: usize,
) -> Arc<SpotExecutor> {
    let executor = SpotExecutor::new(
        fabric,
        &format!("spot-{index:02}-g{generation}"),
        BUNDLE,
        registry.clone(),
        config.clone(),
    );
    manager.register_executor(&executor);
    executor
}

fn main() {
    let quick = quick_mode();
    let node_count = if quick { 4 } else { 8 };
    let horizon_secs = if quick { 120u64 } else { 600 };
    let churn_period = 25u64; // one reclamation every 25 s, round-robin
    let batch_job_secs = 10u64; // how long the batch job keeps the node
    let lease_secs = 20u64; // unrenewed leases expire and force recovery

    let config = RFaasConfig::paper_calibration();
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let manager = ResourceManager::new(&fabric, config.clone());
    let driver = LifecycleDriver::new(&manager);

    // The batch cluster under the executors: harvest a bundle on every node.
    let mut scheduler = BatchScheduler::new(node_count, NodeResources::xeon_gold_6154_dual());
    let harvester = ResourceHarvester::default();
    let mut nodes: Vec<ChurnNode> = (0..node_count)
        .map(|i| {
            let node_name = format!("nid{i:05}");
            assert!(harvester.claim(&mut scheduler, &node_name, BUNDLE));
            ChurnNode {
                executor: Some(spawn_executor(&fabric, &registry, &config, &manager, i, 0)),
                generation: 0,
                batch_until: None,
            }
        })
        .collect();

    let session = Session::builder(&fabric, "churn-client", &manager, PACKAGE)
        .config(config.clone())
        .memory_mib(4096)
        .lease_timeout(SimDuration::from_secs(lease_secs))
        .connect()
        .expect("initial allocation succeeds");
    let echo = session.function::<[u8], [u8]>("echo").expect("echo");
    let payload = workloads::generate_payload(64, 7);

    let mut normal_us: Vec<f64> = Vec::new();
    let mut recovery_ms: Vec<f64> = Vec::new();
    let mut attempts = 0u64;
    let mut failures = 0u64;
    let mut reclamations = 0u64;
    let mut leases_reclaimed = 0u64;
    let mut victim_round_robin = 0usize;

    for tick in 1..=horizon_secs {
        let now = SimTime::from_secs(tick);
        session.clock().advance_to(now);

        // Batch churn: every churn_period, a SLURM job (which bypasses the
        // harvest) lands on the next node that still hosts an executor. The
        // harvester flags the collision, the bundle is reclaimed and the spot
        // executor dies; the operator deregisters it (C2 in Fig. 4) and the
        // lifecycle driver marks its leases terminated.
        if tick % churn_period == 0 {
            let victims: Vec<usize> = (0..node_count)
                .filter(|&i| nodes[i].executor.is_some())
                .collect();
            if !victims.is_empty() {
                // Prefer the node hosting the client's active lease: the
                // point of the experiment is recovery from reclamation, and
                // a blind rotation over many nodes almost never hits the one
                // lease under test. Fall back to round-robin when the client
                // is (transiently) somewhere we cannot see.
                let leased_node = session.lease().map(|l| l.executor_node);
                let victim = victims
                    .iter()
                    .copied()
                    .find(|&i| {
                        nodes[i]
                            .executor
                            .as_ref()
                            .is_some_and(|e| leased_node.as_deref() == Some(e.name()))
                    })
                    .unwrap_or(victims[victim_round_robin % victims.len()]);
                victim_round_robin += 1;
                let node_name = format!("nid{victim:05}");
                scheduler.nodes_mut()[victim].batch_allocated = NodeResources {
                    cores: 36,
                    memory_mib: 8 * 1024,
                };
                assert_eq!(
                    harvester.reclamation_candidates(&scheduler),
                    vec![node_name.clone()]
                );
                harvester.reclaim_node(&mut scheduler, &node_name);
                let executor = nodes[victim].executor.take().expect("victim has executor");
                executor.fail();
                manager.deregister_executor(executor.name());
                leases_reclaimed += manager.terminate_leases_on(executor.name()).len() as u64;
                nodes[victim].batch_until = Some(now + SimDuration::from_secs(batch_job_secs));
                reclamations += 1;
            }
        }

        // Batch jobs end: the node frees up, the harvester re-claims the
        // bundle and a fresh spot executor generation registers.
        for (i, node) in nodes.iter_mut().enumerate() {
            if node.batch_until.is_some_and(|until| now >= until) {
                node.batch_until = None;
                let node_name = format!("nid{i:05}");
                scheduler.nodes_mut()[i].batch_allocated = NodeResources::ZERO;
                if harvester.claim(&mut scheduler, &node_name, BUNDLE) {
                    node.generation += 1;
                    node.executor = Some(spawn_executor(
                        &fabric,
                        &registry,
                        &config,
                        &manager,
                        i,
                        node.generation,
                    ));
                }
            }
        }

        // The manager's lifecycle step: heartbeats, failure detection, lease
        // expiry, process reaping.
        driver.step(now);

        // One invocation per virtual second. A recovery inside the call shows
        // up as a bumped recovery counter; its latency is dominated by the
        // re-allocation (fresh lease + cold start), not the invocation.
        attempts += 1;
        let recoveries_before = session.recoveries();
        match echo.invoke_timed(&payload[..]) {
            Ok((_, rtt)) => {
                if session.recoveries() > recoveries_before {
                    recovery_ms.push(rtt.as_millis_f64());
                } else {
                    normal_us.push(rtt.as_micros_f64());
                }
            }
            Err(_) => failures += 1,
        }
    }

    let lifecycle = driver.total();
    println!("# Figure 14: lease churn — availability and recovery latency");
    println!(
        "# {node_count} harvested nodes, 1 invocation/s for {horizon_secs} s, {lease_secs} s leases (never renewed), a batch reclamation every {churn_period} s"
    );
    println!(
        "# churn: {reclamations} reclamations killing {leases_reclaimed} leases, {} executors failed by heartbeat, {} leases terminated by the driver, {} leases expired, {} processes reaped",
        lifecycle.executors_failed,
        lifecycle.leases_terminated,
        lifecycle.leases_expired,
        lifecycle.processes_reaped
    );
    println!(
        "# client: {} recoveries over {attempts} invocations, {failures} failed",
        session.recoveries()
    );

    let availability = 100.0 * (attempts - failures) as f64 / attempts.max(1) as f64;
    let normal = Summary::of(&normal_us);
    let recovery = Summary::of(&recovery_ms);
    let rows = vec![
        ResultRow {
            series: "availability".into(),
            x: reclamations as f64,
            median: availability,
            p99: availability,
            unit: "%".into(),
        },
        ResultRow {
            series: "hot invocation".into(),
            x: normal_us.len() as f64,
            median: normal.median,
            p99: normal.p99,
            unit: "us".into(),
        },
        ResultRow {
            series: "recovery (re-allocate)".into(),
            x: recovery_ms.len() as f64,
            median: recovery.median,
            p99: recovery.p99,
            unit: "ms".into(),
        },
    ];
    print_table(
        "Invocation availability and recovery latency under executor churn",
        &rows,
    );

    assert!(
        session.recoveries() > 0,
        "churn must force at least one transparent recovery"
    );
    assert!(
        leases_reclaimed > 0,
        "reclamation must kill at least one live lease, or the ExecutorLost \
         recovery path is never exercised"
    );
    assert!(
        availability > 95.0,
        "transparent recovery must keep availability high, got {availability:.1}%"
    );
}
