//! Shared harness for the figure-regeneration binaries and Criterion benches.
//!
//! Every evaluation binary stands up the same testbed: an RDMA fabric with a
//! resource manager, a set of spot executors offering the evaluation nodes'
//! resources, a function registry with all workload functions deployed, and a
//! client-side invoker. [`Testbed`] wraps that plumbing; the binaries then
//! only express the experiment itself (payload sweep, worker sweep, ...).

use std::sync::Arc;

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{AllocationBuilder, PollingMode, RFaasConfig, ResourceManager, Session, SpotExecutor};
use sandbox::{echo_function, CodePackage, FunctionRegistry, SandboxType, SharedFunction};
use sim_core::{SimDuration, Summary};
use workloads::{
    blackscholes_function, image_recognition_function, jacobi_function, matmul_function,
    streaming_aggregation_function, thumbnailer_function, training_step_function,
};

/// Name of the code package every testbed deploys.
pub const PACKAGE: &str = "evaluation";

/// A ready-to-use rFaaS deployment for experiments.
pub struct Testbed {
    /// The RDMA fabric connecting every node.
    pub fabric: Arc<Fabric>,
    /// The resource manager.
    pub manager: Arc<ResourceManager>,
    /// The spot executors registered with the manager.
    pub executors: Vec<Arc<SpotExecutor>>,
    /// Platform configuration used everywhere.
    pub config: RFaasConfig,
}

impl Testbed {
    /// Build a testbed with `executor_nodes` spot executors shaped like the
    /// paper's evaluation nodes (36 cores, 377 GiB).
    pub fn new(executor_nodes: usize) -> Testbed {
        Testbed::with_config(executor_nodes, RFaasConfig::paper_calibration())
    }

    /// Build a testbed with an explicit platform configuration (used by
    /// experiments that need larger invocation payloads than the default).
    pub fn with_config(executor_nodes: usize, config: RFaasConfig) -> Testbed {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(evaluation_package());
        let manager = ResourceManager::new(&fabric, config.clone());
        let executors: Vec<Arc<SpotExecutor>> = (0..executor_nodes)
            .map(|i| {
                let executor = SpotExecutor::new(
                    &fabric,
                    &format!("spot-{i:02}"),
                    NodeResources::xeon_gold_6154_dual(),
                    registry.clone(),
                    config.clone(),
                );
                manager.register_executor(&executor);
                executor
            })
            .collect();
        Testbed {
            fabric,
            manager,
            executors,
            config,
        }
    }

    /// Start building a [`Session`] for a client on its own node, against
    /// the testbed's manager and configuration, requesting the evaluation
    /// package. Callers layer worker count, sandbox and polling mode on top.
    pub fn session(&self, client_name: &str) -> AllocationBuilder {
        Session::builder(&self.fabric, client_name, &self.manager, PACKAGE)
            .config(self.config.clone())
            .memory_mib(16 * 1024)
    }

    /// Build a connected session leasing `workers` workers with the given
    /// sandbox and polling mode (the one-liner most experiments want).
    pub fn allocated_session(
        &self,
        client_name: &str,
        workers: u32,
        sandbox: SandboxType,
        mode: PollingMode,
    ) -> Session {
        self.session(client_name)
            .workers(workers)
            .sandbox(sandbox)
            .polling(mode)
            .connect()
            .expect("allocation on a fresh testbed succeeds")
    }
}

/// State-plane key holding the reference dataset of the Fig. 19 experiment.
pub const DATASET_KEY: &str = "dataset";

/// Stateful read-path microbenchmark function (Fig. 19): touches the
/// [`DATASET_KEY`] value materialised through its `with_state` declaration
/// and returns the value's length, so the invocation itself moves only
/// 8 bytes each way regardless of how large the dataset is.
pub fn state_touch_function() -> SharedFunction {
    SharedFunction::from_stateful_fn("state-touch", |_input, state, output| {
        let dataset = state.read(DATASET_KEY)?;
        // Touch both ends so the read cannot be optimised into a length probe.
        let fingerprint = dataset.len() as u64
            + *dataset.first().unwrap_or(&0) as u64
            + *dataset.last().unwrap_or(&0) as u64;
        output[..8].copy_from_slice(&fingerprint.to_le_bytes());
        Ok(8)
    })
}

/// The code package containing every evaluation function.
pub fn evaluation_package() -> CodePackage {
    CodePackage::minimal(PACKAGE)
        .with_function(echo_function())
        .with_function(thumbnailer_function())
        .with_function(image_recognition_function())
        .with_function(blackscholes_function())
        .with_function(matmul_function())
        .with_function(jacobi_function())
        .with_function(streaming_aggregation_function())
        .with_function(training_step_function())
        .with_function(state_touch_function())
}

/// One row of a results table printed by a figure binary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ResultRow {
    /// Series label (platform, configuration, ...).
    pub series: String,
    /// X-axis value (payload bytes, worker count, matrix size, ...).
    pub x: f64,
    /// Median of the measured metric.
    pub median: f64,
    /// 99th percentile of the measured metric.
    pub p99: f64,
    /// Unit of the metric (`us`, `ms`, `s`, `%`).
    pub unit: String,
}

/// Print a results table both as an aligned text table and as JSON lines
/// (machine-readable for plotting scripts).
pub fn print_table(title: &str, rows: &[ResultRow]) {
    println!("\n# {title}");
    println!(
        "{:<28} {:>14} {:>14} {:>14}  unit",
        "series", "x", "median", "p99"
    );
    for row in rows {
        println!(
            "{:<28} {:>14.3} {:>14.3} {:>14.3}  {}",
            row.series, row.x, row.median, row.p99, row.unit
        );
    }
    println!("## json");
    for row in rows {
        println!("{}", serde_json::to_string(row).expect("row serialises"));
    }
}

/// Summarise a set of virtual durations in microseconds.
pub fn summarize_us(samples: &[SimDuration]) -> Summary {
    Summary::of_durations_us(samples)
}

/// Summarise a set of virtual durations in milliseconds.
pub fn summarize_ms(samples: &[SimDuration]) -> Summary {
    Summary::of_durations_ms(samples)
}

/// Usage banner shared by every figure binary.
const USAGE: &str = "\
usage: fig binary [--quick] [SUB_EXPERIMENT]

  --quick          reduced repetitions and problem sizes (the CI smoke and
                   perf-snapshot profile)
  SUB_EXPERIMENT   one optional positional selecting a sub-experiment where
                   the binary offers one (see EXPERIMENTS.md)";

/// Validate a raw argument list (binary name already stripped). Rejects any
/// unrecognised `-`-prefixed flag and more than one positional, so a typoed
/// `--qiuck` fails loudly instead of silently selecting the full-length run.
fn check_args(args: impl Iterator<Item = String>) -> std::result::Result<(), String> {
    let mut positionals = 0usize;
    for arg in args {
        match arg.as_str() {
            "--quick" | "--help" | "-h" => {}
            flag if flag.starts_with('-') => {
                return Err(format!("unrecognised flag '{flag}'"));
            }
            positional => {
                positionals += 1;
                if positionals > 1 {
                    return Err(format!("unexpected extra argument '{positional}'"));
                }
            }
        }
    }
    Ok(())
}

/// Validate the process arguments, exiting with a usage message on anything
/// unrecognised (status 2) or printing it on `--help` (status 0). Every entry
/// point into the CLI surface calls this, so no figure binary can run with a
/// misspelled flag.
fn validate_cli() {
    if let Err(msg) = check_args(std::env::args().skip(1)) {
        eprintln!("error: {msg}\n{USAGE}");
        std::process::exit(2);
    }
    if std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        std::process::exit(0);
    }
}

/// Whether the binary was invoked with `--quick` (fewer repetitions / smaller
/// problem sizes, for CI and smoke testing). Exits with a usage message if
/// the command line carries anything unrecognised.
pub fn quick_mode() -> bool {
    validate_cli();
    std::env::args().any(|a| a == "--quick")
}

/// First non-flag command-line argument, if any (used by binaries that select
/// a sub-experiment, e.g. `thumbnailer` vs `inference`). Exits with a usage
/// message if the command line carries anything unrecognised.
pub fn sub_experiment() -> Option<String> {
    validate_cli();
    std::env::args().skip(1).find(|a| !a.starts_with("--"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_builds_and_serves_invocations() {
        let testbed = Testbed::new(2);
        assert_eq!(testbed.manager.executor_count(), 2);
        let session =
            testbed.allocated_session("client", 1, SandboxType::BareMetal, PollingMode::Hot);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let (reply, rtt) = echo.invoke_timed(&[9u8; 64][..]).unwrap();
        assert_eq!(reply.len(), 64);
        assert!(rtt.as_micros_f64() < 50.0);
    }

    #[test]
    fn evaluation_package_contains_all_functions() {
        let pkg = evaluation_package();
        for name in [
            "echo",
            "thumbnailer",
            "image-recognition",
            "blackscholes",
            "matmul",
            "jacobi",
        ] {
            assert!(pkg.function_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn known_cli_shapes_pass_validation() {
        let ok = |args: &[&str]| check_args(args.iter().map(|s| s.to_string()));
        assert!(ok(&[]).is_ok());
        assert!(ok(&["--quick"]).is_ok());
        assert!(ok(&["--help"]).is_ok());
        assert!(ok(&["-h"]).is_ok());
        assert!(ok(&["thumbnailer"]).is_ok());
        assert!(ok(&["--quick", "inference"]).is_ok());
    }

    #[test]
    fn typoed_and_extra_arguments_are_rejected() {
        let err = |args: &[&str]| check_args(args.iter().map(|s| s.to_string())).unwrap_err();
        // The CI-masquerade scenario the validation exists for.
        assert!(err(&["--qiuck"]).contains("--qiuck"));
        assert!(err(&["--quick", "--verbose"]).contains("--verbose"));
        assert!(err(&["-q"]).contains("-q"));
        assert!(err(&["thumbnailer", "extra"]).contains("extra"));
    }

    #[test]
    fn result_rows_serialise() {
        let row = ResultRow {
            series: "rFaaS hot".into(),
            x: 1024.0,
            median: 3.96,
            p99: 4.2,
            unit: "us".into(),
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("rFaaS hot"));
    }
}
