//! Idle-resource harvesting for spot executors.
//!
//! Cluster operators add idle resources to the rFaaS resource manager and
//! reclaim them when batch jobs need the nodes (Sec. III-A, "C2" in Fig. 4).
//! The [`ResourceHarvester`] sits between the batch scheduler and the rFaaS
//! manager: it offers idle cores/memory as harvestable bundles and supports
//! reclamation, which the manager translates into lease terminations.

use serde::{Deserialize, Serialize};

use crate::jobs::BatchScheduler;
use crate::node::NodeResources;

/// An offer of harvestable resources on one node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarvestedResources {
    /// Node the resources live on.
    pub node_name: String,
    /// Cores and memory available for spot executors.
    pub available: NodeResources,
}

/// Policy knobs for harvesting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HarvestPolicy {
    /// Cores kept in reserve on every node for incoming batch jobs.
    pub reserved_cores: u32,
    /// Memory (MiB) kept in reserve on every node.
    pub reserved_memory_mib: u64,
    /// Smallest bundle worth offering; avoids fragmenting the pool.
    pub min_offer: NodeResources,
}

impl Default for HarvestPolicy {
    fn default() -> Self {
        HarvestPolicy {
            reserved_cores: 2,
            reserved_memory_mib: 8 * 1024,
            min_offer: NodeResources {
                cores: 1,
                memory_mib: 1024,
            },
        }
    }
}

/// Extracts idle-resource offers from a batch-managed cluster.
#[derive(Debug)]
pub struct ResourceHarvester {
    policy: HarvestPolicy,
}

impl Default for ResourceHarvester {
    fn default() -> Self {
        Self::new(HarvestPolicy::default())
    }
}

impl ResourceHarvester {
    /// Harvester with an explicit policy.
    pub fn new(policy: HarvestPolicy) -> ResourceHarvester {
        ResourceHarvester { policy }
    }

    /// Current offers over all nodes of `scheduler`.
    pub fn offers(&self, scheduler: &BatchScheduler) -> Vec<HarvestedResources> {
        scheduler
            .nodes()
            .iter()
            .filter_map(|node| {
                let idle = node.idle();
                let available = NodeResources {
                    cores: idle.cores.saturating_sub(self.policy.reserved_cores),
                    memory_mib: idle
                        .memory_mib
                        .saturating_sub(self.policy.reserved_memory_mib),
                };
                if available.can_fit(&self.policy.min_offer) {
                    Some(HarvestedResources {
                        node_name: node.name.clone(),
                        available,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Claim `request` on the named node. Returns whether the claim succeeded
    /// (it fails if a batch job grabbed the resources first).
    pub fn claim(
        &self,
        scheduler: &mut BatchScheduler,
        node_name: &str,
        request: NodeResources,
    ) -> bool {
        scheduler
            .nodes_mut()
            .iter_mut()
            .find(|n| n.name == node_name)
            .map(|n| n.harvest(request))
            .unwrap_or(false)
    }

    /// Return previously claimed resources on the named node.
    pub fn release(&self, scheduler: &mut BatchScheduler, node_name: &str, request: NodeResources) {
        if let Some(node) = scheduler
            .nodes_mut()
            .iter_mut()
            .find(|n| n.name == node_name)
        {
            node.release_harvest(request);
        }
    }

    /// Take the node back for the batch system: return the node's entire
    /// harvested bundle to the idle pool and report what was reclaimed. The
    /// rFaaS manager translates this into deregistering the node's spot
    /// executor and terminating its leases (Sec. III-A reclamation).
    pub fn reclaim_node(
        &self,
        scheduler: &mut BatchScheduler,
        node_name: &str,
    ) -> Option<NodeResources> {
        let node = scheduler
            .nodes_mut()
            .iter_mut()
            .find(|n| n.name == node_name)?;
        let reclaimed = node.harvested;
        node.release_harvest(reclaimed);
        Some(reclaimed)
    }

    /// Nodes whose harvested resources collide with batch demand: the idle
    /// pool went negative, so the manager must reclaim leases there.
    pub fn reclamation_candidates(&self, scheduler: &BatchScheduler) -> Vec<String> {
        scheduler
            .nodes()
            .iter()
            .filter(|n| {
                let committed = n.batch_allocated.add(&n.harvested);
                committed.cores > n.total.cores || committed.memory_mib > n.total.memory_mib
            })
            .map(|n| n.name.clone())
            .collect()
    }

    /// Total harvestable cores across all offers.
    pub fn total_offered_cores(&self, scheduler: &BatchScheduler) -> u32 {
        self.offers(scheduler)
            .iter()
            .map(|o| o.available.cores)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeResources;

    fn idle_cluster(nodes: usize) -> BatchScheduler {
        BatchScheduler::new(nodes, NodeResources::xeon_gold_6154_dual())
    }

    #[test]
    fn idle_cluster_offers_almost_everything() {
        let sched = idle_cluster(4);
        let harvester = ResourceHarvester::default();
        let offers = harvester.offers(&sched);
        assert_eq!(offers.len(), 4);
        for offer in &offers {
            assert_eq!(offer.available.cores, 36 - 2);
            assert!(offer.available.memory_mib > 300 * 1024);
        }
        assert_eq!(harvester.total_offered_cores(&sched), 4 * 34);
    }

    #[test]
    fn busy_nodes_offer_nothing() {
        let mut sched = idle_cluster(2);
        for node in sched.nodes_mut() {
            assert!(node.allocate_batch(NodeResources {
                cores: 36,
                memory_mib: 1024
            }));
        }
        let harvester = ResourceHarvester::default();
        assert!(harvester.offers(&sched).is_empty());
    }

    #[test]
    fn claim_and_release_round_trip() {
        let mut sched = idle_cluster(1);
        let harvester = ResourceHarvester::default();
        let request = NodeResources {
            cores: 8,
            memory_mib: 16 * 1024,
        };
        assert!(harvester.claim(&mut sched, "nid00000", request));
        let offers = harvester.offers(&sched);
        assert_eq!(offers[0].available.cores, 36 - 2 - 8);
        harvester.release(&mut sched, "nid00000", request);
        assert_eq!(harvester.offers(&sched)[0].available.cores, 34);
        // Claims on unknown nodes fail gracefully.
        assert!(!harvester.claim(&mut sched, "missing", request));
    }

    #[test]
    fn reclamation_detects_overcommitted_nodes() {
        let mut sched = idle_cluster(1);
        let harvester = ResourceHarvester::default();
        // Harvest most of the node, then a batch job takes the whole node.
        assert!(harvester.claim(
            &mut sched,
            "nid00000",
            NodeResources {
                cores: 30,
                memory_mib: 1024
            }
        ));
        // Batch allocation bypasses the harvest (arrives through SLURM).
        sched.nodes_mut()[0].batch_allocated = NodeResources {
            cores: 36,
            memory_mib: 2048,
        };
        let candidates = harvester.reclamation_candidates(&sched);
        assert_eq!(candidates, vec!["nid00000".to_string()]);
    }

    #[test]
    fn reclaim_node_returns_the_whole_harvested_bundle() {
        let mut sched = idle_cluster(2);
        let harvester = ResourceHarvester::default();
        let request = NodeResources {
            cores: 12,
            memory_mib: 32 * 1024,
        };
        assert!(harvester.claim(&mut sched, "nid00000", request));
        let reclaimed = harvester.reclaim_node(&mut sched, "nid00000").unwrap();
        assert_eq!(reclaimed, request);
        assert_eq!(sched.nodes()[0].harvested, NodeResources::ZERO);
        assert_eq!(sched.nodes()[0].idle().cores, 36);
        // Unharvested and unknown nodes reclaim nothing.
        assert_eq!(
            harvester.reclaim_node(&mut sched, "nid00001"),
            Some(NodeResources::ZERO)
        );
        assert_eq!(harvester.reclaim_node(&mut sched, "missing"), None);
    }

    #[test]
    fn policy_reserves_are_respected() {
        let sched = idle_cluster(1);
        let harvester = ResourceHarvester::new(HarvestPolicy {
            reserved_cores: 10,
            reserved_memory_mib: 100 * 1024,
            min_offer: NodeResources {
                cores: 1,
                memory_mib: 1024,
            },
        });
        let offers = harvester.offers(&sched);
        assert_eq!(offers[0].available.cores, 26);
        assert_eq!(offers[0].available.memory_mib, 277 * 1024);
    }
}
