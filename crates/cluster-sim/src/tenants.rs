//! Tenant-fleet generation for multi-tenant control-plane experiments.
//!
//! The batch-job generator in [`crate::jobs`] models the *cluster operator's*
//! workload — what keeps the nodes busy and opens harvest windows. This
//! module models the *serverless tenants* on top: thousands of independent
//! clients, each with its own seeded Poisson arrival process, workload type
//! and lease shape, whose aggregate allocate→invoke→bill→release traffic is
//! what a sharded manager plane has to absorb (the "heavy traffic from
//! millions of users" axis; Swift, arXiv:2501.19051, identifies exactly this
//! control-plane churn as the RDMA-elasticity bottleneck).
//!
//! Everything is deterministic: the fleet is generated from a single seed via
//! per-tenant forked RNG streams, and the merged request timeline is sorted
//! by `(arrival, tenant index)` so two runs produce byte-identical schedules.

use serde::{Deserialize, Serialize};
use sim_core::{DeterministicRng, SimDuration, SimTime};

/// The workload a tenant invokes, mirroring the evaluation functions of
/// `crates/workloads`. The enum lives here (layer 1) so the generator does
/// not depend on the function implementations (layer 2); consumers map kinds
/// to deployed functions via [`WorkloadKind::function_name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// No-op echo: pure platform overhead, the hot-path latency probe.
    Echo,
    /// SeBS thumbnail generation (image in, image out).
    Thumbnailer,
    /// ResNet-style image recognition.
    Inference,
    /// PARSEC Black-Scholes option pricing over an f64 batch.
    BlackScholes,
    /// Dense matrix multiplication offload.
    Matmul,
    /// Jacobi iterative solver step.
    Jacobi,
}

impl WorkloadKind {
    /// Every kind, in a fixed order (used by mix generation and reports).
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Echo,
        WorkloadKind::Thumbnailer,
        WorkloadKind::Inference,
        WorkloadKind::BlackScholes,
        WorkloadKind::Matmul,
        WorkloadKind::Jacobi,
    ];

    /// Name of the deployed function this kind invokes (the registry names
    /// used by the evaluation package of `rfaas-bench`).
    pub fn function_name(self) -> &'static str {
        match self {
            WorkloadKind::Echo => "echo",
            WorkloadKind::Thumbnailer => "thumbnailer",
            WorkloadKind::Inference => "image-recognition",
            WorkloadKind::BlackScholes => "blackscholes",
            WorkloadKind::Matmul => "matmul",
            WorkloadKind::Jacobi => "jacobi",
        }
    }

    /// Typical invocation payload, in bytes (centre of the per-request
    /// jitter range).
    pub fn typical_payload_bytes(self) -> usize {
        match self {
            WorkloadKind::Echo => 64,
            WorkloadKind::Thumbnailer => 64 * 1024,
            WorkloadKind::Inference => 48 * 1024,
            WorkloadKind::BlackScholes => 4800, // 100 option contracts
            WorkloadKind::Matmul => 16 * 16 * 8,
            WorkloadKind::Jacobi => 16 * 16 * 8,
        }
    }

    /// Cores a lease for this kind requests.
    fn cores(self) -> u32 {
        match self {
            WorkloadKind::Echo => 1,
            WorkloadKind::Thumbnailer => 1,
            WorkloadKind::Inference => 2,
            WorkloadKind::BlackScholes => 2,
            WorkloadKind::Matmul => 4,
            WorkloadKind::Jacobi => 2,
        }
    }

    /// Memory a lease for this kind requests, in MiB.
    fn memory_mib(self) -> u64 {
        match self {
            WorkloadKind::Echo => 512,
            WorkloadKind::Thumbnailer => 2048,
            WorkloadKind::Inference => 4096,
            WorkloadKind::BlackScholes => 1024,
            WorkloadKind::Matmul => 2048,
            WorkloadKind::Jacobi => 2048,
        }
    }

    fn from_weight(roll: u64) -> WorkloadKind {
        // Mix skewed toward the latency-sensitive kinds, as FaaS traces are.
        match roll {
            0..=34 => WorkloadKind::Echo,
            35..=54 => WorkloadKind::Thumbnailer,
            55..=69 => WorkloadKind::Inference,
            70..=84 => WorkloadKind::BlackScholes,
            85..=94 => WorkloadKind::Matmul,
            _ => WorkloadKind::Jacobi,
        }
    }
}

/// One tenant's standing behaviour: which workload it runs, how it shapes
/// its leases, and how often its episodes arrive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantProfile {
    /// Stable tenant identifier ("tenant-00042"); consistent hashing of this
    /// string pins the tenant to a manager shard.
    pub tenant: String,
    /// The workload the tenant invokes.
    pub workload: WorkloadKind,
    /// Cores per lease.
    pub cores: u32,
    /// Memory per lease, in MiB.
    pub memory_mib: u64,
    /// Lease lifetime the tenant asks for. Short on purpose: unrenewed
    /// leases expiring under the lifecycle driver are the churn source.
    pub lease_timeout: SimDuration,
    /// Invocations issued per allocation episode.
    pub invocations_per_episode: u32,
    /// Mean gap between this tenant's episodes (exponentially distributed).
    pub mean_interarrival: SimDuration,
}

/// One allocation episode: the tenant allocates, invokes
/// `invocations` times, and releases (or lets the lease expire).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantRequest {
    /// Index of the tenant in the fleet's profile list.
    pub tenant_index: usize,
    /// The tenant's stable identifier.
    pub tenant: String,
    /// When the episode's allocation request reaches the manager plane.
    pub arrival: SimTime,
    /// The workload invoked.
    pub workload: WorkloadKind,
    /// Cores requested.
    pub cores: u32,
    /// Memory requested, in MiB.
    pub memory_mib: u64,
    /// Requested lease lifetime.
    pub lease_timeout: SimDuration,
    /// Invocations in this episode.
    pub invocations: u32,
    /// Payload bytes per invocation (jittered around the kind's typical).
    pub payload_bytes: usize,
    /// Whether the tenant releases the lease at the episode's end; the rest
    /// are abandoned and must be reclaimed by lease expiry — the second
    /// churn source.
    pub releases_lease: bool,
}

/// A generated fleet of tenants plus its request timeline generator.
#[derive(Debug, Clone)]
pub struct TenantFleet {
    seed: u64,
    profiles: Vec<TenantProfile>,
}

impl TenantFleet {
    /// Fraction of tenants that are heavy hitters (10× the arrival rate):
    /// FaaS populations are heavy-tailed, and a skewed fleet is what makes
    /// consistent-hash balance worth measuring.
    const HEAVY_TENANT_PCT: u64 = 5;

    /// Generate `tenants` profiles from `seed`. `mean_interarrival` is the
    /// per-tenant mean episode gap for a normal tenant; heavy hitters get a
    /// tenth of it.
    pub fn generate(seed: u64, tenants: usize, mean_interarrival: SimDuration) -> TenantFleet {
        let mut rng = DeterministicRng::new(seed ^ 0x7e4a_17f1_5eed_f1ee);
        let profiles = (0..tenants)
            .map(|i| {
                let workload = WorkloadKind::from_weight(rng.range_u64(0, 100));
                let heavy = rng.range_u64(0, 100) < Self::HEAVY_TENANT_PCT;
                let gap = if heavy {
                    mean_interarrival.mul_f64(0.1)
                } else {
                    // ±50% spread so tenants do not tick in lockstep.
                    mean_interarrival.mul_f64(rng.range_f64(0.5, 1.5))
                };
                TenantProfile {
                    tenant: format!("tenant-{i:05}"),
                    workload,
                    cores: workload.cores(),
                    memory_mib: workload.memory_mib(),
                    lease_timeout: SimDuration::from_secs(rng.range_u64(5, 30)),
                    invocations_per_episode: rng.range_u64(1, 8) as u32,
                    mean_interarrival: gap,
                }
            })
            .collect();
        TenantFleet { seed, profiles }
    }

    /// The tenant profiles, in tenant-index order.
    pub fn profiles(&self) -> &[TenantProfile] {
        &self.profiles
    }

    /// Number of tenants in the fleet.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Generate every episode arriving within `horizon`, merged across
    /// tenants and sorted by `(arrival, tenant index)` — a deterministic
    /// total order, so identical seeds replay identical schedules.
    pub fn requests(&self, horizon: SimDuration) -> Vec<TenantRequest> {
        let mut base = DeterministicRng::new(self.seed ^ 0xa11c_0c47_10ad);
        let mut requests = Vec::new();
        for (tenant_index, profile) in self.profiles.iter().enumerate() {
            // A forked stream per tenant: one tenant's request count never
            // shifts another tenant's draws.
            let mut rng = base.fork(tenant_index as u64);
            let mut t = SimTime::ZERO;
            loop {
                let gap = SimDuration::from_secs_f64(
                    rng.exponential(profile.mean_interarrival.as_secs_f64()),
                );
                t += gap;
                if t.saturating_since(SimTime::ZERO) > horizon {
                    break;
                }
                let typical = profile.workload.typical_payload_bytes();
                let payload_bytes = ((typical as f64) * rng.range_f64(0.5, 1.5))
                    .round()
                    .max(8.0) as usize;
                requests.push(TenantRequest {
                    tenant_index,
                    tenant: profile.tenant.clone(),
                    arrival: t,
                    workload: profile.workload,
                    cores: profile.cores,
                    memory_mib: profile.memory_mib,
                    lease_timeout: profile.lease_timeout,
                    invocations: profile.invocations_per_episode,
                    payload_bytes,
                    // Most tenants are tidy; the rest walk away and leave
                    // the lifecycle driver to reap the lease.
                    releases_lease: rng.range_u64(0, 100) < 80,
                });
            }
        }
        requests.sort_by(|a, b| {
            a.arrival
                .cmp(&b.arrival)
                .then(a.tenant_index.cmp(&b.tenant_index))
        });
        requests
    }
}

/// Per-request episode ordinal: how many episodes the same tenant already
/// had earlier in the timeline. Ordinal 0 is the tenant's *first contact* —
/// its connection pool entry is necessarily cold — while later ordinals are
/// revisit candidates whose connection warmth a pooled transport can reuse.
/// The churn benchmarks split setup costs along exactly this boundary.
pub fn episode_ordinals(requests: &[TenantRequest]) -> Vec<u32> {
    let mut counts: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    requests
        .iter()
        .map(|r| {
            let seen = counts.entry(r.tenant_index).or_insert(0);
            let ordinal = *seen;
            *seen += 1;
            ordinal
        })
        .collect()
}

/// Per-request fork-source supply: how many earlier episodes in the timeline
/// explicitly released their lease before this request arrived. A released
/// lease is a sandbox a warm pool could have parked, so this is the upper
/// bound on the parked parents available to serve the episode as a remote
/// fork or warm-pool resume instead of a full cold spawn. Ordinal-0 episodes
/// with zero supply are necessarily cold; the fork-tier experiments split
/// allocation costs along exactly this boundary.
pub fn fork_source_supply(requests: &[TenantRequest]) -> Vec<u32> {
    let mut released = 0u32;
    requests
        .iter()
        .map(|r| {
            let supply = released;
            if r.releases_lease {
                released += 1;
            }
            supply
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fleet() -> TenantFleet {
        TenantFleet::generate(42, 500, SimDuration::from_secs(20))
    }

    #[test]
    fn fleet_generation_is_deterministic() {
        let a = fleet();
        let b = fleet();
        assert_eq!(a.len(), 500);
        for (x, y) in a.profiles().iter().zip(b.profiles().iter()) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.mean_interarrival, y.mean_interarrival);
        }
        let ra = a.requests(SimDuration::from_secs(60));
        let rb = b.requests(SimDuration::from_secs(60));
        assert_eq!(ra.len(), rb.len());
        assert!(!ra.is_empty());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.payload_bytes, y.payload_bytes);
            assert_eq!(x.releases_lease, y.releases_lease);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TenantFleet::generate(1, 100, SimDuration::from_secs(20));
        let b = TenantFleet::generate(2, 100, SimDuration::from_secs(20));
        let same = a
            .profiles()
            .iter()
            .zip(b.profiles().iter())
            .filter(|(x, y)| x.workload == y.workload && x.mean_interarrival == y.mean_interarrival)
            .count();
        assert!(same < 100, "seeds must change the fleet");
    }

    #[test]
    fn requests_are_sorted_and_within_horizon() {
        let horizon = SimDuration::from_secs(120);
        let requests = fleet().requests(horizon);
        assert!(requests.len() > 500, "got {}", requests.len());
        for pair in requests.windows(2) {
            assert!(
                (pair[0].arrival, pair[0].tenant_index) <= (pair[1].arrival, pair[1].tenant_index)
            );
        }
        for r in &requests {
            assert!(r.arrival.saturating_since(SimTime::ZERO) <= horizon);
            assert!(r.payload_bytes >= 8);
            assert!(r.cores >= 1 && r.invocations >= 1);
        }
    }

    #[test]
    fn fleet_mixes_workloads() {
        let kinds: HashSet<WorkloadKind> = fleet().profiles().iter().map(|p| p.workload).collect();
        assert!(
            kinds.len() >= 5,
            "500 tenants must cover most workload kinds, got {kinds:?}"
        );
        for kind in WorkloadKind::ALL {
            assert!(!kind.function_name().is_empty());
            assert!(kind.typical_payload_bytes() >= 8);
        }
    }

    #[test]
    fn fork_source_supply_counts_prior_releases() {
        let fleet = fleet();
        let requests = fleet.requests(SimDuration::from_secs(600));
        let supply = fork_source_supply(&requests);
        assert_eq!(supply.len(), requests.len());
        // Supply never decreases along the timeline, starts at zero, and
        // grows by exactly one past each releasing episode.
        assert_eq!(supply[0], 0, "nothing can be parked before any episode");
        let mut expected = 0u32;
        for (r, &s) in requests.iter().zip(&supply) {
            assert_eq!(s, expected);
            if r.releases_lease {
                expected += 1;
            }
        }
        // With ~80% tidy tenants, a long horizon leaves most episodes with
        // at least one candidate fork source.
        let with_supply = supply.iter().filter(|&&s| s > 0).count();
        assert!(
            with_supply * 10 > supply.len() * 9,
            "most episodes should find a parked parent candidate"
        );
    }

    #[test]
    fn heavy_hitters_skew_the_request_distribution() {
        let fleet = fleet();
        let requests = fleet.requests(SimDuration::from_secs(600));
        let mut per_tenant = vec![0usize; fleet.len()];
        for r in &requests {
            per_tenant[r.tenant_index] += 1;
        }
        let max = *per_tenant.iter().max().unwrap();
        let mean = requests.len() as f64 / fleet.len() as f64;
        assert!(
            max as f64 > 3.0 * mean,
            "heavy hitters should dominate: max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn episode_ordinals_split_first_contact_from_revisits() {
        let fleet = fleet();
        let requests = fleet.requests(SimDuration::from_secs(600));
        let ordinals = episode_ordinals(&requests);
        assert_eq!(ordinals.len(), requests.len());
        // A tenant's ordinals increase monotonically along the timeline.
        let mut last: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let mut first_contacts = 0usize;
        for (r, &o) in requests.iter().zip(&ordinals) {
            match last.get(&r.tenant_index) {
                None => {
                    assert_eq!(o, 0, "first episode of {} must be ordinal 0", r.tenant);
                    first_contacts += 1;
                }
                Some(&prev) => assert_eq!(o, prev + 1),
            }
            last.insert(r.tenant_index, o);
        }
        assert_eq!(first_contacts, last.len());
        // Over a long horizon, churn dominates: most episodes are revisits.
        let revisits = ordinals.iter().filter(|&&o| o > 0).count();
        assert!(
            revisits * 2 > ordinals.len(),
            "expected mostly revisits, got {revisits}/{}",
            ordinals.len()
        );
    }

    #[test]
    fn some_tenants_abandon_their_leases() {
        let requests = fleet().requests(SimDuration::from_secs(120));
        let released = requests.iter().filter(|r| r.releases_lease).count();
        assert!(released > 0 && released < requests.len());
    }
}
