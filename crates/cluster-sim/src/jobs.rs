//! Batch jobs and a simple FCFS + backfilling scheduler.
//!
//! The job generator produces an arrival process whose steady-state node
//! utilisation sits in the 80–94% band reported for petascale systems
//! (Sec. II-A) while memory stays largely free, with enough burstiness that
//! idle windows open and close over minutes — the behaviour Fig. 2 shows for
//! Piz Daint.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::{DeterministicRng, SimDuration, SimTime};

use crate::node::{ClusterNode, NodeResources};

/// One batch job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchJob {
    /// Job identifier.
    pub id: u64,
    /// Submission time.
    pub submit_time: SimTime,
    /// Number of nodes requested (jobs are node-exclusive per node count).
    pub nodes: usize,
    /// Per-node resource request.
    pub per_node: NodeResources,
    /// Requested wall time.
    pub duration: SimDuration,
}

/// Generates a synthetic batch workload.
#[derive(Debug)]
pub struct JobGenerator {
    rng: DeterministicRng,
    next_id: u64,
    /// Mean inter-arrival time.
    mean_interarrival: SimDuration,
    /// Node shape used to size per-job memory requests.
    node_shape: NodeResources,
    cluster_nodes: usize,
}

impl JobGenerator {
    /// Generator for a cluster of `cluster_nodes` nodes of `node_shape`.
    pub fn new(seed: u64, cluster_nodes: usize, node_shape: NodeResources) -> JobGenerator {
        JobGenerator {
            rng: DeterministicRng::new(seed),
            next_id: 1,
            // Calibrated so that the scheduler keeps ~85-90% of cores busy.
            mean_interarrival: SimDuration::from_secs(45),
            node_shape,
            cluster_nodes,
        }
    }

    /// Generate all jobs submitted within `horizon`, in submission order.
    pub fn generate(&mut self, horizon: SimDuration) -> Vec<BatchJob> {
        let mut jobs = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(
                self.rng.exponential(self.mean_interarrival.as_secs_f64()),
            );
            t += gap;
            if t.saturating_since(SimTime::ZERO) > horizon {
                break;
            }
            jobs.push(self.next_job(t));
        }
        jobs
    }

    fn next_job(&mut self, submit_time: SimTime) -> BatchJob {
        let id = self.next_id;
        self.next_id += 1;
        // Node counts follow a heavy-ish tail: mostly small jobs, a few wide.
        let nodes = match self.rng.range_u64(0, 100) {
            0..=59 => self.rng.range_u64(1, 3) as usize,
            60..=84 => {
                self.rng
                    .range_u64(2, (self.cluster_nodes as u64 / 4).max(3)) as usize
            }
            85..=95 => {
                self.rng
                    .range_u64(2, (self.cluster_nodes as u64 / 2).max(3)) as usize
            }
            _ => self.rng.range_u64(
                (self.cluster_nodes as u64 / 2).max(2),
                self.cluster_nodes as u64 + 1,
            ) as usize,
        };
        // HPC jobs request (nearly) all cores but typically use a quarter of
        // the memory (Sec. II-A cites ~75% of memory unused).
        let core_fraction = self.rng.range_f64(0.85, 1.0);
        let memory_fraction = self.rng.range_f64(0.08, 0.45);
        let per_node = NodeResources {
            cores: ((self.node_shape.cores as f64) * core_fraction).round() as u32,
            memory_mib: ((self.node_shape.memory_mib as f64) * memory_fraction) as u64,
        };
        // Runtimes from minutes to a few hours, log-ish distribution.
        let minutes = self.rng.range_f64(3.0, 30.0) * self.rng.range_f64(1.0, 8.0);
        BatchJob {
            id,
            submit_time,
            nodes: nodes.max(1),
            per_node,
            duration: SimDuration::from_secs_f64(minutes * 60.0),
        }
    }
}

/// A running job's placement.
#[derive(Debug, Clone)]
struct RunningJob {
    job: BatchJob,
    node_indices: Vec<usize>,
    end_time: SimTime,
}

/// First-come-first-served scheduler with trivial backfilling: a job runs as
/// soon as enough nodes have the requested per-node resources free.
#[derive(Debug)]
pub struct BatchScheduler {
    nodes: Vec<ClusterNode>,
    queue: VecDeque<BatchJob>,
    running: Vec<RunningJob>,
    completed: usize,
}

impl BatchScheduler {
    /// Scheduler over `node_count` nodes of shape `node_shape`.
    pub fn new(node_count: usize, node_shape: NodeResources) -> BatchScheduler {
        BatchScheduler {
            nodes: (0..node_count)
                .map(|i| ClusterNode::new(&format!("nid{i:05}"), node_shape))
                .collect(),
            queue: VecDeque::new(),
            running: Vec::new(),
            completed: 0,
        }
    }

    /// Submit a job to the queue.
    pub fn submit(&mut self, job: BatchJob) {
        self.queue.push_back(job);
    }

    /// Advance the scheduler to `now`: finish jobs whose wall time elapsed and
    /// start queued jobs that fit.
    pub fn advance_to(&mut self, now: SimTime) {
        // Complete finished jobs.
        let mut still_running = Vec::with_capacity(self.running.len());
        for run in self.running.drain(..) {
            if run.end_time <= now {
                for &idx in &run.node_indices {
                    self.nodes[idx].release_batch(run.job.per_node);
                }
                self.completed += 1;
            } else {
                still_running.push(run);
            }
        }
        self.running = still_running;

        // Start queued jobs (FCFS with skip-over backfilling).
        let mut remaining = VecDeque::new();
        while let Some(job) = self.queue.pop_front() {
            if job.submit_time > now {
                remaining.push_back(job);
                continue;
            }
            match self.try_place(&job) {
                Some(node_indices) => {
                    let end_time = now + job.duration;
                    self.running.push(RunningJob {
                        job,
                        node_indices,
                        end_time,
                    });
                }
                None => remaining.push_back(job),
            }
        }
        self.queue = remaining;
    }

    fn try_place(&mut self, job: &BatchJob) -> Option<Vec<usize>> {
        let candidates: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.idle().can_fit(&job.per_node))
            .map(|(i, _)| i)
            .take(job.nodes)
            .collect();
        if candidates.len() < job.nodes {
            return None;
        }
        for &idx in &candidates {
            assert!(self.nodes[idx].allocate_batch(job.per_node));
        }
        Some(candidates)
    }

    /// Immutable view of the cluster nodes.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Mutable view (used by the harvester to reserve idle resources).
    pub fn nodes_mut(&mut self) -> &mut [ClusterNode] {
        &mut self.nodes
    }

    /// Number of queued (not yet started) jobs.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of running jobs.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Cluster-wide fraction of cores allocated to batch jobs.
    pub fn core_utilization(&self) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.total.cores as u64).sum();
        let used: u64 = self
            .nodes
            .iter()
            .map(|n| n.batch_allocated.cores.min(n.total.cores) as u64)
            .sum();
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    }

    /// Cluster-wide fraction of memory free.
    pub fn free_memory_fraction(&self) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.total.memory_mib).sum();
        let used: u64 = self
            .nodes
            .iter()
            .map(|n| n.batch_allocated.memory_mib.min(n.total.memory_mib))
            .sum();
        if total == 0 {
            0.0
        } else {
            1.0 - used as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> NodeResources {
        NodeResources::xeon_gold_6154_dual()
    }

    #[test]
    fn generator_is_deterministic() {
        let horizon = SimDuration::from_secs(3600);
        let a = JobGenerator::new(7, 16, shape()).generate(horizon);
        let b = JobGenerator::new(7, 16, shape()).generate(horizon);
        assert_eq!(a.len(), b.len());
        assert!(a.len() > 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.nodes, y.nodes);
            assert_eq!(x.duration, y.duration);
        }
    }

    #[test]
    fn generated_jobs_fit_the_node_shape() {
        let jobs = JobGenerator::new(11, 16, shape()).generate(SimDuration::from_secs(7200));
        for job in &jobs {
            assert!(job.per_node.cores <= shape().cores);
            assert!(job.per_node.memory_mib <= shape().memory_mib);
            assert!(job.nodes >= 1 && job.nodes <= 16);
            assert!(job.duration.as_secs_f64() > 60.0);
        }
    }

    #[test]
    fn scheduler_starts_and_completes_jobs() {
        let mut sched = BatchScheduler::new(4, shape());
        sched.submit(BatchJob {
            id: 1,
            submit_time: SimTime::ZERO,
            nodes: 2,
            per_node: NodeResources {
                cores: 36,
                memory_mib: 1024,
            },
            duration: SimDuration::from_secs(100),
        });
        sched.advance_to(SimTime::from_secs(1));
        assert_eq!(sched.running(), 1);
        assert_eq!(sched.queued(), 0);
        assert!(sched.core_utilization() > 0.4);
        sched.advance_to(SimTime::from_secs(200));
        assert_eq!(sched.running(), 0);
        assert_eq!(sched.completed(), 1);
        assert_eq!(sched.core_utilization(), 0.0);
    }

    #[test]
    fn oversized_jobs_wait_in_queue() {
        let mut sched = BatchScheduler::new(2, shape());
        let big = BatchJob {
            id: 1,
            submit_time: SimTime::ZERO,
            nodes: 3,
            per_node: NodeResources {
                cores: 36,
                memory_mib: 1024,
            },
            duration: SimDuration::from_secs(10),
        };
        sched.submit(big);
        sched.advance_to(SimTime::from_secs(1));
        assert_eq!(sched.running(), 0);
        assert_eq!(sched.queued(), 1);
    }

    #[test]
    fn utilization_lands_in_the_hpc_band() {
        // Drive a 32-node cluster with the synthetic workload for 12 hours of
        // virtual time and check the time-averaged utilisation band.
        let nodes = 32;
        let mut sched = BatchScheduler::new(nodes, shape());
        let mut gen = JobGenerator::new(42, nodes, shape());
        let jobs = gen.generate(SimDuration::from_secs(12 * 3600));
        for job in jobs {
            sched.submit(job);
        }
        let mut samples = Vec::new();
        let mut free_mem = Vec::new();
        for minute in 0..(12 * 60) {
            sched.advance_to(SimTime::from_secs(minute * 60));
            if minute > 120 {
                samples.push(sched.core_utilization());
                free_mem.push(sched.free_memory_fraction());
            }
        }
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        let avg_free_mem = free_mem.iter().sum::<f64>() / free_mem.len() as f64;
        assert!((0.70..0.99).contains(&avg), "core utilization {avg}");
        assert!(avg_free_mem > 0.55, "free memory {avg_free_mem}");
        // Idle windows must exist (otherwise there is nothing to harvest).
        assert!(samples.iter().any(|&u| u < 0.97));
    }
}
