//! Utilisation traces (Fig. 2 reproduction).
//!
//! The paper samples SLURM on Piz Daint every minute for one week and plots
//! the idle-CPU and free-memory percentages. [`UtilizationTrace::synthesize`]
//! drives the synthetic batch scheduler over the same horizon and produces
//! the equivalent time series.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

use crate::jobs::{BatchScheduler, JobGenerator};
use crate::node::NodeResources;

/// One sample of the cluster utilisation time series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample time.
    pub time: SimTime,
    /// Percentage of CPU cores idle (0–100).
    pub idle_cpu_pct: f64,
    /// Percentage of memory free (0–100).
    pub free_memory_pct: f64,
}

/// A utilisation trace sampled at fixed intervals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationTrace {
    /// Samples in time order.
    pub points: Vec<TracePoint>,
    /// Sampling interval.
    pub interval: SimDuration,
}

impl UtilizationTrace {
    /// Synthesize a trace for a cluster of `nodes` nodes over `horizon`,
    /// sampling every `interval` (the paper uses one week at one-minute
    /// resolution). The first two hours are treated as warm-up and skipped.
    pub fn synthesize(
        seed: u64,
        nodes: usize,
        horizon: SimDuration,
        interval: SimDuration,
    ) -> UtilizationTrace {
        let shape = NodeResources::xeon_gold_6154_dual();
        let mut scheduler = BatchScheduler::new(nodes, shape);
        let mut generator = JobGenerator::new(seed, nodes, shape);
        for job in generator.generate(horizon) {
            scheduler.submit(job);
        }
        let warmup = SimDuration::from_secs(2 * 3600);
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        while t.saturating_since(SimTime::ZERO) <= horizon {
            scheduler.advance_to(t);
            if t.saturating_since(SimTime::ZERO) >= warmup {
                points.push(TracePoint {
                    time: t,
                    idle_cpu_pct: 100.0 * (1.0 - scheduler.core_utilization()),
                    free_memory_pct: 100.0 * scheduler.free_memory_fraction(),
                });
            }
            t += interval;
        }
        UtilizationTrace { points, interval }
    }

    /// Mean idle-CPU percentage over the trace.
    pub fn mean_idle_cpu(&self) -> f64 {
        mean(self.points.iter().map(|p| p.idle_cpu_pct))
    }

    /// Mean free-memory percentage over the trace.
    pub fn mean_free_memory(&self) -> f64 {
        mean(self.points.iter().map(|p| p.free_memory_pct))
    }

    /// Minimum and maximum idle-CPU percentages (burstiness indicator).
    pub fn idle_cpu_range(&self) -> (f64, f64) {
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for p in &self.points {
            lo = lo.min(p.idle_cpu_pct);
            hi = hi.max(p.idle_cpu_pct);
        }
        (lo, hi)
    }

    /// Fraction of samples with at least `threshold_pct` of cores idle — the
    /// opportunity window for spot executors.
    pub fn harvest_opportunity(&self, threshold_pct: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .filter(|p| p.idle_cpu_pct >= threshold_pct)
            .count() as f64
            / self.points.len() as f64
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_trace() -> UtilizationTrace {
        UtilizationTrace::synthesize(
            2021,
            32,
            SimDuration::from_secs(24 * 3600),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn trace_has_one_sample_per_interval() {
        let trace = day_trace();
        // 24 h minus 2 h warm-up at one-minute sampling.
        assert!(trace.points.len() >= 22 * 60 && trace.points.len() <= 22 * 60 + 2);
    }

    #[test]
    fn idle_cpu_matches_paper_band() {
        let trace = day_trace();
        let mean_idle = trace.mean_idle_cpu();
        // Paper: node utilisation 80-94%, i.e. 6-20% idle on average; allow a
        // wider band for the synthetic workload.
        assert!(
            (2.0..30.0).contains(&mean_idle),
            "mean idle CPU {mean_idle}%"
        );
    }

    #[test]
    fn memory_is_mostly_free() {
        let trace = day_trace();
        let mem = trace.mean_free_memory();
        // Paper: roughly three-quarters of node memory unused.
        assert!(mem > 55.0, "mean free memory {mem}%");
    }

    #[test]
    fn idle_windows_are_bursty() {
        let trace = day_trace();
        let (lo, hi) = trace.idle_cpu_range();
        assert!(
            hi - lo > 5.0,
            "idle CPU should fluctuate, range was {lo}..{hi}"
        );
    }

    #[test]
    fn harvest_opportunity_is_monotonic_in_threshold() {
        let trace = day_trace();
        let at5 = trace.harvest_opportunity(5.0);
        let at20 = trace.harvest_opportunity(20.0);
        let at80 = trace.harvest_opportunity(80.0);
        assert!(at5 >= at20);
        assert!(at20 >= at80);
        assert!(at5 > 0.0);
    }

    #[test]
    fn traces_are_reproducible() {
        let a = UtilizationTrace::synthesize(
            9,
            8,
            SimDuration::from_secs(6 * 3600),
            SimDuration::from_secs(300),
        );
        let b = UtilizationTrace::synthesize(
            9,
            8,
            SimDuration::from_secs(6 * 3600),
            SimDuration::from_secs(300),
        );
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(x.idle_cpu_pct, y.idle_cpu_pct);
            assert_eq!(x.free_memory_pct, y.free_memory_pct);
        }
    }
}
