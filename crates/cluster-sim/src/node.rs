//! Cluster nodes and their resource accounting.

use serde::{Deserialize, Serialize};

/// Compute resources of one node (or of a reservation on one node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeResources {
    /// Physical CPU cores.
    pub cores: u32,
    /// Memory in mebibytes.
    pub memory_mib: u64,
}

impl NodeResources {
    /// The evaluation cluster's node shape: 2 × 18-core Xeon Gold 6154 with
    /// 377 GiB of memory (Sec. V, "Platform").
    pub fn xeon_gold_6154_dual() -> NodeResources {
        NodeResources {
            cores: 36,
            memory_mib: 377 * 1024,
        }
    }

    /// Whether this amount can satisfy a request of `other`.
    pub fn can_fit(&self, other: &NodeResources) -> bool {
        self.cores >= other.cores && self.memory_mib >= other.memory_mib
    }

    /// Subtract `other`, saturating at zero.
    pub fn saturating_sub(&self, other: &NodeResources) -> NodeResources {
        NodeResources {
            cores: self.cores.saturating_sub(other.cores),
            memory_mib: self.memory_mib.saturating_sub(other.memory_mib),
        }
    }

    /// Add `other`.
    pub fn add(&self, other: &NodeResources) -> NodeResources {
        NodeResources {
            cores: self.cores + other.cores,
            memory_mib: self.memory_mib + other.memory_mib,
        }
    }

    /// An empty resource bundle.
    pub const ZERO: NodeResources = NodeResources {
        cores: 0,
        memory_mib: 0,
    };
}

/// One node of the simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterNode {
    /// Node hostname.
    pub name: String,
    /// Total installed resources.
    pub total: NodeResources,
    /// Resources currently allocated to batch jobs.
    pub batch_allocated: NodeResources,
    /// Resources currently leased to rFaaS spot executors.
    pub harvested: NodeResources,
}

impl ClusterNode {
    /// Create an idle node.
    pub fn new(name: &str, total: NodeResources) -> ClusterNode {
        ClusterNode {
            name: name.to_string(),
            total,
            batch_allocated: NodeResources::ZERO,
            harvested: NodeResources::ZERO,
        }
    }

    /// Resources not used by batch jobs nor harvested.
    pub fn idle(&self) -> NodeResources {
        self.total
            .saturating_sub(&self.batch_allocated)
            .saturating_sub(&self.harvested)
    }

    /// Fraction of cores idle (not allocated to batch jobs), in [0, 1].
    pub fn idle_core_fraction(&self) -> f64 {
        if self.total.cores == 0 {
            return 0.0;
        }
        (self.total.cores - self.batch_allocated.cores.min(self.total.cores)) as f64
            / self.total.cores as f64
    }

    /// Fraction of memory free (not allocated to batch jobs), in [0, 1].
    pub fn free_memory_fraction(&self) -> f64 {
        if self.total.memory_mib == 0 {
            return 0.0;
        }
        (self.total.memory_mib - self.batch_allocated.memory_mib.min(self.total.memory_mib)) as f64
            / self.total.memory_mib as f64
    }

    /// Try to allocate `request` to a batch job. Returns whether it fit.
    pub fn allocate_batch(&mut self, request: NodeResources) -> bool {
        if self.idle().can_fit(&request) {
            self.batch_allocated = self.batch_allocated.add(&request);
            true
        } else {
            false
        }
    }

    /// Release a batch allocation.
    pub fn release_batch(&mut self, request: NodeResources) {
        self.batch_allocated = self.batch_allocated.saturating_sub(&request);
    }

    /// Try to harvest `request` for a spot executor. Returns whether it fit.
    pub fn harvest(&mut self, request: NodeResources) -> bool {
        if self.idle().can_fit(&request) {
            self.harvested = self.harvested.add(&request);
            true
        } else {
            false
        }
    }

    /// Return previously harvested resources to the idle pool.
    pub fn release_harvest(&mut self, request: NodeResources) {
        self.harvested = self.harvested.saturating_sub(&request);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_shape() {
        let r = NodeResources::xeon_gold_6154_dual();
        assert_eq!(r.cores, 36);
        assert_eq!(r.memory_mib, 377 * 1024);
    }

    #[test]
    fn resource_arithmetic() {
        let a = NodeResources {
            cores: 10,
            memory_mib: 100,
        };
        let b = NodeResources {
            cores: 4,
            memory_mib: 60,
        };
        assert!(a.can_fit(&b));
        assert!(!b.can_fit(&a));
        assert_eq!(
            a.saturating_sub(&b),
            NodeResources {
                cores: 6,
                memory_mib: 40
            }
        );
        assert_eq!(b.saturating_sub(&a), NodeResources::ZERO);
        assert_eq!(
            a.add(&b),
            NodeResources {
                cores: 14,
                memory_mib: 160
            }
        );
    }

    #[test]
    fn batch_allocation_and_idle_tracking() {
        let mut node = ClusterNode::new(
            "nid00001",
            NodeResources {
                cores: 36,
                memory_mib: 1000,
            },
        );
        assert!(node.allocate_batch(NodeResources {
            cores: 30,
            memory_mib: 200
        }));
        assert_eq!(node.idle().cores, 6);
        assert!((node.idle_core_fraction() - 6.0 / 36.0).abs() < 1e-9);
        assert!((node.free_memory_fraction() - 0.8).abs() < 1e-9);
        // Over-allocation is rejected.
        assert!(!node.allocate_batch(NodeResources {
            cores: 10,
            memory_mib: 10
        }));
        node.release_batch(NodeResources {
            cores: 30,
            memory_mib: 200,
        });
        assert_eq!(node.idle().cores, 36);
    }

    #[test]
    fn harvesting_respects_batch_allocations() {
        let mut node = ClusterNode::new(
            "nid00002",
            NodeResources {
                cores: 36,
                memory_mib: 1000,
            },
        );
        node.allocate_batch(NodeResources {
            cores: 20,
            memory_mib: 100,
        });
        assert!(node.harvest(NodeResources {
            cores: 16,
            memory_mib: 800
        }));
        assert!(
            !node.harvest(NodeResources {
                cores: 1,
                memory_mib: 1
            }) || node.idle().cores > 0
        );
        assert_eq!(
            node.idle(),
            NodeResources {
                cores: 0,
                memory_mib: 100
            }
        );
        node.release_harvest(NodeResources {
            cores: 16,
            memory_mib: 800,
        });
        assert_eq!(node.idle().cores, 16);
    }

    #[test]
    fn fractions_handle_degenerate_nodes() {
        let node = ClusterNode::new("empty", NodeResources::ZERO);
        assert_eq!(node.idle_core_fraction(), 0.0);
        assert_eq!(node.free_memory_fraction(), 0.0);
    }
}
