//! Cluster, batch scheduler and idle-resource harvesting simulation.
//!
//! rFaaS's motivation (Sec. II-A, Fig. 2) is that batch-managed HPC systems
//! leave CPU cores and — especially — memory idle for short, unpredictable
//! windows, and that those windows can host ephemeral serverless executors.
//! The paper observes Piz Daint through SLURM at one-minute granularity; real
//! traces are not redistributable, so this crate builds a synthetic cluster
//! with a batch-job arrival process whose utilisation statistics match the
//! published figures (80–94% node utilisation, ~75% of node memory unused),
//! and exposes the harvested idle resources to the rFaaS resource manager.
//!
//! * [`node`] — node inventory and resource accounting,
//! * [`jobs`] — batch-job generator and a simple FCFS backfilling scheduler,
//! * [`trace`] — utilisation time series (regenerates Fig. 2),
//! * [`harvest`] — the idle-resource feed consumed by spot executors,
//! * [`tenants`] — seeded multi-tenant fleet generation (the serverless
//!   demand side that the sharded manager plane scales against).

pub mod harvest;
pub mod jobs;
pub mod node;
pub mod tenants;
pub mod trace;

pub use harvest::{HarvestedResources, ResourceHarvester};
pub use jobs::{BatchJob, BatchScheduler, JobGenerator};
pub use node::{ClusterNode, NodeResources};
pub use tenants::{
    episode_ordinals, fork_source_supply, TenantFleet, TenantProfile, TenantRequest, WorkloadKind,
};
pub use trace::{TracePoint, UtilizationTrace};
