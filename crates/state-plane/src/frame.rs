//! Control-plane frames of the state plane.
//!
//! Everything that is *not* value bytes rides the datagram control path:
//! key → region lookups, put reservations, commits, deletes and the
//! invalidations the owner fans out to caching clients. The frames use the
//! same hand-rolled little-endian layout as the platform's allocation
//! protocol — length-prefixed strings, explicit u64 words — so both ends
//! agree on bytes without a serialisation framework, and the encoding is
//! bit-stable for the determinism suite.

use crate::error::{Result, StateError};

/// One control-plane message of the state plane.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateFrame {
    /// Client → owner: where does `key` live? Answered with [`StateFrame::Owner`]
    /// or [`StateFrame::NotFound`] to `reply_to`.
    Lookup {
        /// Datagram address the verdict should be sent to.
        reply_to: String,
        /// Key being resolved.
        key: String,
    },
    /// Owner → client: `key` lives at `[offset, offset + len)` of the
    /// owner's arena, currently at `version`. The client may READ it
    /// one-sidedly from now on.
    Owner {
        /// Resolved key.
        key: String,
        /// Byte offset inside the owner's arena.
        offset: u64,
        /// Value length in bytes.
        len: u64,
        /// Monotonic version of the value.
        version: u64,
    },
    /// Owner → client: the key does not exist.
    NotFound {
        /// The unresolved key.
        key: String,
    },
    /// Client → owner: reserve `len` arena bytes for a put of `key`.
    /// Answered with [`StateFrame::Reserved`] or [`StateFrame::Denied`].
    Reserve {
        /// Datagram address the verdict should be sent to.
        reply_to: String,
        /// Key being written.
        key: String,
        /// Bytes the new value needs.
        len: u64,
    },
    /// Owner → client: the span is reserved; push the value bytes with a
    /// one-sided Write, then send [`StateFrame::Commit`].
    Reserved {
        /// Key being written.
        key: String,
        /// Byte offset inside the owner's arena.
        offset: u64,
        /// Reserved length in bytes.
        len: u64,
        /// Version the value will carry once committed.
        version: u64,
    },
    /// Owner → client: the reservation failed — the arena cannot hold the
    /// value. Carries the numbers so the client can surface a typed
    /// capacity error instead of a string.
    Denied {
        /// Key being written.
        key: String,
        /// Bytes the reservation asked for.
        requested: u64,
        /// Largest contiguous free span of the arena.
        largest_free: u64,
    },
    /// Client → owner: the pushed value of `key` is complete; publish it and
    /// invalidate other caches. Fire-and-forget (no reply).
    Commit {
        /// Address of the committing client (skipped by the invalidation
        /// fan-out — its cache is already current).
        reply_to: String,
        /// Committed key.
        key: String,
    },
    /// Client → owner: delete `key`. Answered with [`StateFrame::Deleted`].
    Delete {
        /// Datagram address the verdict should be sent to.
        reply_to: String,
        /// Key being deleted.
        key: String,
    },
    /// Owner → client: the delete ran; `existed` says whether there was a
    /// value to drop.
    Deleted {
        /// Deleted key.
        key: String,
        /// Whether the key existed.
        existed: bool,
    },
    /// Owner → caching client: your copy of `key` is stale. `version == 0`
    /// means the key was deleted; otherwise a newer `version` exists.
    Invalidate {
        /// Invalidated key.
        key: String,
        /// New version, or 0 on delete.
        version: u64,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Cursor-style decoder over a frame's bytes.
struct FrameReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(StateError::Protocol(format!(
                "state frame truncated at byte {}",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StateError::Protocol("non-UTF-8 string in state frame".into()))
    }

    fn finish(self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(StateError::Protocol(format!(
                "{} trailing bytes after state frame",
                self.bytes.len() - self.at
            )))
        }
    }
}

const TAG_LOOKUP: u8 = 1;
const TAG_OWNER: u8 = 2;
const TAG_NOT_FOUND: u8 = 3;
const TAG_RESERVE: u8 = 4;
const TAG_RESERVED: u8 = 5;
const TAG_DENIED: u8 = 6;
const TAG_COMMIT: u8 = 7;
const TAG_DELETE: u8 = 8;
const TAG_DELETED: u8 = 9;
const TAG_INVALIDATE: u8 = 10;

impl StateFrame {
    /// Serialise the frame into datagram payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            StateFrame::Lookup { reply_to, key } => {
                out.push(TAG_LOOKUP);
                put_str(&mut out, reply_to);
                put_str(&mut out, key);
            }
            StateFrame::Owner {
                key,
                offset,
                len,
                version,
            } => {
                out.push(TAG_OWNER);
                put_str(&mut out, key);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            StateFrame::NotFound { key } => {
                out.push(TAG_NOT_FOUND);
                put_str(&mut out, key);
            }
            StateFrame::Reserve { reply_to, key, len } => {
                out.push(TAG_RESERVE);
                put_str(&mut out, reply_to);
                put_str(&mut out, key);
                out.extend_from_slice(&len.to_le_bytes());
            }
            StateFrame::Reserved {
                key,
                offset,
                len,
                version,
            } => {
                out.push(TAG_RESERVED);
                put_str(&mut out, key);
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            StateFrame::Denied {
                key,
                requested,
                largest_free,
            } => {
                out.push(TAG_DENIED);
                put_str(&mut out, key);
                out.extend_from_slice(&requested.to_le_bytes());
                out.extend_from_slice(&largest_free.to_le_bytes());
            }
            StateFrame::Commit { reply_to, key } => {
                out.push(TAG_COMMIT);
                put_str(&mut out, reply_to);
                put_str(&mut out, key);
            }
            StateFrame::Delete { reply_to, key } => {
                out.push(TAG_DELETE);
                put_str(&mut out, reply_to);
                put_str(&mut out, key);
            }
            StateFrame::Deleted { key, existed } => {
                out.push(TAG_DELETED);
                put_str(&mut out, key);
                out.push(u8::from(*existed));
            }
            StateFrame::Invalidate { key, version } => {
                out.push(TAG_INVALIDATE);
                put_str(&mut out, key);
                out.extend_from_slice(&version.to_le_bytes());
            }
        }
        out
    }

    /// Decode a frame from datagram payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<StateFrame> {
        let mut r = FrameReader { bytes, at: 0 };
        let frame = match r.u8()? {
            TAG_LOOKUP => StateFrame::Lookup {
                reply_to: r.string()?,
                key: r.string()?,
            },
            TAG_OWNER => StateFrame::Owner {
                key: r.string()?,
                offset: r.u64()?,
                len: r.u64()?,
                version: r.u64()?,
            },
            TAG_NOT_FOUND => StateFrame::NotFound { key: r.string()? },
            TAG_RESERVE => StateFrame::Reserve {
                reply_to: r.string()?,
                key: r.string()?,
                len: r.u64()?,
            },
            TAG_RESERVED => StateFrame::Reserved {
                key: r.string()?,
                offset: r.u64()?,
                len: r.u64()?,
                version: r.u64()?,
            },
            TAG_DENIED => StateFrame::Denied {
                key: r.string()?,
                requested: r.u64()?,
                largest_free: r.u64()?,
            },
            TAG_COMMIT => StateFrame::Commit {
                reply_to: r.string()?,
                key: r.string()?,
            },
            TAG_DELETE => StateFrame::Delete {
                reply_to: r.string()?,
                key: r.string()?,
            },
            TAG_DELETED => StateFrame::Deleted {
                key: r.string()?,
                existed: r.u8()? != 0,
            },
            TAG_INVALIDATE => StateFrame::Invalidate {
                key: r.string()?,
                version: r.u64()?,
            },
            tag => {
                return Err(StateError::Protocol(format!(
                    "unknown state frame tag {tag}"
                )))
            }
        };
        r.finish()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<StateFrame> {
        vec![
            StateFrame::Lookup {
                reply_to: "state://client-0".into(),
                key: "model".into(),
            },
            StateFrame::Owner {
                key: "model".into(),
                offset: 4096,
                len: 1 << 20,
                version: 7,
            },
            StateFrame::NotFound { key: "gone".into() },
            StateFrame::Reserve {
                reply_to: "state://client-1".into(),
                key: "agg".into(),
                len: 256,
            },
            StateFrame::Reserved {
                key: "agg".into(),
                offset: 0,
                len: 256,
                version: 1,
            },
            StateFrame::Denied {
                key: "huge".into(),
                requested: 1 << 30,
                largest_free: 4096,
            },
            StateFrame::Commit {
                reply_to: "state://client-1".into(),
                key: "agg".into(),
            },
            StateFrame::Delete {
                reply_to: "state://client-0".into(),
                key: "agg".into(),
            },
            StateFrame::Deleted {
                key: "agg".into(),
                existed: true,
            },
            StateFrame::Invalidate {
                key: "model".into(),
                version: 8,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in frames() {
            let bytes = frame.encode();
            assert_eq!(StateFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        for frame in frames() {
            let bytes = frame.encode();
            for cut in 1..bytes.len() {
                assert!(
                    StateFrame::decode(&bytes[..cut]).is_err(),
                    "truncation at {cut} must not decode: {frame:?}"
                );
            }
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(StateFrame::decode(&padded).is_err());
        }
        assert!(StateFrame::decode(&[]).is_err());
        assert!(StateFrame::decode(&[99]).is_err());
    }

    proptest::proptest! {
        // Any (reply_to, key, words) combination survives the wire.
        #[test]
        fn prop_state_frame_round_trip(reply_to: String, key: String, a: u64, b: u64, c: u64) {
            for frame in [
                StateFrame::Lookup { reply_to: reply_to.clone(), key: key.clone() },
                StateFrame::Owner { key: key.clone(), offset: a, len: b, version: c },
                StateFrame::Reserve { reply_to: reply_to.clone(), key: key.clone(), len: a },
                StateFrame::Reserved { key: key.clone(), offset: a, len: b, version: c },
                StateFrame::Denied { key: key.clone(), requested: a, largest_free: b },
                StateFrame::Commit { reply_to: reply_to.clone(), key: key.clone() },
                StateFrame::Deleted { key: key.clone(), existed: a & 1 == 1 },
                StateFrame::Invalidate { key, version: c },
            ] {
                proptest::prop_assert_eq!(StateFrame::decode(&frame.encode()).unwrap(), frame);
            }
        }
    }
}
