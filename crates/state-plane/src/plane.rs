//! The state plane: one owner node, many caching clients.
//!
//! A [`StatePlane`] is a distributed KV store split the rFaaS way:
//!
//! * **Control path** — key → region/owner resolution, put reservations,
//!   commits, deletes and cache invalidations ride [`StateFrame`] datagrams
//!   through the owner's metadata service, exactly like the platform's
//!   allocation protocol rides `ControlFrame`s. The metadata service is
//!   pumped synchronously by whichever actor is waiting on it, so the whole
//!   exchange stays virtual-time deterministic.
//! * **Data path** — value bytes never touch the control path. The owner
//!   holds every value in one pre-registered arena; a client caches hot
//!   values in its own pre-registered region and fetches them with
//!   one-sided READs ([`rdma_fabric::NicProfile::state_read_cost`] — no
//!   owner CPU involvement), while puts push bytes with one-sided Writes
//!   ([`rdma_fabric::NicProfile::state_write_cost`]). A cache hit costs
//!   nothing on the wire: that is the hot-key fast path the fig19
//!   experiment gates.
//!
//! Consistency is invalidation-based: committing a put fans out
//! [`StateFrame::Invalidate`] to every attached client except the writer,
//! and clients drain their invalidation queue before serving any read —
//! so a read issued after a put completes can never return the old value
//! (the `prop_state_no_lost_invalidation` property).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rdma_fabric::{
    AccessFlags, DatagramSocket, Endpoint, Fabric, FabricNode, MemoryRegion, ProtectionDomain,
};
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::VirtualClock;

use crate::error::{Result, StateError};
use crate::frame::StateFrame;
use crate::region::RegionAllocator;

/// How long a control-plane reply may take before the caller gives up
/// (wall-clock guard only; virtual time is exact).
const CONTROL_TIMEOUT: Duration = Duration::from_secs(5);

/// Authoritative location of one committed value in the owner's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatePlacement {
    /// Byte offset inside the arena.
    pub offset: usize,
    /// Value length in bytes.
    pub len: usize,
    /// Monotonic version, bumped by every committed put.
    pub version: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingPut {
    offset: usize,
    len: usize,
    version: u64,
    /// Span to release once the new value is committed (a resize moved the
    /// value).
    old: Option<(usize, usize)>,
}

#[derive(Debug)]
struct ServerState {
    allocator: RegionAllocator,
    directory: BTreeMap<String, StatePlacement>,
    pending: BTreeMap<String, PendingPut>,
    /// Attached client addresses, in attach order — the deterministic
    /// invalidation fan-out order.
    clients: Vec<String>,
    next_client: u64,
}

#[derive(Debug, Default)]
struct PlaneCounters {
    control_frames: AtomicU64,
    lookups: AtomicU64,
    reserves: AtomicU64,
    denials: AtomicU64,
    commits: AtomicU64,
    deletes: AtomicU64,
    invalidations_sent: AtomicU64,
    remote_read_bytes: AtomicU64,
    pushed_write_bytes: AtomicU64,
}

/// Snapshot of the owner-side counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatePlaneStats {
    /// Committed keys currently stored.
    pub keys: usize,
    /// Arena bytes in use.
    pub used_bytes: usize,
    /// Arena capacity in bytes.
    pub capacity: usize,
    /// Clients currently attached.
    pub clients: usize,
    /// Control frames processed by the metadata service.
    pub control_frames: u64,
    /// Lookup requests served.
    pub lookups: u64,
    /// Put reservations attempted.
    pub reserves: u64,
    /// Reservations denied for capacity.
    pub denials: u64,
    /// Puts committed.
    pub commits: u64,
    /// Deletes served.
    pub deletes: u64,
    /// Invalidations fanned out to caching clients.
    pub invalidations_sent: u64,
    /// Value bytes served over one-sided READs.
    pub remote_read_bytes: u64,
    /// Value bytes received over push-model Writes.
    pub pushed_write_bytes: u64,
}

struct PlaneInner {
    fabric: Arc<Fabric>,
    node: Arc<FabricNode>,
    clock: Arc<VirtualClock>,
    name: String,
    control_address: String,
    arena: MemoryRegion,
    state: OrderedMutex<ServerState>,
    socket: OrderedMutex<DatagramSocket>,
    counters: PlaneCounters,
}

/// Handle to one state plane. Cloning is cheap and refers to the same plane.
#[derive(Clone)]
pub struct StatePlane {
    inner: Arc<PlaneInner>,
}

impl std::fmt::Debug for StatePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatePlane")
            .field("name", &self.inner.name)
            .field("node", &self.inner.node.name())
            .finish()
    }
}

impl StatePlane {
    /// Stand up a state plane on `node_name` with a `capacity`-byte arena
    /// registered once at startup. The metadata service binds a datagram
    /// socket at `state://{name}`.
    pub fn new(fabric: &Arc<Fabric>, node_name: &str, capacity: usize) -> StatePlane {
        let node = fabric.add_node(node_name);
        let clock = VirtualClock::shared();
        let endpoint = Endpoint::new(fabric, &node).with_clock(Arc::clone(&clock));
        let arena = endpoint.pd.register(capacity, AccessFlags::REMOTE_ALL);
        let control_address = format!("state://{node_name}");
        let socket = DatagramSocket::bind(&endpoint, &control_address);
        StatePlane {
            inner: Arc::new(PlaneInner {
                fabric: Arc::clone(fabric),
                node,
                clock,
                name: node_name.to_string(),
                control_address,
                arena,
                state: OrderedMutex::new(
                    ranks::STATE_SERVER,
                    ServerState {
                        allocator: RegionAllocator::new(capacity),
                        directory: BTreeMap::new(),
                        pending: BTreeMap::new(),
                        clients: Vec::new(),
                        next_client: 0,
                    },
                ),
                socket: OrderedMutex::new(ranks::STATE_SOCKET, socket),
                counters: PlaneCounters::default(),
            }),
        }
    }

    /// Name of the plane (also its owner node's name).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Datagram address of the metadata service.
    pub fn control_address(&self) -> &str {
        &self.inner.control_address
    }

    /// Current virtual time of the owner node (the determinism suite pins
    /// this alongside placements).
    pub fn now(&self) -> sim_core::SimTime {
        self.inner.clock.now()
    }

    /// Attach a caching client running on `node` under `clock`, with a
    /// pre-registered cache region of `cache_bytes`. The attach pays the
    /// datagram endpoint setup and the cache registration, once.
    pub fn attach(
        &self,
        client_name: &str,
        node: &Arc<FabricNode>,
        clock: &Arc<VirtualClock>,
        cache_bytes: usize,
    ) -> StateClient {
        let serial = {
            let mut st = self.inner.state.lock();
            let serial = st.next_client;
            st.next_client += 1;
            serial
        };
        let address = format!("state://{}/{client_name}-{serial}", self.inner.name);
        let pd = ProtectionDomain::new();
        let endpoint = Endpoint::new(&self.inner.fabric, node)
            .with_clock(Arc::clone(clock))
            .with_pd(pd.clone());
        let socket = DatagramSocket::bind(&endpoint, &address);
        let cache = pd.register(cache_bytes, AccessFlags::REMOTE_WRITE);
        self.inner.state.lock().clients.push(address.clone());
        StateClient {
            plane: self.clone(),
            address,
            socket,
            clock: Arc::clone(clock),
            cache,
            cache_alloc: RegionAllocator::new(cache_bytes),
            entries: BTreeMap::new(),
            tick: 0,
            counters: StateClientStats::default(),
        }
    }

    /// Drain and serve every control frame queued at the metadata service.
    /// Called by clients after sending a request (synchronous pumping keeps
    /// the exchange deterministic); harmless to call with an empty queue.
    pub fn pump(&self) {
        loop {
            let msg = self.inner.socket.lock().try_recv();
            let Some(msg) = msg else { break };
            self.inner
                .counters
                .control_frames
                .fetch_add(1, Ordering::Relaxed);
            let Ok(frame) = StateFrame::decode(&msg.payload) else {
                continue;
            };
            self.serve(frame);
        }
    }

    fn send(&self, dst: &str, frame: &StateFrame) {
        // A vanished client (dropped socket) is not an error on the owner:
        // its invalidations simply stop mattering.
        let _ = self.inner.socket.lock().send_to(dst, &frame.encode());
    }

    fn serve(&self, frame: StateFrame) {
        let counters = &self.inner.counters;
        match frame {
            StateFrame::Lookup { reply_to, key } => {
                counters.lookups.fetch_add(1, Ordering::Relaxed);
                let placement = self.inner.state.lock().directory.get(&key).copied();
                let reply = match placement {
                    Some(p) => StateFrame::Owner {
                        key,
                        offset: p.offset as u64,
                        len: p.len as u64,
                        version: p.version,
                    },
                    None => StateFrame::NotFound { key },
                };
                self.send(&reply_to, &reply);
            }
            StateFrame::Reserve { reply_to, key, len } => {
                counters.reserves.fetch_add(1, Ordering::Relaxed);
                let len = len as usize;
                let mut st = self.inner.state.lock();
                // A re-reservation before commit abandons the first span.
                if let Some(stale) = st.pending.remove(&key) {
                    if stale.old.is_some() {
                        st.allocator.release(stale.offset, stale.len);
                    }
                }
                let existing = st.directory.get(&key).copied();
                let reply = if let Some(meta) = existing.filter(|m| m.len == len) {
                    // Same-size overwrite: update in place, no allocation.
                    let pending = PendingPut {
                        offset: meta.offset,
                        len,
                        version: meta.version + 1,
                        old: None,
                    };
                    st.pending.insert(key.clone(), pending);
                    StateFrame::Reserved {
                        key,
                        offset: pending.offset as u64,
                        len: len as u64,
                        version: pending.version,
                    }
                } else {
                    match st.allocator.allocate(len) {
                        Some(offset) => {
                            let pending = PendingPut {
                                offset,
                                len,
                                version: existing.map(|m| m.version).unwrap_or(0) + 1,
                                old: existing.map(|m| (m.offset, m.len)),
                            };
                            st.pending.insert(key.clone(), pending);
                            StateFrame::Reserved {
                                key,
                                offset: offset as u64,
                                len: len as u64,
                                version: pending.version,
                            }
                        }
                        None => {
                            counters.denials.fetch_add(1, Ordering::Relaxed);
                            StateFrame::Denied {
                                key,
                                requested: len as u64,
                                largest_free: st.allocator.largest_free() as u64,
                            }
                        }
                    }
                };
                drop(st);
                self.send(&reply_to, &reply);
            }
            StateFrame::Commit { reply_to, key } => {
                counters.commits.fetch_add(1, Ordering::Relaxed);
                let mut st = self.inner.state.lock();
                let Some(pending) = st.pending.remove(&key) else {
                    return;
                };
                if let Some((old_offset, old_len)) = pending.old {
                    st.allocator.release(old_offset, old_len);
                }
                st.directory.insert(
                    key.clone(),
                    StatePlacement {
                        offset: pending.offset,
                        len: pending.len,
                        version: pending.version,
                    },
                );
                let targets: Vec<String> = st
                    .clients
                    .iter()
                    .filter(|a| **a != reply_to)
                    .cloned()
                    .collect();
                drop(st);
                for target in targets {
                    counters.invalidations_sent.fetch_add(1, Ordering::Relaxed);
                    self.send(
                        &target,
                        &StateFrame::Invalidate {
                            key: key.clone(),
                            version: pending.version,
                        },
                    );
                }
            }
            StateFrame::Delete { reply_to, key } => {
                counters.deletes.fetch_add(1, Ordering::Relaxed);
                let mut st = self.inner.state.lock();
                let removed = st.directory.remove(&key);
                if let Some(meta) = removed {
                    st.allocator.release(meta.offset, meta.len);
                }
                let targets: Vec<String> = st
                    .clients
                    .iter()
                    .filter(|a| **a != reply_to)
                    .cloned()
                    .collect();
                drop(st);
                if removed.is_some() {
                    for target in targets {
                        counters.invalidations_sent.fetch_add(1, Ordering::Relaxed);
                        self.send(
                            &target,
                            &StateFrame::Invalidate {
                                key: key.clone(),
                                version: 0,
                            },
                        );
                    }
                }
                self.send(
                    &reply_to,
                    &StateFrame::Deleted {
                        key,
                        existed: removed.is_some(),
                    },
                );
            }
            // Replies and invalidations are client-bound; the owner ignores
            // strays (and any future frame kinds it does not know).
            _ => {}
        }
    }

    /// Whether `key` is committed in the plane.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.state.lock().directory.contains_key(key)
    }

    /// Committed placement of `key`, if any — offset/length/version inside
    /// the owner's arena. The determinism suite pins these.
    pub fn placement(&self, key: &str) -> Option<StatePlacement> {
        self.inner.state.lock().directory.get(key).copied()
    }

    /// All committed keys with their placements, in key order.
    pub fn placements(&self) -> Vec<(String, StatePlacement)> {
        self.inner
            .state
            .lock()
            .directory
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Owner-side counters and occupancy.
    pub fn stats(&self) -> StatePlaneStats {
        let st = self.inner.state.lock();
        let c = &self.inner.counters;
        StatePlaneStats {
            keys: st.directory.len(),
            used_bytes: st.allocator.used_bytes(),
            capacity: st.allocator.capacity(),
            clients: st.clients.len(),
            control_frames: c.control_frames.load(Ordering::Relaxed),
            lookups: c.lookups.load(Ordering::Relaxed),
            reserves: c.reserves.load(Ordering::Relaxed),
            denials: c.denials.load(Ordering::Relaxed),
            commits: c.commits.load(Ordering::Relaxed),
            deletes: c.deletes.load(Ordering::Relaxed),
            invalidations_sent: c.invalidations_sent.load(Ordering::Relaxed),
            remote_read_bytes: c.remote_read_bytes.load(Ordering::Relaxed),
            pushed_write_bytes: c.pushed_write_bytes.load(Ordering::Relaxed),
        }
    }

    fn detach(&self, address: &str) {
        self.inner.state.lock().clients.retain(|a| a != address);
    }
}

/// Client-side counters of one attached [`StateClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateClientStats {
    /// Reads served (hits + remote).
    pub gets: u64,
    /// Values written.
    pub puts: u64,
    /// Keys deleted.
    pub deletes: u64,
    /// Reads served from the local pre-registered cache — zero wire cost.
    pub cache_hits: u64,
    /// Reads that paid a one-sided READ from the owner.
    pub remote_reads: u64,
    /// Bytes fetched over one-sided READs.
    pub bytes_read: u64,
    /// Bytes pushed over one-sided Writes.
    pub bytes_written: u64,
    /// Invalidations applied to the local cache.
    pub invalidations_applied: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    offset: usize,
    len: usize,
    version: u64,
    last_use: u64,
}

/// One attached client: a pre-registered cache region, a version-checked
/// directory of cached keys, and a datagram socket for the control path.
///
/// All operations charge the *client's* clock: a cache hit costs nothing on
/// the wire, a miss pays one control round trip (first access) plus the
/// one-sided READ, a put pays a reservation round trip plus the push-model
/// Write.
pub struct StateClient {
    plane: StatePlane,
    address: String,
    socket: DatagramSocket,
    clock: Arc<VirtualClock>,
    cache: MemoryRegion,
    cache_alloc: RegionAllocator,
    entries: BTreeMap<String, CacheEntry>,
    tick: u64,
    counters: StateClientStats,
}

impl std::fmt::Debug for StateClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateClient")
            .field("address", &self.address)
            .field("cached_keys", &self.entries.len())
            .finish()
    }
}

impl StateClient {
    /// The client's datagram address (where invalidations arrive).
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Client-side counters.
    pub fn stats(&self) -> StateClientStats {
        self.counters
    }

    /// Advance this client's clock to `t` if it lags behind. Embedders call
    /// this before a measured state access so billing starts from the
    /// caller's notion of now — otherwise the first access after an idle
    /// stretch would be charged the catch-up to cluster time on top of its
    /// real cost.
    pub fn sync_to(&self, t: sim_core::SimTime) {
        self.clock.advance_to(t);
    }

    /// Current virtual time on the clock this client charges its state
    /// accesses to. Embedders measure around a get/put to re-bill the spent
    /// time onto another accounting clock (e.g. an executor worker's).
    pub fn now(&self) -> sim_core::SimTime {
        self.clock.now()
    }

    /// Version of the locally cached copy of `key`, if cached.
    pub fn cached_version(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|e| e.version)
    }

    /// Apply one invalidation: the cached copy (if any) is stale or deleted.
    fn invalidate(&mut self, key: &str, version: u64) {
        if let Some(entry) = self.entries.get(key).copied() {
            if version == 0 || entry.version < version {
                self.entries.remove(key);
                self.cache_alloc.release(entry.offset, entry.len);
                self.counters.invalidations_applied += 1;
            }
        }
    }

    /// Drain queued invalidations. Every read path calls this first, which
    /// is what makes "a get issued after a put completes returns the new
    /// value" hold (no lost invalidations).
    fn drain_invalidations(&mut self) {
        while let Some(msg) = self.socket.try_recv() {
            if let Ok(StateFrame::Invalidate { key, version }) = StateFrame::decode(&msg.payload) {
                self.invalidate(&key, version);
            }
        }
    }

    /// One control-plane round trip: send `request`, pump the metadata
    /// service, take the reply (applying any invalidations that arrive in
    /// between).
    fn request(&mut self, request: &StateFrame) -> Result<StateFrame> {
        self.socket
            .send_to(self.plane.control_address(), &request.encode())?;
        self.plane.pump();
        loop {
            let msg = self.socket.recv_timeout(CONTROL_TIMEOUT)?;
            match StateFrame::decode(&msg.payload)? {
                StateFrame::Invalidate { key, version } => self.invalidate(&key, version),
                reply => return Ok(reply),
            }
        }
    }

    /// Make room for `len` cache bytes, evicting least-recently-used
    /// entries. Returns the span offset, or `None` if even an empty cache
    /// cannot hold the value.
    fn cache_reserve(&mut self, len: usize) -> Option<usize> {
        loop {
            if let Some(offset) = self.cache_alloc.allocate(len) {
                return Some(offset);
            }
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())?;
            let entry = self.entries.remove(&victim).expect("victim exists");
            self.cache_alloc.release(entry.offset, entry.len);
        }
    }

    /// Ensure `key`'s current value sits in the cache; returns its span.
    fn ensure_cached(&mut self, key: &str) -> Result<(usize, usize)> {
        self.drain_invalidations();
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.last_use = tick;
            let (offset, len) = (entry.offset, entry.len);
            self.counters.cache_hits += 1;
            return Ok((offset, len));
        }
        // Cold: resolve the placement on the control path...
        let reply = self.request(&StateFrame::Lookup {
            reply_to: self.address.clone(),
            key: key.to_string(),
        })?;
        let (offset, len, version) = match reply {
            StateFrame::Owner {
                offset,
                len,
                version,
                ..
            } => (offset as usize, len as usize, version),
            StateFrame::NotFound { .. } => return Err(StateError::UnknownKey(key.to_string())),
            other => {
                return Err(StateError::Protocol(format!(
                    "unexpected lookup reply {other:?}"
                )))
            }
        };
        if len > self.cache_alloc.capacity() {
            return Err(StateError::ValueTooLarge {
                value: len,
                cache: self.cache_alloc.capacity(),
            });
        }
        let cache_offset = self.cache_reserve(len).ok_or(StateError::ValueTooLarge {
            value: len,
            cache: self.cache_alloc.capacity(),
        })?;
        // ...then fetch the bytes with one one-sided READ into the
        // pre-registered cache region. The owner's CPU is not involved.
        self.clock
            .advance(self.plane.inner.fabric.profile().state_read_cost(len));
        let bytes = self
            .plane
            .inner
            .arena
            .read(offset, len)
            .map_err(StateError::Fabric)?;
        self.cache
            .write(cache_offset, &bytes)
            .map_err(StateError::Fabric)?;
        self.counters.remote_reads += 1;
        self.counters.bytes_read += len as u64;
        self.plane
            .inner
            .counters
            .remote_read_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
        self.entries.insert(
            key.to_string(),
            CacheEntry {
                offset: cache_offset,
                len,
                version,
                last_use: tick,
            },
        );
        Ok((cache_offset, len))
    }

    /// Read `key` and hand `f` a borrowed view of the value bytes straight
    /// from the pre-registered cache region — the zero-copy read path.
    pub fn get_with<R>(&mut self, key: &str, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let (offset, len) = self.ensure_cached(key)?;
        self.counters.gets += 1;
        Ok(self
            .cache
            .with_bytes(|bytes| f(&bytes[offset..offset + len])))
    }

    /// Read `key` into an owned buffer (convenience over [`Self::get_with`]).
    pub fn get(&mut self, key: &str) -> Result<Vec<u8>> {
        self.get_with(key, |bytes| bytes.to_vec())
    }

    /// Write `key = value`: reserve a span on the control path, push the
    /// bytes with a one-sided Write, commit. Other clients' caches are
    /// invalidated by the owner; the local cache is updated write-through.
    pub fn put(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.drain_invalidations();
        let reply = self.request(&StateFrame::Reserve {
            reply_to: self.address.clone(),
            key: key.to_string(),
            len: value.len() as u64,
        })?;
        let (offset, version) = match reply {
            StateFrame::Reserved {
                offset, version, ..
            } => (offset as usize, version),
            StateFrame::Denied {
                requested,
                largest_free,
                ..
            } => {
                return Err(StateError::CapacityExhausted {
                    requested: requested as usize,
                    largest_free: largest_free as usize,
                })
            }
            other => {
                return Err(StateError::Protocol(format!(
                    "unexpected reserve reply {other:?}"
                )))
            }
        };
        // Data path: push the value into the reserved arena span.
        self.clock.advance(
            self.plane
                .inner
                .fabric
                .profile()
                .state_write_cost(value.len()),
        );
        self.plane
            .inner
            .arena
            .write(offset, value)
            .map_err(StateError::Fabric)?;
        self.counters.puts += 1;
        self.counters.bytes_written += value.len() as u64;
        self.plane
            .inner
            .counters
            .pushed_write_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        // Publish on the control path (fire-and-forget + pump, so the
        // invalidation fan-out happens before this put returns).
        self.socket.send_to(
            self.plane.control_address(),
            &StateFrame::Commit {
                reply_to: self.address.clone(),
                key: key.to_string(),
            }
            .encode(),
        )?;
        self.plane.pump();
        // Write-through into the local cache (skipped when the value cannot
        // fit — it then simply lives remotely).
        if let Some(entry) = self.entries.remove(key) {
            self.cache_alloc.release(entry.offset, entry.len);
        }
        if value.len() <= self.cache_alloc.capacity() {
            if let Some(cache_offset) = self.cache_reserve(value.len()) {
                self.cache
                    .write(cache_offset, value)
                    .map_err(StateError::Fabric)?;
                self.tick += 1;
                self.entries.insert(
                    key.to_string(),
                    CacheEntry {
                        offset: cache_offset,
                        len: value.len(),
                        version,
                        last_use: self.tick,
                    },
                );
            }
        }
        Ok(())
    }

    /// Delete `key`. Returns whether it existed.
    pub fn delete(&mut self, key: &str) -> Result<bool> {
        self.drain_invalidations();
        let reply = self.request(&StateFrame::Delete {
            reply_to: self.address.clone(),
            key: key.to_string(),
        })?;
        let existed = match reply {
            StateFrame::Deleted { existed, .. } => existed,
            other => {
                return Err(StateError::Protocol(format!(
                    "unexpected delete reply {other:?}"
                )))
            }
        };
        if let Some(entry) = self.entries.remove(key) {
            self.cache_alloc.release(entry.offset, entry.len);
        }
        self.counters.deletes += 1;
        Ok(existed)
    }

    /// The plane this client is attached to.
    pub fn plane(&self) -> &StatePlane {
        &self.plane
    }
}

impl Drop for StateClient {
    fn drop(&mut self) {
        self.plane.detach(&self.address);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cache_bytes: usize) -> (Arc<Fabric>, StatePlane, StateClient, StateClient) {
        let fabric = Fabric::with_defaults();
        let plane = StatePlane::new(&fabric, "state-01", 1 << 20);
        let node_a = fabric.add_node("client-a");
        let node_b = fabric.add_node("client-b");
        let a = plane.attach("a", &node_a, &VirtualClock::shared(), cache_bytes);
        let b = plane.attach("b", &node_b, &VirtualClock::shared(), cache_bytes);
        (fabric, plane, a, b)
    }

    #[test]
    fn put_get_delete_round_trip_across_clients() {
        let (_fabric, plane, mut a, mut b) = setup(64 * 1024);
        a.put("model", &[7u8; 1024]).unwrap();
        assert!(plane.contains("model"));
        assert_eq!(b.get("model").unwrap(), vec![7u8; 1024]);
        // b's second read is a pure cache hit.
        let before = b.stats();
        assert_eq!(b.get("model").unwrap(), vec![7u8; 1024]);
        let after = b.stats();
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        assert_eq!(after.remote_reads, before.remote_reads);

        assert!(a.delete("model").unwrap());
        assert!(!plane.contains("model"));
        assert!(matches!(b.get("model"), Err(StateError::UnknownKey(_))));
        assert!(!a.delete("model").unwrap());
    }

    #[test]
    fn puts_invalidate_other_caches() {
        let (_fabric, plane, mut a, mut b) = setup(64 * 1024);
        a.put("k", b"old").unwrap();
        assert_eq!(b.get("k").unwrap(), b"old".to_vec());
        assert_eq!(b.cached_version("k"), Some(1));
        a.put("k", b"new-value").unwrap();
        // The stale cached copy must never be served.
        assert_eq!(b.get("k").unwrap(), b"new-value".to_vec());
        assert_eq!(b.cached_version("k"), Some(2));
        assert!(b.stats().invalidations_applied >= 1);
        assert!(plane.stats().invalidations_sent >= 1);
        assert_eq!(plane.placement("k").unwrap().version, 2);
    }

    #[test]
    fn hot_reads_skip_the_wire() {
        let (fabric, _plane, mut a, b) = setup(256 * 1024);
        let value = vec![3u8; 128 * 1024];
        a.put("hot", &value).unwrap();

        let clock = VirtualClock::shared();
        let node = fabric.add_node("meter");
        let mut c = _plane.attach("meter", &node, &clock, 256 * 1024);
        let t0 = clock.now();
        c.get_with("hot", |v| assert_eq!(v.len(), value.len()))
            .unwrap();
        let cold = clock.now().saturating_since(t0);
        let t1 = clock.now();
        c.get_with("hot", |v| assert_eq!(v, &value[..])).unwrap();
        let hot = clock.now().saturating_since(t1);
        assert!(hot.is_zero(), "a cache hit must cost nothing on the wire");
        assert!(
            cold > fabric.profile().serialization(value.len()),
            "a cold read pays at least the wire time"
        );
        drop(b);
    }

    #[test]
    fn arena_exhaustion_is_a_typed_error() {
        let fabric = Fabric::with_defaults();
        let plane = StatePlane::new(&fabric, "tiny", 1024);
        let node = fabric.add_node("c");
        let mut c = plane.attach("c", &node, &VirtualClock::shared(), 4096);
        c.put("a", &[1u8; 600]).unwrap();
        match c.put("b", &[2u8; 600]) {
            Err(StateError::CapacityExhausted {
                requested,
                largest_free,
            }) => {
                assert_eq!(requested, 600);
                assert_eq!(largest_free, 424);
            }
            other => panic!("expected CapacityExhausted, got {other:?}"),
        }
        // Deleting frees the span for the retry.
        assert!(c.delete("a").unwrap());
        c.put("b", &[2u8; 600]).unwrap();
    }

    #[test]
    fn oversized_values_cannot_be_cached() {
        let (_fabric, _plane, mut a, mut b) = setup(512);
        // The writer can still put it (the arena holds it)...
        a.put("big", &[9u8; 2048]).unwrap();
        // ...but a reader with a 512-byte cache cannot serve it zero-copy.
        assert!(matches!(
            b.get("big"),
            Err(StateError::ValueTooLarge {
                value: 2048,
                cache: 512
            })
        ));
    }

    #[test]
    fn lru_eviction_keeps_the_cache_conserved() {
        let (_fabric, _plane, mut a, mut b) = setup(2048);
        for i in 0..8 {
            a.put(&format!("k{i}"), &[i as u8; 512]).unwrap();
        }
        // b's 2 KiB cache holds 4 values; reading all 8 evicts the oldest.
        for i in 0..8 {
            assert_eq!(b.get(&format!("k{i}")).unwrap(), vec![i as u8; 512]);
        }
        assert!(b.entries.len() <= 4);
        // Re-reading the most recent key is still a hit.
        let before = b.stats().cache_hits;
        b.get("k7").unwrap();
        assert_eq!(b.stats().cache_hits, before + 1);
        // Conservation: cached spans + free bytes == capacity.
        let cached: usize = b.entries.values().map(|e| e.len).sum();
        assert_eq!(cached + b.cache_alloc.free_bytes(), 2048);
    }

    #[test]
    fn empty_values_round_trip() {
        let (_fabric, plane, mut a, mut b) = setup(1024);
        a.put("empty", &[]).unwrap();
        assert_eq!(b.get("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(plane.placement("empty").unwrap().len, 0);
        assert!(a.delete("empty").unwrap());
    }

    #[test]
    fn detach_removes_the_client_from_the_fanout() {
        let (_fabric, plane, mut a, b) = setup(1024);
        assert_eq!(plane.stats().clients, 2);
        drop(b);
        assert_eq!(plane.stats().clients, 1);
        let sent = plane.stats().invalidations_sent;
        a.put("k", b"x").unwrap();
        assert_eq!(
            plane.stats().invalidations_sent,
            sent,
            "no other client is attached, nothing to invalidate"
        );
    }

    proptest::proptest! {
        // No lost invalidation: across any interleaving of puts, deletes
        // and reads by two clients, a read always returns the latest
        // committed value — never a stale cached copy.
        #[test]
        fn prop_state_no_lost_invalidation(ops: Vec<(u8, (u8, bool))>) {
            let (_fabric, _plane, mut a, mut b) = setup(4 * 1024);
            let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            for (selector, (fill, a_writes)) in ops {
                let key = format!("k{}", selector % 4);
                let (writer, reader) = if a_writes { (&mut a, &mut b) } else { (&mut b, &mut a) };
                if fill % 7 == 0 {
                    let existed = writer.delete(&key).unwrap();
                    proptest::prop_assert_eq!(existed, model.remove(&key).is_some());
                } else {
                    let value = vec![fill; (fill as usize % 96) + 1];
                    writer.put(&key, &value).unwrap();
                    model.insert(key.clone(), value);
                }
                // The *other* client reads every key: cached copies must
                // never shadow a newer committed value.
                for (k, expected) in &model {
                    proptest::prop_assert_eq!(&reader.get(k).unwrap(), expected);
                }
                for k in 0..4u8 {
                    let key = format!("k{k}");
                    if !model.contains_key(&key) {
                        proptest::prop_assert!(matches!(
                            reader.get(&key),
                            Err(StateError::UnknownKey(_))
                        ));
                    }
                }
            }
        }
    }
}
