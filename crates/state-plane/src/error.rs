//! State-plane errors.

use rdma_fabric::FabricError;

/// Errors surfaced by the state plane.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes (quota classes, replication faults, ...) can be
/// added without a breaking release.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The key is not present in the plane.
    UnknownKey(String),
    /// The owner's arena cannot hold the value.
    CapacityExhausted {
        /// Bytes the value needs.
        requested: usize,
        /// Largest contiguous free span of the arena.
        largest_free: usize,
    },
    /// The value does not fit the client's pre-registered cache region, so
    /// it cannot be served zero-copy.
    ValueTooLarge {
        /// Bytes the value needs.
        value: usize,
        /// Capacity of the client cache region.
        cache: usize,
    },
    /// A fabric-level failure on the control or data path.
    Fabric(FabricError),
    /// A malformed or unexpected control frame.
    Protocol(String),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::UnknownKey(key) => write!(f, "unknown state key '{key}'"),
            StateError::CapacityExhausted {
                requested,
                largest_free,
            } => write!(
                f,
                "state arena exhausted: {requested} B requested, largest free span {largest_free} B"
            ),
            StateError::ValueTooLarge { value, cache } => write!(
                f,
                "value of {value} B exceeds the {cache} B client cache region"
            ),
            StateError::Fabric(e) => write!(f, "fabric error on the state plane: {e}"),
            StateError::Protocol(msg) => write!(f, "state-plane protocol error: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<FabricError> for StateError {
    fn from(e: FabricError) -> StateError {
        StateError::Fabric(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StateError>;
