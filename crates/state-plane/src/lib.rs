//! # state-plane — zero-copy RDMA state for stateful functions
//!
//! rFaaS functions are stateless by construction: every invocation ships its
//! whole input over the wire and its whole output back. That is the right
//! call for latency, but it makes iterative workloads (streaming
//! aggregation, model training) pay a copy-in/copy-out tax proportional to
//! their *state*, not their *update*. This crate adds the missing tier: a
//! distributed KV store whose metadata rides the control plane and whose
//! bytes ride one-sided RDMA.
//!
//! The split mirrors the rest of the platform:
//!
//! * [`StateFrame`] — the control-plane wire protocol (lookup, reserve,
//!   commit, delete, invalidate), datagram-shaped like the allocation
//!   protocol's `ControlFrame`.
//! * [`RegionAllocator`] — span bookkeeping over a memory region registered
//!   once; values are carved out of it, never registered individually.
//! * [`StatePlane`] — the owner: one pre-registered arena plus the metadata
//!   service that maps keys to arena spans and fans out invalidations.
//! * [`StateClient`] — an attached consumer: a pre-registered cache region
//!   serving hot keys with zero wire cost, one-sided READs on misses,
//!   push-model Writes on puts.
//! * [`StateSpec`] / [`StateKey`] — the declared key dependencies of a
//!   function binding, validated once at bind time.
//!
//! Everything is costed by the fabric's `NicProfile` and advances virtual
//! clocks only, so simulations involving state stay deterministic.

mod error;
mod frame;
mod plane;
mod region;
mod spec;

pub use error::{Result, StateError};
pub use frame::StateFrame;
pub use plane::{StateClient, StateClientStats, StatePlacement, StatePlane, StatePlaneStats};
pub use region::{RegionAllocator, Span};
pub use spec::{StateKey, StateMode, StateSpec};
