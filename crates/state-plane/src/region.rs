//! Span allocation inside a registered arena.
//!
//! Both ends of the state plane carve values out of one big pre-registered
//! [`rdma_fabric::MemoryRegion`]: the owner's arena holds the authoritative
//! copy of every value, a client's cache holds the hot subset. Registration
//! is the expensive part of RDMA memory management, so neither side ever
//! registers per value — they allocate spans from a region registered once.
//!
//! [`RegionAllocator`] is a first-fit free-list allocator over byte offsets:
//! no actual memory is owned here, only the bookkeeping of which spans of the
//! arena are free. Released spans merge with their neighbours, so the
//! allocator conserves bytes exactly — the property the `prop_region_*`
//! tests pin down.

/// A contiguous byte range of an arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the span.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Span {
    /// End offset (one past the last byte).
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// First-fit free-list allocator over a fixed-capacity arena.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    capacity: usize,
    /// Free spans, sorted by offset, never adjacent (always merged).
    free: Vec<Span>,
}

impl RegionAllocator {
    /// An allocator over `capacity` bytes, all free.
    pub fn new(capacity: usize) -> RegionAllocator {
        let free = if capacity > 0 {
            vec![Span {
                offset: 0,
                len: capacity,
            }]
        } else {
            Vec::new()
        };
        RegionAllocator { capacity, free }
    }

    /// Arena capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.free.iter().map(|s| s.len).sum()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.capacity - self.free_bytes()
    }

    /// Largest single allocation that can currently succeed.
    pub fn largest_free(&self) -> usize {
        self.free.iter().map(|s| s.len).max().unwrap_or(0)
    }

    /// Allocate `len` bytes, returning the span's offset. First fit: the
    /// lowest-offset free span that holds `len` is split. Zero-length
    /// allocations always succeed at offset 0 without touching the free
    /// list (empty values occupy no arena bytes).
    pub fn allocate(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            return Some(0);
        }
        let idx = self.free.iter().position(|s| s.len >= len)?;
        let span = self.free[idx];
        if span.len == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = Span {
                offset: span.offset + len,
                len: span.len - len,
            };
        }
        Some(span.offset)
    }

    /// Release a previously allocated span, merging it with free neighbours.
    /// Releasing a zero-length span is a no-op (the dual of the zero-length
    /// allocation).
    pub fn release(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        debug_assert!(offset + len <= self.capacity, "span outside the arena");
        let idx = self.free.partition_point(|s| s.offset < offset);
        let mut span = Span { offset, len };
        // Merge with the successor.
        if idx < self.free.len() && span.end() == self.free[idx].offset {
            span.len += self.free[idx].len;
            self.free.remove(idx);
        }
        // Merge with the predecessor.
        if idx > 0 && self.free[idx - 1].end() == span.offset {
            self.free[idx - 1].len += span.len;
        } else {
            self.free.insert(idx, span);
        }
    }

    /// The free list (sorted, merged) — exposed for the conservation tests.
    pub fn free_spans(&self) -> &[Span] {
        &self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every free span is in bounds, sorted, non-overlapping and
    /// non-adjacent, and free + used bytes equal the capacity.
    fn assert_conserved(alloc: &RegionAllocator, used: &[Span]) {
        let mut prev_end = None;
        for span in alloc.free_spans() {
            assert!(span.len > 0, "empty span on the free list");
            assert!(span.end() <= alloc.capacity(), "free span out of bounds");
            if let Some(end) = prev_end {
                assert!(span.offset > end, "free spans overlap or touch");
            }
            prev_end = Some(span.end());
        }
        let used_bytes: usize = used.iter().map(|s| s.len).sum();
        assert_eq!(
            alloc.free_bytes() + used_bytes,
            alloc.capacity(),
            "bytes leaked or double-counted"
        );
        // No used span may intersect a free span.
        for u in used.iter().filter(|u| u.len > 0) {
            for f in alloc.free_spans() {
                assert!(
                    u.end() <= f.offset || f.end() <= u.offset,
                    "used span {u:?} overlaps free span {f:?}"
                );
            }
        }
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut a = RegionAllocator::new(100);
        let x = a.allocate(40).unwrap();
        let y = a.allocate(60).unwrap();
        assert_eq!((x, y), (0, 40));
        assert!(a.allocate(1).is_none());
        a.release(x, 40);
        a.release(y, 60);
        assert_eq!(a.free_bytes(), 100);
        assert_eq!(a.free_spans().len(), 1, "released spans must merge");
    }

    #[test]
    fn first_fit_reuses_the_lowest_hole() {
        let mut a = RegionAllocator::new(100);
        let x = a.allocate(30).unwrap();
        let _y = a.allocate(30).unwrap();
        a.release(x, 30);
        // The freed low hole is preferred over the tail.
        assert_eq!(a.allocate(20).unwrap(), 0);
        assert_eq!(a.largest_free(), 40);
    }

    #[test]
    fn zero_length_spans_cost_nothing() {
        let mut a = RegionAllocator::new(10);
        assert_eq!(a.allocate(0), Some(0));
        assert_eq!(a.free_bytes(), 10);
        a.release(0, 0);
        assert_eq!(a.free_bytes(), 10);
    }

    #[test]
    fn zero_capacity_arena_rejects_everything() {
        let mut a = RegionAllocator::new(0);
        assert_eq!(a.allocate(1), None);
        assert_eq!(a.allocate(0), Some(0));
        assert_eq!(a.largest_free(), 0);
    }

    proptest::proptest! {
        // Region conservation: across any interleaving of allocations and
        // releases, free + used always equals capacity and the free list
        // stays sorted, merged and in bounds.
        #[test]
        fn prop_region_conservation(ops: Vec<(u16, bool)>) {
            let mut alloc = RegionAllocator::new(4096);
            let mut used: Vec<Span> = Vec::new();
            for (raw, prefer_release) in ops {
                let len = raw as usize % 600;
                if prefer_release && !used.is_empty() {
                    let span = used.swap_remove(len % used.len());
                    alloc.release(span.offset, span.len);
                } else if let Some(offset) = alloc.allocate(len) {
                    used.push(Span { offset, len });
                }
                assert_conserved(&alloc, &used);
            }
            // Draining everything restores the pristine arena.
            for span in used.drain(..) {
                alloc.release(span.offset, span.len);
            }
            proptest::prop_assert_eq!(alloc.free_bytes(), 4096);
            proptest::prop_assert!(alloc.free_spans().len() <= 1);
        }
    }
}
