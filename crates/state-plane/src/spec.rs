//! Declared state dependencies of a function.
//!
//! A stateful function does not open arbitrary keys at run time — it
//! *declares* the keys it touches and whether it writes them. The platform
//! validates the declaration once at bind time (keys exist, the plane is
//! attached) and the executor materialises exactly the declared set before
//! dispatch, so the per-invocation hot path never takes a control-plane
//! round trip for a key the declaration already resolved.

/// How a function uses one declared key.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateMode {
    /// The function only reads the value; writing it back is an error.
    Read,
    /// The function may mutate the value; dirty values are written back
    /// after completion.
    ReadWrite,
}

/// One declared key dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateKey {
    /// Key name in the state plane.
    pub name: String,
    /// Declared access mode.
    pub mode: StateMode,
}

impl StateKey {
    /// Declare a read-only dependency on `name`.
    pub fn read(name: &str) -> StateKey {
        StateKey {
            name: name.to_string(),
            mode: StateMode::Read,
        }
    }

    /// Declare a read-write dependency on `name`.
    pub fn read_write(name: &str) -> StateKey {
        StateKey {
            name: name.to_string(),
            mode: StateMode::ReadWrite,
        }
    }
}

/// The full state declaration of one function binding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateSpec {
    keys: Vec<StateKey>,
}

impl StateSpec {
    /// Build a spec from declared keys. Later duplicates of a name override
    /// earlier ones (the last declaration wins).
    pub fn new(keys: impl IntoIterator<Item = StateKey>) -> StateSpec {
        let mut spec = StateSpec { keys: Vec::new() };
        for key in keys {
            spec.keys.retain(|k| k.name != key.name);
            spec.keys.push(key);
        }
        spec
    }

    /// Declared keys, in declaration order.
    pub fn keys(&self) -> &[StateKey] {
        &self.keys
    }

    /// Whether nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Access mode declared for `name`, if any.
    pub fn mode_of(&self, name: &str) -> Option<StateMode> {
        self.keys.iter().find(|k| k.name == name).map(|k| k.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_declarations_override_earlier_ones() {
        let spec = StateSpec::new([
            StateKey::read("model"),
            StateKey::read_write("agg"),
            StateKey::read_write("model"),
        ]);
        assert_eq!(spec.keys().len(), 2);
        assert_eq!(spec.mode_of("model"), Some(StateMode::ReadWrite));
        assert_eq!(spec.mode_of("agg"), Some(StateMode::ReadWrite));
        assert_eq!(spec.mode_of("other"), None);
        assert!(!spec.is_empty());
        assert!(StateSpec::default().is_empty());
    }
}
