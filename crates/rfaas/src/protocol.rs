//! Wire protocol of rFaaS invocations and leases.
//!
//! An invocation is a single RDMA WRITE_WITH_IMM into the worker's registered
//! input buffer. The buffer starts with a small header telling the executor
//! where to write the result — "an address and access key for a buffer on the
//! client's side" (Sec. IV-A) — followed by the raw payload. The 32-bit
//! immediate value carries the invocation identifier and the function index.
//! The result travels back the same way: a WRITE_WITH_IMM into the client's
//! output buffer whose immediate carries the invocation id and a status code.
//!
//! The paper packs the header into twelve bytes (64-bit address + 32-bit
//! rkey); the software fabric uses 64-bit remote keys and explicit lengths,
//! so the header here is 24 bytes. The cost model is unaffected: both fit in
//! a single cache line and are written once per invocation.

use rdma_fabric::RemoteMemoryHandle;
use sandbox::SandboxType;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

use crate::error::{RFaasError, Result};

/// Size of the invocation header preceding the payload in the executor's
/// input buffer.
pub const INVOCATION_HEADER_BYTES: usize = 24;

/// Header written by the client in front of every invocation payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationHeader {
    /// Remote key of the client's result buffer.
    pub result_rkey: u64,
    /// Offset within the client's result registration.
    pub result_offset: u64,
    /// Capacity of the client's result buffer in bytes.
    pub result_capacity: u64,
}

impl InvocationHeader {
    /// Build a header pointing at the client-side result buffer.
    pub fn for_result_buffer(handle: &RemoteMemoryHandle) -> InvocationHeader {
        InvocationHeader {
            result_rkey: handle.rkey,
            result_offset: handle.offset as u64,
            result_capacity: handle.len as u64,
        }
    }

    /// Serialise into the on-wire byte layout.
    pub fn encode(&self) -> [u8; INVOCATION_HEADER_BYTES] {
        let mut bytes = [0u8; INVOCATION_HEADER_BYTES];
        bytes[0..8].copy_from_slice(&self.result_rkey.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.result_offset.to_le_bytes());
        bytes[16..24].copy_from_slice(&self.result_capacity.to_le_bytes());
        bytes
    }

    /// Parse from the on-wire byte layout.
    pub fn decode(bytes: &[u8]) -> Result<InvocationHeader> {
        if bytes.len() < INVOCATION_HEADER_BYTES {
            return Err(RFaasError::Internal(format!(
                "invocation header truncated: {} bytes",
                bytes.len()
            )));
        }
        Ok(InvocationHeader {
            result_rkey: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            result_offset: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            result_capacity: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
        })
    }

    /// The remote handle this header points at.
    pub fn result_handle(&self) -> RemoteMemoryHandle {
        RemoteMemoryHandle {
            rkey: self.result_rkey,
            offset: self.result_offset as usize,
            len: self.result_capacity as usize,
        }
    }
}

/// Status of an invocation result, carried in the immediate value.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new status codes can be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResultStatus {
    /// The function executed; the completion's byte length is the output size.
    Success,
    /// The executor's resources were busy (oversubscribed warm invocation);
    /// the client should redirect to another executor (Fig. 6).
    Rejected,
    /// The function raised an error.
    FunctionFailed,
    /// The lease backing this worker expired before the invocation arrived;
    /// the client must re-allocate through the resource manager (Sec. III-B).
    LeaseExpired,
}

/// Packing/unpacking of the 32-bit immediate value.
///
/// Request immediates carry `(invocation_id, function_index)`; response
/// immediates carry `(invocation_id, status)`. Invocation ids wrap at 2^24,
/// which is far more than the number of in-flight invocations per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmValue;

impl ImmValue {
    /// Encode a request immediate.
    pub fn request(invocation_id: u32, function_index: u8) -> u32 {
        ((invocation_id & 0x00FF_FFFF) << 8) | function_index as u32
    }

    /// Decode a request immediate into `(invocation_id, function_index)`.
    pub fn parse_request(imm: u32) -> (u32, u8) {
        (imm >> 8, (imm & 0xFF) as u8)
    }

    /// Encode a response immediate.
    pub fn response(invocation_id: u32, status: ResultStatus) -> u32 {
        let code = match status {
            ResultStatus::Success => 0,
            ResultStatus::Rejected => 1,
            ResultStatus::FunctionFailed => 2,
            ResultStatus::LeaseExpired => 3,
        };
        ((invocation_id & 0x00FF_FFFF) << 8) | code
    }

    /// Decode a response immediate into `(invocation_id, status)`.
    pub fn parse_response(imm: u32) -> (u32, ResultStatus) {
        let status = match imm & 0xFF {
            0 => ResultStatus::Success,
            1 => ResultStatus::Rejected,
            3 => ResultStatus::LeaseExpired,
            _ => ResultStatus::FunctionFailed,
        };
        (imm >> 8, status)
    }
}

/// A client's request for executor resources (A1 in Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// Worker threads (= parallel function instances) requested.
    pub cores: u32,
    /// Memory for the executor process, in MiB.
    pub memory_mib: u64,
    /// How long the lease should remain valid.
    pub timeout: SimDuration,
    /// Sandbox technology to isolate the executor with.
    pub sandbox: SandboxType,
    /// Name of the deployed code package to load.
    pub package: String,
}

impl LeaseRequest {
    /// A minimal single-worker request for the given package.
    pub fn single_worker(package: &str) -> LeaseRequest {
        LeaseRequest {
            cores: 1,
            memory_mib: 512,
            timeout: SimDuration::from_secs(600),
            sandbox: SandboxType::BareMetal,
            package: package.to_string(),
        }
    }

    /// Builder-style override of the worker count.
    pub fn with_cores(mut self, cores: u32) -> LeaseRequest {
        self.cores = cores;
        self
    }

    /// Builder-style override of the sandbox type.
    pub fn with_sandbox(mut self, sandbox: SandboxType) -> LeaseRequest {
        self.sandbox = sandbox;
        self
    }

    /// Builder-style override of the memory request.
    pub fn with_memory_mib(mut self, memory_mib: u64) -> LeaseRequest {
        self.memory_mib = memory_mib;
        self
    }
}

/// A granted lease on a spot executor (Sec. III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// Unique lease identifier.
    pub id: u64,
    /// Node the spot executor runs on.
    pub executor_node: String,
    /// Resources granted.
    pub cores: u32,
    /// Memory granted, in MiB.
    pub memory_mib: u64,
    /// Instant the lease expires; the manager reclaims the resources then.
    pub expires_at: SimTime,
    /// Sandbox type the executor will run in.
    pub sandbox: SandboxType,
    /// Code package the executor serves.
    pub package: String,
    /// Index of the lease's billing slot in the manager's billing database.
    pub billing_slot: usize,
}

impl Lease {
    /// Whether the lease is still valid at `now`.
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        now < self.expires_at
    }
}

/// Control-plane frames carried over the datagram first-contact transport.
///
/// Allocation no longer needs a reliable connection: the client sends one
/// `Allocate` datagram carrying its reply address, the manager answers with
/// `Granted` or `Denied`. The frames use a hand-rolled little-endian layout —
/// length-prefixed strings, nanosecond u64 durations — so both ends agree on
/// bytes without relying on a serialisation framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlFrame {
    /// A1 in Fig. 4: request resources; `reply_to` is the client's datagram
    /// address the verdict should be sent to.
    Allocate {
        /// Datagram address of the requesting client.
        reply_to: String,
        /// The resource request itself.
        request: LeaseRequest,
    },
    /// A2: the manager granted a lease.
    Granted {
        /// The granted lease.
        lease: Lease,
    },
    /// The manager could not place the request.
    Denied {
        /// Human-readable reason.
        reason: String,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn sandbox_code(sandbox: SandboxType) -> u8 {
    match sandbox {
        SandboxType::BareMetal => 0,
        SandboxType::Docker => 1,
        SandboxType::Singularity => 2,
        SandboxType::MicroVm => 3,
    }
}

/// Cursor-style decoder over a control frame's bytes.
struct FrameReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(RFaasError::Internal(format!(
                "control frame truncated at byte {}",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RFaasError::Internal("control frame string is not UTF-8".into()))
    }

    fn sandbox(&mut self) -> Result<SandboxType> {
        match self.u8()? {
            0 => Ok(SandboxType::BareMetal),
            1 => Ok(SandboxType::Docker),
            2 => Ok(SandboxType::Singularity),
            3 => Ok(SandboxType::MicroVm),
            code => Err(RFaasError::Internal(format!(
                "unknown sandbox code {code} in control frame"
            ))),
        }
    }
}

impl ControlFrame {
    /// Serialise into the on-wire byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ControlFrame::Allocate { reply_to, request } => {
                out.push(0);
                put_str(&mut out, reply_to);
                out.extend_from_slice(&request.cores.to_le_bytes());
                out.extend_from_slice(&request.memory_mib.to_le_bytes());
                out.extend_from_slice(&request.timeout.as_nanos().to_le_bytes());
                out.push(sandbox_code(request.sandbox));
                put_str(&mut out, &request.package);
            }
            ControlFrame::Granted { lease } => {
                out.push(1);
                out.extend_from_slice(&lease.id.to_le_bytes());
                put_str(&mut out, &lease.executor_node);
                out.extend_from_slice(&lease.cores.to_le_bytes());
                out.extend_from_slice(&lease.memory_mib.to_le_bytes());
                out.extend_from_slice(&lease.expires_at.as_nanos().to_le_bytes());
                out.push(sandbox_code(lease.sandbox));
                put_str(&mut out, &lease.package);
                out.extend_from_slice(&(lease.billing_slot as u64).to_le_bytes());
            }
            ControlFrame::Denied { reason } => {
                out.push(2);
                put_str(&mut out, reason);
            }
        }
        out
    }

    /// Parse from the on-wire byte layout.
    pub fn decode(bytes: &[u8]) -> Result<ControlFrame> {
        let mut r = FrameReader { bytes, at: 0 };
        match r.u8()? {
            0 => Ok(ControlFrame::Allocate {
                reply_to: r.string()?,
                request: LeaseRequest {
                    cores: r.u32()?,
                    memory_mib: r.u64()?,
                    timeout: SimDuration::from_nanos(r.u64()?),
                    sandbox: r.sandbox()?,
                    package: r.string()?,
                },
            }),
            1 => Ok(ControlFrame::Granted {
                lease: Lease {
                    id: r.u64()?,
                    executor_node: r.string()?,
                    cores: r.u32()?,
                    memory_mib: r.u64()?,
                    expires_at: SimTime::from_nanos(r.u64()?),
                    sandbox: r.sandbox()?,
                    package: r.string()?,
                    billing_slot: r.u64()? as usize,
                },
            }),
            2 => Ok(ControlFrame::Denied {
                reason: r.string()?,
            }),
            tag => Err(RFaasError::Internal(format!(
                "unknown control frame tag {tag}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = InvocationHeader {
            result_rkey: 0xAABB_CCDD_EEFF_0011,
            result_offset: 4096,
            result_capacity: 1 << 20,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), INVOCATION_HEADER_BYTES);
        let decoded = InvocationHeader::decode(&bytes).unwrap();
        assert_eq!(decoded, h);
        let handle = decoded.result_handle();
        assert_eq!(handle.rkey, h.result_rkey);
        assert_eq!(handle.offset, 4096);
        assert_eq!(handle.len, 1 << 20);
    }

    #[test]
    fn header_decode_rejects_short_input() {
        assert!(InvocationHeader::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn header_from_remote_handle() {
        let handle = RemoteMemoryHandle {
            rkey: 7,
            offset: 128,
            len: 512,
        };
        let h = InvocationHeader::for_result_buffer(&handle);
        assert_eq!(h.result_rkey, 7);
        assert_eq!(h.result_offset, 128);
        assert_eq!(h.result_capacity, 512);
    }

    #[test]
    fn imm_request_round_trip() {
        for id in [0u32, 1, 255, 65_535, 0x00FF_FFFF] {
            for index in [0u8, 1, 17, 255] {
                let imm = ImmValue::request(id, index);
                let (got_id, got_index) = ImmValue::parse_request(imm);
                assert_eq!(got_id, id);
                assert_eq!(got_index, index);
            }
        }
    }

    #[test]
    fn imm_response_round_trip() {
        for status in [
            ResultStatus::Success,
            ResultStatus::Rejected,
            ResultStatus::FunctionFailed,
            ResultStatus::LeaseExpired,
        ] {
            let imm = ImmValue::response(12345, status);
            let (id, got) = ImmValue::parse_response(imm);
            assert_eq!(id, 12345);
            assert_eq!(got, status);
        }
    }

    #[test]
    fn lease_request_builder() {
        let req = LeaseRequest::single_worker("thumbnailer")
            .with_cores(8)
            .with_memory_mib(2048)
            .with_sandbox(SandboxType::Docker);
        assert_eq!(req.cores, 8);
        assert_eq!(req.memory_mib, 2048);
        assert_eq!(req.sandbox, SandboxType::Docker);
        assert_eq!(req.package, "thumbnailer");
    }

    #[test]
    fn lease_validity() {
        let lease = Lease {
            id: 1,
            executor_node: "nid00001".into(),
            cores: 1,
            memory_mib: 512,
            expires_at: SimTime::from_secs(100),
            sandbox: SandboxType::BareMetal,
            package: "noop".into(),
            billing_slot: 0,
        };
        assert!(lease.is_valid_at(SimTime::from_secs(99)));
        assert!(!lease.is_valid_at(SimTime::from_secs(100)));
        assert!(!lease.is_valid_at(SimTime::from_secs(101)));
    }

    #[test]
    fn control_frames_round_trip() {
        let frames = [
            ControlFrame::Allocate {
                reply_to: "rfaas-clt://client-0/1".into(),
                request: LeaseRequest::single_worker("thumbnailer")
                    .with_cores(4)
                    .with_sandbox(SandboxType::Docker),
            },
            ControlFrame::Granted {
                lease: Lease {
                    id: 42,
                    executor_node: "nid00007".into(),
                    cores: 4,
                    memory_mib: 2048,
                    expires_at: SimTime::from_secs(600),
                    sandbox: SandboxType::MicroVm,
                    package: "thumbnailer".into(),
                    billing_slot: 9,
                },
            },
            ControlFrame::Denied {
                reason: "no executor can fit 4 cores".into(),
            },
        ];
        for frame in frames {
            let decoded = ControlFrame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn control_frame_decode_rejects_garbage() {
        assert!(ControlFrame::decode(&[]).is_err());
        assert!(ControlFrame::decode(&[9]).is_err());
        // A truncated Allocate (string length promises more than present).
        let mut bytes = ControlFrame::Denied {
            reason: "x".repeat(40),
        }
        .encode();
        bytes.truncate(10);
        assert!(ControlFrame::decode(&bytes).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_control_allocate_round_trip(
            cores in 1u32..1024,
            memory_mib in 1u64..1 << 20,
            timeout_ns: u64,
            reply: String,
            package: String,
        ) {
            let frame = ControlFrame::Allocate {
                reply_to: reply,
                request: LeaseRequest {
                    cores,
                    memory_mib,
                    timeout: SimDuration::from_nanos(timeout_ns),
                    sandbox: SandboxType::Singularity,
                    package,
                },
            };
            let decoded = ControlFrame::decode(&frame.encode()).unwrap();
            proptest::prop_assert_eq!(decoded, frame);
        }

        #[test]
        fn prop_imm_request_round_trip(id in 0u32..0x0100_0000, index: u8) {
            let imm = ImmValue::request(id, index);
            let (got_id, got_index) = ImmValue::parse_request(imm);
            proptest::prop_assert_eq!(got_id, id);
            proptest::prop_assert_eq!(got_index, index);
        }

        #[test]
        fn prop_header_round_trip(rkey: u64, offset: u64, capacity: u64) {
            let h = InvocationHeader { result_rkey: rkey, result_offset: offset, result_capacity: capacity };
            let decoded = InvocationHeader::decode(&h.encode()).unwrap();
            proptest::prop_assert_eq!(decoded, h);
        }
    }
}
