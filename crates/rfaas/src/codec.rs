//! Typed payload codecs for the session API.
//!
//! A [`Codec`] describes how a Rust value maps onto the raw invocation
//! payload bytes that travel over RDMA. The typed client surface
//! ([`crate::Session`], [`crate::FunctionHandle`]) uses it to infer payload
//! lengths and buffer sizes from the value itself, so callers never thread
//! `(buffer, payload_len)` pairs by hand — the chronic source of short-read
//! and over-read bugs in the raw API.
//!
//! The crate ships codecs for the two wire shapes every paper workload
//! reduces to — raw bytes (`[u8]`) and little-endian `f64` vectors
//! (`[f64]`) — and the `workloads` crate layers codecs for its own payload
//! types (option batches, images) on top.

use crate::error::{RFaasError, Result};

/// Encoding/decoding of one invocation payload type.
///
/// `Self` is the *borrowed* shape handed to `submit`/`invoke` (so unsized
/// slice types like `[u8]` work directly), while [`Codec::Owned`] is the
/// owned shape a result decodes into.
pub trait Codec {
    /// The owned value produced by [`Codec::decode`].
    type Owned;

    /// The borrowed view produced by [`Codec::decode_view`]: a typed window
    /// over payload bytes that stay where they are (a registered buffer, a
    /// state-plane cache span). No staging copy is made.
    type View<'a>;

    /// Exact number of payload bytes this value encodes to.
    fn encoded_len(&self) -> usize;

    /// Encode the value into the start of `buf`, returning the bytes
    /// written (always [`Codec::encoded_len`]). Fails with
    /// [`RFaasError::PayloadTooLarge`] when `buf` is too small — the
    /// capacity-bound rejection the typed layer relies on.
    fn encode_into(&self, buf: &mut [u8]) -> Result<usize>;

    /// Decode a payload back into an owned value. Fails with
    /// [`RFaasError::Codec`] on malformed bytes.
    fn decode(bytes: &[u8]) -> Result<Self::Owned>;

    /// Decode a payload *in place*: validate the bytes and hand back a typed
    /// view borrowing them. This is the state-plane read path — a value
    /// cached in a pre-registered client region is decoded without ever
    /// being copied out of it. Fails with [`RFaasError::Codec`] on the same
    /// malformed inputs [`Codec::decode`] rejects.
    fn decode_view(bytes: &[u8]) -> Result<Self::View<'_>>;
}

/// Shared capacity guard for encoders: rejects a value of `required` bytes
/// aimed at a `capacity`-byte buffer with [`RFaasError::PayloadTooLarge`].
/// Public so downstream [`Codec`] implementations (e.g. the workload
/// payloads) reuse the canonical check instead of hand-rolling it.
pub fn check_capacity(required: usize, capacity: usize) -> Result<()> {
    if required > capacity {
        return Err(RFaasError::PayloadTooLarge {
            payload: required,
            capacity,
        });
    }
    Ok(())
}

impl Codec for [u8] {
    type Owned = Vec<u8>;
    type View<'a> = &'a [u8];

    fn encoded_len(&self) -> usize {
        self.len()
    }

    fn encode_into(&self, buf: &mut [u8]) -> Result<usize> {
        check_capacity(self.len(), buf.len())?;
        buf[..self.len()].copy_from_slice(self);
        Ok(self.len())
    }

    fn decode(bytes: &[u8]) -> Result<Vec<u8>> {
        Ok(bytes.to_vec())
    }

    fn decode_view(bytes: &[u8]) -> Result<&[u8]> {
        Ok(bytes)
    }
}

/// Borrowed view over a little-endian `f64` payload: element access without
/// materialising a `Vec<f64>`. Produced by `<[f64]>::decode_view`.
#[derive(Debug, Clone, Copy)]
pub struct F64View<'a> {
    bytes: &'a [u8],
}

impl<'a> F64View<'a> {
    /// Number of `f64` elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Element `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        let chunk = self.bytes.get(i * 8..i * 8 + 8)?;
        Some(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
    }

    /// Iterate the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
    }

    /// Copy out into an owned vector (leaves the view usable).
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

impl Codec for [f64] {
    type Owned = Vec<f64>;
    type View<'a> = F64View<'a>;

    fn encoded_len(&self) -> usize {
        self.len() * 8
    }

    fn encode_into(&self, buf: &mut [u8]) -> Result<usize> {
        let len = self.encoded_len();
        check_capacity(len, buf.len())?;
        for (chunk, value) in buf[..len].chunks_exact_mut(8).zip(self.iter()) {
            chunk.copy_from_slice(&value.to_le_bytes());
        }
        Ok(len)
    }

    fn decode(bytes: &[u8]) -> Result<Vec<f64>> {
        if !bytes.len().is_multiple_of(8) {
            return Err(RFaasError::Codec(format!(
                "f64 payload length {} is not a multiple of 8",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn decode_view(bytes: &[u8]) -> Result<F64View<'_>> {
        if !bytes.len().is_multiple_of(8) {
            return Err(RFaasError::Codec(format!(
                "f64 payload length {} is not a multiple of 8",
                bytes.len()
            )));
        }
        Ok(F64View { bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_codec_round_trips_and_bounds() {
        let data = [1u8, 2, 3, 4];
        assert_eq!(data[..].encoded_len(), 4);
        let mut buf = [0u8; 8];
        assert_eq!(data[..].encode_into(&mut buf).unwrap(), 4);
        assert_eq!(<[u8]>::decode(&buf[..4]).unwrap(), data.to_vec());
        let mut short = [0u8; 3];
        assert!(matches!(
            data[..].encode_into(&mut short),
            Err(RFaasError::PayloadTooLarge {
                payload: 4,
                capacity: 3
            })
        ));
    }

    #[test]
    fn f64_codec_round_trips_and_rejects_ragged_lengths() {
        let values = [1.5f64, -2.25, 1e300];
        let mut buf = vec![0u8; values[..].encoded_len()];
        values[..].encode_into(&mut buf).unwrap();
        assert_eq!(<[f64]>::decode(&buf).unwrap(), values.to_vec());
        assert!(matches!(
            <[f64]>::decode(&buf[..buf.len() - 1]),
            Err(RFaasError::Codec(_))
        ));
        let mut short = vec![0u8; 8];
        assert!(values[..].encode_into(&mut short).is_err());
    }

    #[test]
    fn byte_view_borrows_without_copying() {
        let data = [9u8, 8, 7];
        let view = <[u8]>::decode_view(&data).unwrap();
        assert_eq!(view, &data[..]);
        // In-place: the view is the payload bytes, not a staging copy.
        assert!(std::ptr::eq(view.as_ptr(), data.as_ptr()));
    }

    #[test]
    fn f64_view_decodes_in_place_and_rejects_ragged_lengths() {
        let values = [0.5f64, -3.0, 42.0];
        let mut buf = vec![0u8; values[..].encoded_len()];
        values[..].encode_into(&mut buf).unwrap();
        let view = <[f64]>::decode_view(&buf).unwrap();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.get(1), Some(-3.0));
        assert_eq!(view.get(3), None);
        assert_eq!(view.iter().sum::<f64>(), 39.5);
        assert_eq!(view.to_vec(), values.to_vec());
        assert!(matches!(
            <[f64]>::decode_view(&buf[..buf.len() - 1]),
            Err(RFaasError::Codec(_))
        ));
        let empty = <[f64]>::decode_view(&[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.get(0), None);
    }

    proptest::proptest! {
        #[test]
        fn prop_byte_codec_round_trip(data: Vec<u8>) {
            let mut buf = vec![0u8; data.len()];
            proptest::prop_assert_eq!(data[..].encode_into(&mut buf).unwrap(), data.len());
            proptest::prop_assert_eq!(<[u8]>::decode(&buf).unwrap(), data);
        }

        #[test]
        fn prop_f64_codec_round_trip(values: Vec<f64>) {
            let values: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
            let mut buf = vec![0u8; values[..].encoded_len()];
            values[..].encode_into(&mut buf).unwrap();
            proptest::prop_assert_eq!(<[f64]>::decode(&buf).unwrap(), values);
        }

        #[test]
        fn prop_codecs_reject_short_buffers(data: Vec<u8>, cut in 1usize..64) {
            if data.len() >= cut {
                let mut short = vec![0u8; data.len() - cut];
                proptest::prop_assert!(data[..].encode_into(&mut short).is_err());
            }
        }
    }
}
