//! Typed payload codecs for the session API.
//!
//! A [`Codec`] describes how a Rust value maps onto the raw invocation
//! payload bytes that travel over RDMA. The typed client surface
//! ([`crate::Session`], [`crate::FunctionHandle`]) uses it to infer payload
//! lengths and buffer sizes from the value itself, so callers never thread
//! `(buffer, payload_len)` pairs by hand — the chronic source of short-read
//! and over-read bugs in the raw API.
//!
//! The crate ships codecs for the two wire shapes every paper workload
//! reduces to — raw bytes (`[u8]`) and little-endian `f64` vectors
//! (`[f64]`) — and the `workloads` crate layers codecs for its own payload
//! types (option batches, images) on top.

use crate::error::{RFaasError, Result};

/// Encoding/decoding of one invocation payload type.
///
/// `Self` is the *borrowed* shape handed to `submit`/`invoke` (so unsized
/// slice types like `[u8]` work directly), while [`Codec::Owned`] is the
/// owned shape a result decodes into.
pub trait Codec {
    /// The owned value produced by [`Codec::decode`].
    type Owned;

    /// Exact number of payload bytes this value encodes to.
    fn encoded_len(&self) -> usize;

    /// Encode the value into the start of `buf`, returning the bytes
    /// written (always [`Codec::encoded_len`]). Fails with
    /// [`RFaasError::PayloadTooLarge`] when `buf` is too small — the
    /// capacity-bound rejection the typed layer relies on.
    fn encode_into(&self, buf: &mut [u8]) -> Result<usize>;

    /// Decode a payload back into an owned value. Fails with
    /// [`RFaasError::Codec`] on malformed bytes.
    fn decode(bytes: &[u8]) -> Result<Self::Owned>;
}

/// Shared capacity guard for encoders: rejects a value of `required` bytes
/// aimed at a `capacity`-byte buffer with [`RFaasError::PayloadTooLarge`].
/// Public so downstream [`Codec`] implementations (e.g. the workload
/// payloads) reuse the canonical check instead of hand-rolling it.
pub fn check_capacity(required: usize, capacity: usize) -> Result<()> {
    if required > capacity {
        return Err(RFaasError::PayloadTooLarge {
            payload: required,
            capacity,
        });
    }
    Ok(())
}

impl Codec for [u8] {
    type Owned = Vec<u8>;

    fn encoded_len(&self) -> usize {
        self.len()
    }

    fn encode_into(&self, buf: &mut [u8]) -> Result<usize> {
        check_capacity(self.len(), buf.len())?;
        buf[..self.len()].copy_from_slice(self);
        Ok(self.len())
    }

    fn decode(bytes: &[u8]) -> Result<Vec<u8>> {
        Ok(bytes.to_vec())
    }
}

impl Codec for [f64] {
    type Owned = Vec<f64>;

    fn encoded_len(&self) -> usize {
        self.len() * 8
    }

    fn encode_into(&self, buf: &mut [u8]) -> Result<usize> {
        let len = self.encoded_len();
        check_capacity(len, buf.len())?;
        for (chunk, value) in buf[..len].chunks_exact_mut(8).zip(self.iter()) {
            chunk.copy_from_slice(&value.to_le_bytes());
        }
        Ok(len)
    }

    fn decode(bytes: &[u8]) -> Result<Vec<f64>> {
        if !bytes.len().is_multiple_of(8) {
            return Err(RFaasError::Codec(format!(
                "f64 payload length {} is not a multiple of 8",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_codec_round_trips_and_bounds() {
        let data = [1u8, 2, 3, 4];
        assert_eq!(data[..].encoded_len(), 4);
        let mut buf = [0u8; 8];
        assert_eq!(data[..].encode_into(&mut buf).unwrap(), 4);
        assert_eq!(<[u8]>::decode(&buf[..4]).unwrap(), data.to_vec());
        let mut short = [0u8; 3];
        assert!(matches!(
            data[..].encode_into(&mut short),
            Err(RFaasError::PayloadTooLarge {
                payload: 4,
                capacity: 3
            })
        ));
    }

    #[test]
    fn f64_codec_round_trips_and_rejects_ragged_lengths() {
        let values = [1.5f64, -2.25, 1e300];
        let mut buf = vec![0u8; values[..].encoded_len()];
        values[..].encode_into(&mut buf).unwrap();
        assert_eq!(<[f64]>::decode(&buf).unwrap(), values.to_vec());
        assert!(matches!(
            <[f64]>::decode(&buf[..buf.len() - 1]),
            Err(RFaasError::Codec(_))
        ));
        let mut short = vec![0u8; 8];
        assert!(values[..].encode_into(&mut short).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_byte_codec_round_trip(data: Vec<u8>) {
            let mut buf = vec![0u8; data.len()];
            proptest::prop_assert_eq!(data[..].encode_into(&mut buf).unwrap(), data.len());
            proptest::prop_assert_eq!(<[u8]>::decode(&buf).unwrap(), data);
        }

        #[test]
        fn prop_f64_codec_round_trip(values: Vec<f64>) {
            let values: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
            let mut buf = vec![0u8; values[..].encoded_len()];
            values[..].encode_into(&mut buf).unwrap();
            proptest::prop_assert_eq!(<[f64]>::decode(&buf).unwrap(), values);
        }

        #[test]
        fn prop_codecs_reject_short_buffers(data: Vec<u8>, cut in 1usize..64) {
            if data.len() >= cut {
                let mut short = vec![0u8; data.len() - cut];
                proptest::prop_assert!(data[..].encode_into(&mut short).is_err());
            }
        }
    }
}
