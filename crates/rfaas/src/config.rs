//! Platform configuration and calibrated rFaaS-specific costs.

use sandbox::SandboxType;
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

/// How an executor worker waits for invocations (Sec. III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PollingMode {
    /// Busy-poll the completion queue: ~300 ns invocation overhead, but the
    /// worker occupies its CPU core and the hot-poll time is billed.
    Hot,
    /// Block on completion events: the CPU is released between invocations at
    /// the price of several microseconds of wake-up latency.
    Warm,
    /// Busy-poll after each execution, but fall back to blocking after the
    /// configured hot-poll timeout elapses without a new request.
    Adaptive,
}

/// Cost constants of the rFaaS data path and control plane, calibrated
/// against Sec. V of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RFaasConfig {
    /// Executor-side cost of parsing the invocation header, locating the
    /// function and setting up its arguments. Together with the result
    /// write-back this is the ~300 ns hot-invocation overhead of Fig. 8.
    pub dispatch_cost: SimDuration,
    /// Client-side cost of filling the 12-byte invocation header and
    /// book-keeping the invocation id.
    pub header_write_cost: SimDuration,
    /// Client cost of establishing the initial connection to the resource
    /// manager (TCP handshake + authentication), part of the cold path.
    pub manager_connect_cost: SimDuration,
    /// Manager-side processing of one allocation request (lease lookup,
    /// placement decision, accounting record).
    pub allocation_processing_cost: SimDuration,
    /// Client-side cost of serialising and submitting the allocation request.
    pub allocation_submit_cost: SimDuration,
    /// *Virtual-time* window an adaptive worker busy-polls after serving a
    /// request before rolling back to a blocking wait (the "configurable
    /// time without a new invocation" of Sec. III-C). Compared against the
    /// next completion's virtual timestamp, so the spin-vs-block billing
    /// decision is deterministic across runs.
    pub hot_poll_fallback: SimDuration,
    /// Wall-clock deadline for establishing a worker connection (and for the
    /// executor's hello that follows). A peer that never answers surfaces a
    /// typed timeout error instead of hanging the client forever.
    pub connect_timeout: std::time::Duration,
    /// *Virtual-time* budget a hot worker spins without a new invocation
    /// before demoting itself to warm (Sec. III-C: hot executors poll "for a
    /// configurable amount of time" and then release the core). The demotion
    /// caps the hot-polling bill at this budget and makes the next invocation
    /// pay the warm wake-up path. `SimDuration::ZERO` disables demotion.
    pub hot_poll_timeout: SimDuration,
    /// Maximum payload bytes a single invocation may carry (the executor
    /// registers an input buffer of this size per worker).
    pub max_payload_bytes: usize,
    /// Number of invocations a worker keeps pre-posted receives for.
    pub recv_queue_depth: usize,
    /// Default sandbox type for executor processes.
    pub default_sandbox: SandboxType,
    /// Default lease lifetime.
    pub default_lease_timeout: SimDuration,
    /// Manager-side processing of one lease-renewal request. Renewal touches
    /// only the lease record (no placement decision), so the paper's
    /// allocation-processing budget is the upper bound; clients pay this cost
    /// on every `extend_lease` round trip.
    pub lease_renewal_cost: SimDuration,
    /// Heartbeat interval between allocators and the resource manager: each
    /// live spot executor emits one heartbeat per interval and the lifecycle
    /// driver records it (Sec. III-B failure detection).
    pub heartbeat_interval: SimDuration,
    /// Silence after which the manager declares an executor failed,
    /// deregisters it and marks its leases terminated. Must be a small
    /// multiple of `heartbeat_interval` to tolerate jittered heartbeats.
    pub heartbeat_timeout: SimDuration,
    /// Idle time after which an executor process is reclaimed.
    pub executor_idle_timeout: SimDuration,
    /// Max parked warm parents per `(SandboxType, package)` key in each
    /// executor's warm pool. Zero disables warm pooling entirely: every
    /// deallocation tears its sandbox down and every allocation cold-spawns,
    /// which is the paper's baseline behaviour.
    pub warm_pool_capacity: usize,
    /// Idle age after which a parked warm parent is evicted from the pool
    /// (and its sandbox finally torn down).
    pub warm_pool_idle_timeout: SimDuration,
    /// Pages fetched per remote-fork fault: one chained one-sided READ batch
    /// from the parent node serves this many consecutive snapshot pages.
    pub fork_prefetch_window: usize,
    /// Size of the pre-registered state-cache region each state-plane client
    /// (session side and executor side) carves hot values out of. Values
    /// larger than this cannot be served zero-copy.
    pub state_cache_bytes: usize,
    /// Billing rate per (GiB × second) of leased memory.
    pub price_allocation: f64,
    /// Billing rate per second of active computation.
    pub price_compute: f64,
    /// Billing rate per second of hot polling.
    pub price_hot_polling: f64,
}

impl RFaasConfig {
    /// Configuration matching the paper's evaluation platform.
    pub fn paper_calibration() -> RFaasConfig {
        RFaasConfig {
            dispatch_cost: SimDuration::from_nanos(200),
            header_write_cost: SimDuration::from_nanos(30),
            manager_connect_cost: SimDuration::from_millis(2),
            allocation_processing_cost: SimDuration::from_micros(700),
            allocation_submit_cost: SimDuration::from_micros(500),
            hot_poll_fallback: SimDuration::from_millis(50),
            connect_timeout: std::time::Duration::from_secs(10),
            hot_poll_timeout: SimDuration::from_millis(100),
            max_payload_bytes: 8 * 1024 * 1024,
            recv_queue_depth: 16,
            default_sandbox: SandboxType::BareMetal,
            default_lease_timeout: SimDuration::from_secs(600),
            lease_renewal_cost: SimDuration::from_micros(700),
            heartbeat_interval: SimDuration::from_secs(5),
            heartbeat_timeout: SimDuration::from_secs(15),
            executor_idle_timeout: SimDuration::from_secs(60),
            // Warm pooling is opt-in: the paper's evaluation always pays the
            // full cold spawn, so the calibrated default keeps the pool off.
            warm_pool_capacity: 0,
            warm_pool_idle_timeout: SimDuration::from_secs(120),
            fork_prefetch_window: 32,
            // Matches the default per-worker payload ceiling: any value that
            // could ride an invocation can also live in the cache.
            state_cache_bytes: 16 * 1024 * 1024,
            // Prices follow the provisioned-function model of Sec. IV-C: hot
            // polling is billed like active compute, memory allocation is an
            // order of magnitude cheaper.
            price_allocation: 0.02,
            price_compute: 0.20,
            price_hot_polling: 0.20,
        }
    }
}

impl Default for RFaasConfig {
    fn default() -> Self {
        RFaasConfig::paper_calibration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_is_sane() {
        let c = RFaasConfig::paper_calibration();
        // The rFaaS processing overhead must stay in the nanosecond range —
        // it is the core claim of the paper.
        assert!(c.dispatch_cost.as_nanos() < 1_000);
        assert!(c.header_write_cost.as_nanos() < 100);
        // Control-plane costs are in the millisecond range.
        assert!(c.manager_connect_cost.as_millis_f64() >= 1.0);
        assert!(c.max_payload_bytes >= 5 * 1024 * 1024);
        assert!(c.recv_queue_depth >= 1);
        assert_eq!(c.default_sandbox, SandboxType::BareMetal);
        // Connect attempts must give up eventually, but not so fast that a
        // loaded test box produces spurious timeouts.
        assert!(c.connect_timeout >= std::time::Duration::from_secs(1));
    }

    #[test]
    fn lease_lifecycle_knobs_are_consistent() {
        let c = RFaasConfig::paper_calibration();
        // Renewal is a control-plane round trip bounded by the allocation
        // processing budget.
        assert!(c.lease_renewal_cost <= c.allocation_processing_cost);
        // The failure detector must tolerate at least two missed heartbeats.
        assert!(c.heartbeat_timeout >= c.heartbeat_interval * 2);
    }

    #[test]
    fn hot_poll_timeout_is_long_enough_for_bursts() {
        let c = RFaasConfig::paper_calibration();
        // The demotion budget must dwarf a single invocation (microseconds)
        // so back-to-back bursts never demote, while staying far below the
        // lease lifetime so an abandoned hot worker stops burning its core.
        assert!(c.hot_poll_timeout >= SimDuration::from_millis(1));
        assert!(c.hot_poll_timeout < c.default_lease_timeout);
    }

    #[test]
    fn hot_polling_priced_like_compute() {
        let c = RFaasConfig::default();
        assert_eq!(c.price_hot_polling, c.price_compute);
        assert!(c.price_allocation < c.price_compute);
    }

    #[test]
    fn polling_modes_are_distinct() {
        assert_ne!(PollingMode::Hot, PollingMode::Warm);
        assert_ne!(PollingMode::Hot, PollingMode::Adaptive);
    }
}
