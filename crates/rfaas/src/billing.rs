//! Billing: the pay-as-you-go accounting of Sec. IV-C.
//!
//! The total cost of a lease is `C = Ca·ta + Cc·tc + Ch·th`, where `ta` is the
//! allocation time weighted by the leased memory, `tc` the active computation
//! time and `th` the hot-polling time. The paper implements the accumulation
//! with RDMA fetch-and-add operations into a global database owned by the
//! resource manager, so that lightweight allocators never need an RPC to
//! report usage — and this module does exactly that over the software fabric:
//! every lease owns a 3-word slot in the manager's registered billing region,
//! and executors flush usage with remote atomics.

use rdma_fabric::{
    AccessFlags, Endpoint, MemoryRegion, QueuePair, RemoteMemoryHandle, SendRequest, Sge,
};
use serde::{Deserialize, Serialize};
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::SimDuration;

use crate::config::RFaasConfig;
use crate::error::Result;

/// Number of 8-byte words per billing slot: allocation, compute, hot-poll.
const WORDS_PER_SLOT: usize = 3;
/// Maximum number of leases the billing database can account simultaneously.
pub const BILLING_SLOTS: usize = 4096;

/// Usage accumulated by one executor on behalf of one lease, in microseconds
/// of virtual time (allocation time is additionally weighted by GiB).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageRecord {
    /// Allocation time × memory, in GiB·µs.
    pub allocation_gib_us: u64,
    /// Active computation time, in µs.
    pub compute_us: u64,
    /// Hot-polling time, in µs.
    pub hot_poll_us: u64,
}

impl UsageRecord {
    /// Merge another record into this one.
    pub fn accumulate(&mut self, other: &UsageRecord) {
        self.allocation_gib_us += other.allocation_gib_us;
        self.compute_us += other.compute_us;
        self.hot_poll_us += other.hot_poll_us;
    }

    /// Whether the record is empty (nothing to flush).
    pub fn is_empty(&self) -> bool {
        *self == UsageRecord::default()
    }

    /// Monetary cost of this usage under the configured rates.
    pub fn cost(&self, config: &RFaasConfig) -> f64 {
        let seconds = 1.0e-6;
        config.price_allocation * (self.allocation_gib_us as f64 * seconds)
            + config.price_compute * (self.compute_us as f64 * seconds)
            + config.price_hot_polling * (self.hot_poll_us as f64 * seconds)
    }
}

/// The manager-side billing database: a registered memory region of
/// per-lease counters updated by remote atomics, so reads never race with
/// executor updates.
#[derive(Debug)]
pub struct BillingDatabase {
    region: MemoryRegion,
    next_slot: OrderedMutex<usize>,
}

impl BillingDatabase {
    /// Create the database inside the manager's protection domain.
    pub fn new(manager_endpoint: &Endpoint) -> BillingDatabase {
        let region = manager_endpoint
            .pd
            .register(BILLING_SLOTS * WORDS_PER_SLOT * 8, AccessFlags::REMOTE_ALL);
        BillingDatabase {
            region,
            next_slot: OrderedMutex::new(ranks::BILLING_SLOTS, 0),
        }
    }

    /// Reserve a slot for a new lease. Slots are recycled only when the
    /// database wraps, which is fine for the simulated horizons.
    pub fn reserve_slot(&self) -> usize {
        let mut next = self.next_slot.lock();
        let slot = *next % BILLING_SLOTS;
        *next += 1;
        slot
    }

    /// Remote handle an executor needs to update `slot` with atomics.
    pub fn slot_handle(&self, slot: usize) -> RemoteMemoryHandle {
        self.region
            .remote_handle_range(slot * WORDS_PER_SLOT * 8, WORDS_PER_SLOT * 8)
            .expect("billing slot within region")
    }

    /// Read the accumulated usage of a slot.
    pub fn read_slot(&self, slot: usize) -> UsageRecord {
        let base = slot * WORDS_PER_SLOT * 8;
        UsageRecord {
            allocation_gib_us: self.region.read_u64(base).expect("slot in range"),
            compute_us: self.region.read_u64(base + 8).expect("slot in range"),
            hot_poll_us: self.region.read_u64(base + 16).expect("slot in range"),
        }
    }

    /// Total cost accumulated across all slots.
    pub fn total_cost(&self, config: &RFaasConfig) -> f64 {
        (0..BILLING_SLOTS)
            .map(|slot| self.read_slot(slot).cost(config))
            .sum()
    }
}

/// Executor-side billing client: accumulates usage locally and flushes it to
/// the manager's database with RDMA fetch-and-add.
#[derive(Debug)]
pub struct BillingClient {
    qp: QueuePair,
    slot: RemoteMemoryHandle,
    scratch: MemoryRegion,
    pending: OrderedMutex<UsageRecord>,
    flushes: OrderedMutex<u64>,
}

impl BillingClient {
    /// Create a client flushing into `slot` over the (already connected)
    /// queue pair `qp`.
    pub fn new(qp: QueuePair, slot: RemoteMemoryHandle) -> BillingClient {
        let scratch = qp.pd().register(8, AccessFlags::LOCAL_ONLY);
        BillingClient {
            qp,
            slot,
            scratch,
            pending: OrderedMutex::new(ranks::BILLING_PENDING, UsageRecord::default()),
            flushes: OrderedMutex::new(ranks::BILLING_FLUSHES, 0),
        }
    }

    /// Record usage locally (cheap, no network).
    pub fn record(&self, usage: UsageRecord) {
        self.pending.lock().accumulate(&usage);
    }

    /// Record compute time.
    pub fn record_compute(&self, time: SimDuration) {
        self.record(UsageRecord {
            compute_us: time.as_micros_f64().round() as u64,
            ..UsageRecord::default()
        });
    }

    /// Record hot-polling time.
    pub fn record_hot_poll(&self, time: SimDuration) {
        self.record(UsageRecord {
            hot_poll_us: time.as_micros_f64().round() as u64,
            ..UsageRecord::default()
        });
    }

    /// Record allocation time for `memory_mib` of leased memory.
    pub fn record_allocation(&self, time: SimDuration, memory_mib: u64) {
        let gib = memory_mib as f64 / 1024.0;
        self.record(UsageRecord {
            allocation_gib_us: (time.as_micros_f64() * gib).round() as u64,
            ..UsageRecord::default()
        });
    }

    /// Flush pending usage to the manager's database with up to three remote
    /// fetch-and-add operations chained behind a single doorbell (the
    /// executor pays one MMIO per flush, not one per counter). A no-op when
    /// nothing is pending.
    pub fn flush(&self) -> Result<()> {
        let pending = {
            let mut guard = self.pending.lock();
            let snapshot = *guard;
            *guard = UsageRecord::default();
            snapshot
        };
        if pending.is_empty() {
            return Ok(());
        }
        let words = [
            pending.allocation_gib_us,
            pending.compute_us,
            pending.hot_poll_us,
        ];
        let batch: Vec<(u64, SendRequest, bool)> = words
            .iter()
            .enumerate()
            .filter(|(_, add)| **add != 0)
            .map(|(i, add)| {
                (
                    i as u64,
                    SendRequest::AtomicFetchAdd {
                        local: Sge::whole(&self.scratch),
                        remote: self.slot.slice(i * 8, 8),
                        add: *add,
                    },
                    true,
                )
            })
            .collect();
        let posted = self.qp.post_send_batch(batch)?;
        // Consume the completions so the send queue does not fill up.
        self.qp.send_cq().poll(posted + 1);
        *self.flushes.lock() += 1;
        Ok(())
    }

    /// Number of flushes performed (used by tests and accounting reports).
    pub fn flush_count(&self) -> u64 {
        *self.flushes.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_fabric::Fabric;

    fn setup() -> (BillingDatabase, BillingClient) {
        let fabric = Fabric::with_defaults();
        let manager_node = fabric.add_node("manager");
        let executor_node = fabric.add_node("executor");
        let manager_ep = Endpoint::new(&fabric, &manager_node);
        let executor_ep = Endpoint::new(&fabric, &executor_node);
        let db = BillingDatabase::new(&manager_ep);
        let manager_qp = QueuePair::new(&manager_ep);
        let executor_qp = QueuePair::new(&executor_ep);
        QueuePair::connect_pair(&manager_qp, &executor_qp).unwrap();
        let slot = db.reserve_slot();
        let client = BillingClient::new(executor_qp, db.slot_handle(slot));
        (db, client)
    }

    #[test]
    fn usage_record_arithmetic_and_cost() {
        let mut a = UsageRecord {
            allocation_gib_us: 10,
            compute_us: 20,
            hot_poll_us: 30,
        };
        let b = UsageRecord {
            allocation_gib_us: 1,
            compute_us: 2,
            hot_poll_us: 3,
        };
        a.accumulate(&b);
        assert_eq!(
            a,
            UsageRecord {
                allocation_gib_us: 11,
                compute_us: 22,
                hot_poll_us: 33
            }
        );
        assert!(!a.is_empty());
        assert!(UsageRecord::default().is_empty());
        let config = RFaasConfig::default();
        let cost = a.cost(&config);
        assert!(cost > 0.0);
        // Compute and hot-poll seconds are priced equally.
        let compute_only = UsageRecord {
            compute_us: 1_000_000,
            ..Default::default()
        };
        let hot_only = UsageRecord {
            hot_poll_us: 1_000_000,
            ..Default::default()
        };
        assert!((compute_only.cost(&config) - hot_only.cost(&config)).abs() < 1e-12);
    }

    #[test]
    fn slots_are_distinct_and_in_range() {
        let fabric = Fabric::with_defaults();
        let ep = Endpoint::new(&fabric, &fabric.add_node("m"));
        let db = BillingDatabase::new(&ep);
        let a = db.reserve_slot();
        let b = db.reserve_slot();
        assert_ne!(a, b);
        assert!(a < BILLING_SLOTS && b < BILLING_SLOTS);
        let h = db.slot_handle(b);
        assert_eq!(h.len, 24);
        assert_eq!(h.offset, b * 24);
    }

    #[test]
    fn flush_accumulates_into_manager_database() {
        let (db, client) = setup();
        client.record_compute(SimDuration::from_millis(3));
        client.record_hot_poll(SimDuration::from_micros(500));
        client.record_allocation(SimDuration::from_secs(1), 2048);
        client.flush().unwrap();
        let usage = db.read_slot(0);
        assert_eq!(usage.compute_us, 3_000);
        assert_eq!(usage.hot_poll_us, 500);
        assert_eq!(usage.allocation_gib_us, 2_000_000);
        // A second flush adds on top (fetch-and-add semantics).
        client.record_compute(SimDuration::from_millis(1));
        client.flush().unwrap();
        assert_eq!(db.read_slot(0).compute_us, 4_000);
        assert_eq!(client.flush_count(), 2);
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let (db, client) = setup();
        client.flush().unwrap();
        assert!(db.read_slot(0).is_empty());
        assert_eq!(client.flush_count(), 0);
    }

    #[test]
    fn total_cost_reflects_rates() {
        let (db, client) = setup();
        client.record_compute(SimDuration::from_secs(10));
        client.flush().unwrap();
        let config = RFaasConfig::default();
        let expected = config.price_compute * 10.0;
        assert!((db.total_cost(&config) - expected).abs() < 1e-6);
    }
}
