//! Error types of the rFaaS platform.

use std::fmt;

use rdma_fabric::FabricError;
use sandbox::FunctionError;
use state_plane::StateError;

/// Errors surfaced by the rFaaS client library, resource manager and
/// executors.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so the platform can grow new failure modes without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RFaasError {
    /// The resource manager has no executor able to satisfy the request.
    InsufficientResources {
        /// Cores requested.
        requested_cores: u32,
        /// Memory requested (MiB).
        requested_memory_mib: u64,
    },
    /// The referenced lease does not exist or has already been released.
    UnknownLease(u64),
    /// The lease expired before the operation completed.
    LeaseExpired(u64),
    /// The requested code package is not deployed in the registry.
    UnknownPackage(String),
    /// The requested function does not exist in the allocated package.
    UnknownFunction(String),
    /// No executor workers are allocated; call `allocate` first.
    NotAllocated,
    /// The invocation payload exceeds the executor's registered input buffer.
    PayloadTooLarge {
        /// Payload size including the header.
        payload: usize,
        /// Executor input-buffer capacity.
        capacity: usize,
    },
    /// The executor rejected the invocation (resources busy) and no other
    /// executor could take it.
    AllWorkersBusy,
    /// The executor reported a function-level failure.
    Function(FunctionError),
    /// The underlying RDMA fabric failed.
    Fabric(FabricError),
    /// The executor process disappeared (connection lost / node reclaimed).
    ExecutorLost(String),
    /// A typed payload failed to encode or decode (malformed wire bytes for
    /// the requested [`crate::Codec`]).
    Codec(String),
    /// The state plane rejected an operation (unknown key, exhausted arena,
    /// value too large for the client cache, ...).
    StatePlane(StateError),
    /// An internal invariant was violated (bug guard).
    Internal(String),
}

impl fmt::Display for RFaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RFaasError::InsufficientResources { requested_cores, requested_memory_mib } => write!(
                f,
                "no spot executor can provide {requested_cores} cores and {requested_memory_mib} MiB"
            ),
            RFaasError::UnknownLease(id) => write!(f, "unknown lease {id}"),
            RFaasError::LeaseExpired(id) => write!(f, "lease {id} has expired"),
            RFaasError::UnknownPackage(name) => write!(f, "code package '{name}' is not deployed"),
            RFaasError::UnknownFunction(name) => write!(f, "function '{name}' not found in package"),
            RFaasError::NotAllocated => write!(f, "no executors allocated; call allocate() first"),
            RFaasError::PayloadTooLarge { payload, capacity } => write!(
                f,
                "payload of {payload} bytes exceeds the executor input buffer of {capacity} bytes"
            ),
            RFaasError::AllWorkersBusy => write!(f, "all executor workers rejected the invocation"),
            RFaasError::Function(e) => write!(f, "function error: {e}"),
            RFaasError::Fabric(e) => write!(f, "fabric error: {e}"),
            RFaasError::ExecutorLost(name) => write!(f, "executor '{name}' is no longer reachable"),
            RFaasError::Codec(msg) => write!(f, "codec error: {msg}"),
            RFaasError::StatePlane(e) => write!(f, "state plane error: {e}"),
            RFaasError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for RFaasError {}

impl From<FabricError> for RFaasError {
    fn from(e: FabricError) -> Self {
        RFaasError::Fabric(e)
    }
}

impl From<FunctionError> for RFaasError {
    fn from(e: FunctionError) -> Self {
        RFaasError::Function(e)
    }
}

impl From<StateError> for RFaasError {
    fn from(e: StateError) -> Self {
        RFaasError::StatePlane(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RFaasError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_sources() {
        let e: RFaasError = FabricError::NotConnected.into();
        assert!(matches!(e, RFaasError::Fabric(FabricError::NotConnected)));
        let e: RFaasError = FunctionError::InvalidInput("bad".into()).into();
        assert!(matches!(e, RFaasError::Function(_)));
        let e: RFaasError = StateError::UnknownKey("model".into()).into();
        assert!(matches!(e, RFaasError::StatePlane(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = RFaasError::PayloadTooLarge {
            payload: 100,
            capacity: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        assert!(RFaasError::UnknownPackage("img".into())
            .to_string()
            .contains("img"));
        assert!(RFaasError::NotAllocated.to_string().contains("allocate"));
    }
}
