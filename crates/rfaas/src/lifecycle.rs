//! The manager-side lease-lifecycle driver.
//!
//! Granting a lease is only half of the contract the paper describes
//! (Sec. III-B/D): the platform must also *enforce* it — reclaim resources
//! when leases expire, detect executors that stopped heartbeating, and mark
//! their leases terminated so clients re-allocate. [`LifecycleDriver`] is the
//! background step of the resource manager that does all three. It is driven
//! by virtual time: callers (simulations, figure binaries, tests) invoke
//! [`LifecycleDriver::step`] at whatever cadence their scenario advances the
//! clock, which keeps the control loop deterministic.
//!
//! One step performs, in order:
//!
//! 1. **Heartbeat collection** — every live registered executor emits a
//!    heartbeat once per `heartbeat_interval`; the driver records it with the
//!    manager.
//! 2. **Failure detection** — executors silent for longer than
//!    `heartbeat_timeout` are deregistered and every lease placed on them is
//!    marked terminated.
//! 3. **Lease expiry** — expired leases are released, returning their
//!    reservations to the manager's placement pool.
//! 4. **Executor-side reaping** — each surviving allocator deallocates the
//!    processes whose lease deadline passed, returning node cores/memory.

use std::sync::Arc;

use sim_core::sync::{ranks, OrderedMutex};
use sim_core::SimTime;

use crate::manager::ResourceManager;

/// Counters describing lifecycle activity. Returned per step and accumulated
/// over the driver's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Heartbeats collected from live executors.
    pub heartbeats: u64,
    /// Executors deregistered because their heartbeats stopped.
    pub executors_failed: u64,
    /// Leases marked terminated because their executor failed.
    pub leases_terminated: u64,
    /// Leases released because they expired.
    pub leases_expired: u64,
    /// Executor processes reaped after their lease deadline passed.
    pub processes_reaped: u64,
}

impl LifecycleStats {
    fn absorb(&mut self, other: &LifecycleStats) {
        self.heartbeats += other.heartbeats;
        self.executors_failed += other.executors_failed;
        self.leases_terminated += other.leases_terminated;
        self.leases_expired += other.leases_expired;
        self.processes_reaped += other.processes_reaped;
    }
}

/// The manager's lease-lifecycle background step (see module docs).
pub struct LifecycleDriver {
    manager: Arc<ResourceManager>,
    total: OrderedMutex<LifecycleStats>,
}

impl std::fmt::Debug for LifecycleDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifecycleDriver")
            .field("total", &*self.total.lock())
            .finish()
    }
}

impl LifecycleDriver {
    /// A driver for `manager`, using the heartbeat interval and timeout of
    /// the manager's configuration.
    pub fn new(manager: &Arc<ResourceManager>) -> LifecycleDriver {
        LifecycleDriver {
            manager: Arc::clone(manager),
            total: OrderedMutex::new(ranks::LIFECYCLE_STATS, LifecycleStats::default()),
        }
    }

    /// Cumulative counters since the driver was created.
    pub fn total(&self) -> LifecycleStats {
        *self.total.lock()
    }

    /// Run one lifecycle step at virtual time `now`; returns what this step
    /// did. Steps are idempotent at a fixed `now`.
    pub fn step(&self, now: SimTime) -> LifecycleStats {
        let config = self.manager.config().clone();
        let mut delta = LifecycleStats::default();

        // 1. Collect the heartbeats live executors emit (Sec. III-B).
        for executor in self.manager.registered_executors() {
            if let Some(at) = executor.emit_heartbeat_if_due(now, config.heartbeat_interval) {
                if self.manager.heartbeat(executor.name(), at) {
                    delta.heartbeats += 1;
                }
            }
        }

        // 2. Deregister executors whose heartbeats stopped and mark their
        // leases terminated so clients stop waiting for a node that is gone.
        for name in self.manager.failed_executors(now, config.heartbeat_timeout) {
            if self.manager.deregister_executor(&name) {
                delta.executors_failed += 1;
                delta.leases_terminated += self.manager.terminate_leases_on(&name).len() as u64;
            }
        }

        // 3. Release expired leases: their reservations re-enter placement.
        for lease_id in self.manager.expired_leases(now) {
            if self.manager.release_lease(lease_id).is_ok() {
                delta.leases_expired += 1;
            }
        }

        // 4. Executor-side enforcement: allocators reap the processes whose
        // deadline passed, freeing the node's cores and memory.
        for executor in self.manager.registered_executors() {
            delta.processes_reaped += executor.allocator().reap_expired(now) as u64;
        }

        self.total.lock().absorb(&delta);
        delta
    }
}

/// Lifecycle enforcement for a sharded [`ManagerGroup`]: one
/// [`LifecycleDriver`] per shard, stepped together. Each shard's driver only
/// sees its own executors and leases, so a step over the group costs the same
/// total work as one big manager would — but the shards could run their steps
/// on different cores, which is exactly the scale-out claim the
/// fig15 experiment measures.
///
/// [`ManagerGroup`]: crate::sharding::ManagerGroup
pub struct GroupLifecycleDriver {
    drivers: Vec<LifecycleDriver>,
}

impl std::fmt::Debug for GroupLifecycleDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupLifecycleDriver")
            .field("shards", &self.drivers.len())
            .field("total", &self.total())
            .finish()
    }
}

impl GroupLifecycleDriver {
    /// One driver per shard of `group`.
    pub fn new(group: &crate::sharding::ManagerGroup) -> GroupLifecycleDriver {
        GroupLifecycleDriver {
            drivers: group.managers().iter().map(LifecycleDriver::new).collect(),
        }
    }

    /// Step every shard at `now`; returns the plane-wide delta.
    pub fn step(&self, now: SimTime) -> LifecycleStats {
        let mut delta = LifecycleStats::default();
        for driver in &self.drivers {
            delta.absorb(&driver.step(now));
        }
        delta
    }

    /// Cumulative counters across all shards.
    pub fn total(&self) -> LifecycleStats {
        let mut total = LifecycleStats::default();
        for driver in &self.drivers {
            total.absorb(&driver.total());
        }
        total
    }

    /// Cumulative counters per shard, in shard order.
    pub fn shard_totals(&self) -> Vec<LifecycleStats> {
        self.drivers.iter().map(|d| d.total()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Invoker;
    use crate::config::{PollingMode, RFaasConfig};
    use crate::executor::SpotExecutor;
    use crate::protocol::LeaseRequest;
    use cluster_sim::NodeResources;
    use rdma_fabric::Fabric;
    use sandbox::{echo_function, CodePackage, FunctionRegistry};
    use sim_core::SimDuration;

    fn platform(executors: usize) -> (Arc<Fabric>, Arc<ResourceManager>, Vec<Arc<SpotExecutor>>) {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let execs: Vec<Arc<SpotExecutor>> = (0..executors)
            .map(|i| {
                let exec = SpotExecutor::new(
                    &fabric,
                    &format!("exec-{i}"),
                    NodeResources {
                        cores: 8,
                        memory_mib: 32 * 1024,
                    },
                    registry.clone(),
                    RFaasConfig::default(),
                );
                manager.register_executor(&exec);
                exec
            })
            .collect();
        (fabric, manager, execs)
    }

    #[test]
    fn step_collects_heartbeats_per_interval() {
        let (_fabric, manager, _execs) = platform(2);
        let driver = LifecycleDriver::new(&manager);
        let t = SimTime::from_secs(1);
        assert_eq!(driver.step(t).heartbeats, 2);
        // Same instant again: nothing new is due.
        assert_eq!(driver.step(t).heartbeats, 0);
        let interval = manager.config().heartbeat_interval;
        assert_eq!(driver.step(t + interval).heartbeats, 2);
        assert_eq!(driver.total().heartbeats, 4);
    }

    #[test]
    fn dead_executor_is_deregistered_and_its_leases_terminated() {
        let (_fabric, manager, execs) = platform(2);
        let driver = LifecycleDriver::new(&manager);
        let clock = sim_core::VirtualClock::new();
        let (lease, _) = manager
            .request_lease(&LeaseRequest::single_worker("pkg"), &clock)
            .unwrap();
        // Keep both executors alive for a while, then kill the lease's host.
        driver.step(SimTime::from_secs(1));
        let victim = execs
            .iter()
            .find(|e| e.name() == lease.executor_node)
            .unwrap();
        victim.fail();
        let later = SimTime::from_secs(1) + manager.config().heartbeat_timeout * 2;
        let delta = driver.step(later);
        assert_eq!(delta.executors_failed, 1);
        assert_eq!(delta.leases_terminated, 1);
        assert_eq!(manager.executor_count(), 1);
        assert!(manager.is_lease_terminated(lease.id));
        assert!(manager.lease(lease.id).is_none());
        // The survivor keeps heartbeating and is never deregistered.
        let much_later = later + manager.config().heartbeat_interval * 10;
        assert_eq!(driver.step(much_later).executors_failed, 0);
        assert_eq!(manager.executor_count(), 1);
    }

    #[test]
    fn expired_leases_are_released_and_processes_reaped() {
        let (fabric, manager, execs) = platform(1);
        let driver = LifecycleDriver::new(&manager);
        let mut invoker = Invoker::new(&fabric, "client", &manager, RFaasConfig::default());
        let mut request = LeaseRequest::single_worker("pkg");
        request.timeout = SimDuration::from_secs(10);
        invoker.allocate(request, PollingMode::Hot).unwrap();
        assert_eq!(manager.lease_count(), 1);
        assert_eq!(execs[0].allocator().process_count(), 1);
        let cores_leased = manager.available_resources().cores;

        // Before the deadline nothing is reclaimed (the step still collects
        // the executor's first heartbeat).
        let early = manager.clock().now();
        let delta = driver.step(early);
        assert_eq!(delta.leases_expired, 0);
        assert_eq!(delta.processes_reaped, 0);

        let late = early + SimDuration::from_secs(60);
        let delta = driver.step(late);
        assert_eq!(delta.leases_expired, 1);
        assert_eq!(delta.processes_reaped, 1);
        assert_eq!(manager.lease_count(), 0);
        assert_eq!(execs[0].allocator().process_count(), 0);
        assert!(manager.available_resources().cores > cores_leased);
        // The expiry was enforcement, not an executor failure.
        assert_eq!(driver.total().executors_failed, 0);
    }

    #[test]
    fn group_driver_steps_every_shard() {
        use crate::sharding::ManagerGroup;

        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        let group = ManagerGroup::new(&fabric, RFaasConfig::default(), 3);
        for i in 0..9 {
            let exec = SpotExecutor::new(
                &fabric,
                &format!("exec-{i:02}"),
                NodeResources {
                    cores: 8,
                    memory_mib: 32 * 1024,
                },
                registry.clone(),
                RFaasConfig::default(),
            );
            group.register_executor(&exec);
        }
        let driver = GroupLifecycleDriver::new(&group);

        // A short lease on some shard, never renewed.
        let clock = sim_core::VirtualClock::new();
        let mut request = LeaseRequest::single_worker("pkg");
        request.timeout = SimDuration::from_secs(5);
        let (_, lease, _) = group.request_lease("tenant-x", &request, &clock).unwrap();
        assert_eq!(group.lease_count(), 1);

        // Every live executor heartbeats, whichever shard holds it.
        let delta = driver.step(SimTime::from_secs(1));
        assert_eq!(delta.heartbeats, 9);

        // The expiry is enforced by the owning shard's driver.
        let delta = driver.step(SimTime::from_secs(60));
        assert_eq!(delta.leases_expired, 1);
        assert_eq!(group.lease_count(), 0);
        assert!(group.lease(lease.id).is_none());
        // Per-shard totals sum to the plane-wide total.
        let totals = driver.shard_totals();
        assert_eq!(totals.len(), 3);
        assert_eq!(
            totals.iter().map(|t| t.heartbeats).sum::<u64>(),
            driver.total().heartbeats
        );
    }
}
