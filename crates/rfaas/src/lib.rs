//! rFaaS: an RDMA-accelerated Function-as-a-Service platform with allocation
//! leases and microsecond invocations.
//!
//! This crate is the Rust reproduction of the system described in
//! *"rFaaS: Enabling High Performance Serverless with RDMA and Leases"*
//! (Copik et al., IPDPS 2023). It implements the three architectural ideas of
//! the paper on top of the software RDMA fabric of [`rdma_fabric`]:
//!
//! 1. **Allocation leases** ([`manager`]) — clients contact the resource
//!    manager once to lease spot executors; warm and hot invocations bypass
//!    the control plane entirely.
//! 2. **Direct, decentralised invocations** ([`executor`], [`client`]) — the
//!    client holds an RDMA connection to every executor worker thread and
//!    invokes functions by writing header + payload straight into the
//!    worker's registered memory; results are written straight back.
//! 3. **Hot, warm and cold invocation types** — busy-polling workers serve
//!    hot invocations with ~300 ns of platform overhead, blocking workers
//!    serve warm invocations a few microseconds slower but release the CPU,
//!    and cold invocations pay sandbox initialisation (Fig. 5).
//! 4. **A fork tier between warm and cold** — deallocated sandboxes park in
//!    per-executor warm pools ([`sandbox::WarmPool`]) and later allocations
//!    of the same package either resume a parked parent or *remote-fork*
//!    from its snapshot, lazily faulting pages in over one-sided RDMA reads
//!    ([`executor::ForkFaultState`]); see [`executor::AllocationPolicy`].
//!
//! ```
//! use std::sync::Arc;
//! use rdma_fabric::Fabric;
//! use cluster_sim::NodeResources;
//! use sandbox::{CodePackage, FunctionRegistry, echo_function};
//! use rfaas::{ResourceManager, RFaasConfig, Session, SpotExecutor};
//!
//! // Deploy a code package and offer one spot executor.
//! let fabric = Fabric::with_defaults();
//! let registry = FunctionRegistry::new();
//! registry.deploy(CodePackage::minimal("demo").with_function(echo_function()));
//! let manager = ResourceManager::new(&fabric, RFaasConfig::default());
//! let executor = SpotExecutor::new(
//!     &fabric, "node-1",
//!     NodeResources { cores: 4, memory_mib: 8192 },
//!     registry, RFaasConfig::default(),
//! );
//! manager.register_executor(&executor);
//!
//! // Lease one worker and invoke the echo function over RDMA through a
//! // typed handle: payload length and buffer sizing come from the codec.
//! let session = Session::builder(&fabric, "client", &manager, "demo")
//!     .connect()
//!     .unwrap();
//! let echo = session.function::<[u8], [u8]>("echo").unwrap();
//! let (reply, rtt) = echo.invoke_timed(b"hello rfaas").unwrap();
//! assert_eq!(reply, b"hello rfaas");
//! assert!(rtt.as_micros_f64() < 50.0);
//! session.close().unwrap();
//! ```

pub mod billing;
pub mod client;
pub mod codec;
pub mod config;
pub mod error;
pub mod executor;
pub mod lifecycle;
pub mod manager;
pub mod protocol;
pub mod reactor;
pub mod session;
pub mod sharding;

pub use billing::{BillingClient, BillingDatabase, UsageRecord, BILLING_SLOTS};
pub use client::{
    BatchStats, Buffer, BufferAllocator, ColdStartBreakdown, ConnectionPlaneStats,
    InvocationFuture, Invoker,
};
pub use codec::{check_capacity, Codec, F64View};
pub use config::{PollingMode, RFaasConfig};
pub use error::{RFaasError, Result};
pub use executor::{
    AllocationBreakdown, AllocationPolicy, AllocationResult, CoreSlot, ExecutorProcess,
    ExecutorStateBinding, ForkFaultState, LeaseDeadline, LightweightAllocator, SpotExecutor,
    WorkerEndpointInfo, WorkerStats,
};
pub use lifecycle::{GroupLifecycleDriver, LifecycleDriver, LifecycleStats};
pub use manager::ResourceManager;
pub use protocol::{
    ControlFrame, ImmValue, InvocationHeader, Lease, LeaseRequest, ResultStatus,
    INVOCATION_HEADER_BYTES,
};
pub use reactor::{Reactor, ReactorStats};
pub use session::{
    AllocationBuilder, CompletionSet, FunctionHandle, Session, SessionState, SessionStats,
    TypedFuture,
};
pub use sharding::{stable_hash, HashRing, ManagerGroup};
// The state plane is part of the client surface (builder knob, `with_state`
// declarations, `Session::state`), so its vocabulary types are re-exported.
pub use state_plane::{
    StateClientStats, StateError, StateKey, StateMode, StatePlane, StatePlaneStats, StateSpec,
};
