//! Spot executors: lightweight allocator, executor processes and workers.
//!
//! A *spot executor* offers the idle cores and memory of one node to rFaaS
//! (Sec. III-A). Its *lightweight allocator* accepts allocation requests tied
//! to a lease, spawns an isolated *executor process* (sandbox) with one
//! worker per requested core, and accounts resource consumption. Each
//! *worker* owns its RDMA queue pair and completion queue, serves one client
//! connection, and switches between hot (busy-polling) and warm (blocking)
//! invocation handling.
//!
//! Workers are not threads: one *dispatcher* thread per executor process
//! registers every worker's receive CQ in a [`rdma_fabric::CqSet`] and runs a
//! completion-driven event loop over all of them — accepting client
//! connections, draining the multiplexed CQs in deterministic registration
//! order, and billing each pickup on the owning worker's virtual clock
//! according to that worker's polling mode (busy-poll pickup for hot workers,
//! notification serialisation + wake-up for warm ones). One thread therefore
//! sustains any number of workers without a poll loop per worker, while the
//! hot/warm cost split and the retrospective hot→warm demotion accounting
//! stay exactly as a thread-per-worker executor would charge them.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cluster_sim::NodeResources;
use rdma_fabric::{
    AccessFlags, CqSet, DeviceFunction, Endpoint, Fabric, FabricNode, FaultBatch, Listener,
    MemoryRegion, NicProfile, PrefetchPlan, QueuePair, ReceiveRing, SendRequest, Sge,
    SharedReceiveQueue, SrqStats, WorkCompletion,
};
#[cfg(test)]
use sandbox::SandboxType;
use sandbox::{
    CodePackage, FaultTracker, FunctionError, FunctionRegistry, ImageRegistry, Sandbox,
    SandboxSnapshot, SpawnBreakdown, StateAccess, WarmPool, SNAPSHOT_PAGE_BYTES,
};
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::{SimDuration, SimTime, VirtualClock};
use state_plane::{StateClient, StateClientStats, StateError, StateMode, StateSpec};

use crate::billing::BillingClient;
use crate::config::{PollingMode, RFaasConfig};
use crate::error::{RFaasError, Result};
use crate::protocol::{ImmValue, InvocationHeader, Lease, ResultStatus, INVOCATION_HEADER_BYTES};

static NEXT_PROCESS_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_WORKER_ID: AtomicU64 = AtomicU64::new(1);

/// How the allocator provisions the sandbox of a new executor process — the
/// client-visible knob spanning the cold-start spectrum's new fork tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// Always pay the full sandbox spawn (the paper's baseline).
    #[default]
    Cold,
    /// Fork from a parked warm parent's snapshot when one exists: µs-scale
    /// setup, pages fault in over one-sided RDMA reads during the first
    /// invocations. Falls back to a cold spawn on a pool miss.
    Fork,
    /// Resume a parked warm parent outright (the parent leaves the pool):
    /// no faults, but one parent serves one allocation. Falls back to a
    /// cold spawn on a pool miss.
    WarmPool,
}

/// Shared fault state of one forked executor process: the deterministic
/// prefetch schedule over the parent snapshot's page map, drained one window
/// per served invocation until the child is fully resident.
#[derive(Debug)]
pub struct ForkFaultState {
    plan: PrefetchPlan,
    tracker: OrderedMutex<FaultTracker>,
    served: OrderedMutex<Vec<FaultBatch>>,
}

impl ForkFaultState {
    fn new(snapshot: &SandboxSnapshot, profile: &NicProfile, window: usize) -> ForkFaultState {
        let plan = PrefetchPlan::new(profile, snapshot.total_pages(), window, SNAPSHOT_PAGE_BYTES);
        ForkFaultState {
            tracker: OrderedMutex::new(
                ranks::EXECUTOR_FORK_TRACKER,
                FaultTracker::for_snapshot(snapshot),
            ),
            served: OrderedMutex::new(ranks::EXECUTOR_FORK_SERVED, Vec::new()),
            plan,
        }
    }

    /// Serve the next prefetch window, if any pages are still cold: returns
    /// the batch (pages + link cost) the invocation must absorb.
    fn serve_next(&self) -> Option<FaultBatch> {
        let (start_page, pages) = self.tracker.lock().fault_next_window(self.plan.window())?;
        let batch = FaultBatch {
            start_page,
            pages,
            cost: self.plan.batch_cost(pages),
        };
        self.served.lock().push(batch);
        Some(batch)
    }

    /// Pages in the parent snapshot's page map.
    pub fn total_pages(&self) -> usize {
        self.plan.total_pages()
    }

    /// Pages faulted in so far.
    pub fn pages_faulted(&self) -> usize {
        self.tracker.lock().faulted_count()
    }

    /// Whether the child is fully resident (steady state: no more fault
    /// latency on invocations).
    pub fn is_complete(&self) -> bool {
        self.tracker.lock().is_complete()
    }

    /// The fault batches served so far, in service order — the child's
    /// fault schedule.
    pub fn fault_schedule(&self) -> Vec<FaultBatch> {
        self.served.lock().clone()
    }

    /// Total link time spent serving faults so far.
    pub fn fault_time(&self) -> SimDuration {
        self.served.lock().iter().map(|b| b.cost).sum()
    }
}

/// Executor-side attachment to a state plane: one caching [`StateClient`]
/// per executor process, plus the per-function key declarations registered
/// at bind time. The dispatcher materialises a function's declared keys into
/// worker-local buffers before dispatch and writes dirty read-write keys
/// back after completion, so the function body itself never takes a
/// control-plane round trip.
pub struct ExecutorStateBinding {
    client: StateClient,
    specs: HashMap<String, StateSpec>,
}

impl std::fmt::Debug for ExecutorStateBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorStateBinding")
            .field("client", &self.client)
            .field("functions", &self.specs.len())
            .finish()
    }
}

impl ExecutorStateBinding {
    fn new(client: StateClient) -> ExecutorStateBinding {
        ExecutorStateBinding {
            client,
            specs: HashMap::new(),
        }
    }

    /// Register (or replace) the declared key set of `function`.
    fn bind(&mut self, function: &str, spec: StateSpec) {
        self.specs.insert(function.to_string(), spec);
    }

    /// Virtual time on the clock this binding's state accesses charge.
    fn now(&self) -> SimTime {
        self.client.now()
    }

    fn sync_to(&self, t: SimTime) {
        self.client.sync_to(t);
    }

    /// Client-side counters of the executor's state cache.
    pub fn stats(&self) -> StateClientStats {
        self.client.stats()
    }

    /// Materialise the keys `function` declared into worker-local buffers.
    /// A key deleted since bind time materialises empty (the function
    /// observes a fresh value, exactly as a first writer would).
    fn materialize(&mut self, function: &str) -> Result<MaterializedState> {
        let spec = self.specs.get(function).cloned().unwrap_or_default();
        let mut entries = Vec::with_capacity(spec.keys().len());
        for key in spec.keys() {
            let bytes = match self.client.get(&key.name) {
                Ok(bytes) => bytes,
                Err(StateError::UnknownKey(_)) => Vec::new(),
                Err(e) => return Err(RFaasError::StatePlane(e)),
            };
            entries.push(MaterializedEntry {
                name: key.name.clone(),
                mode: key.mode,
                bytes,
                dirty: false,
            });
        }
        Ok(MaterializedState { entries })
    }

    /// Push every dirty read-write key back to the plane, in declaration
    /// order (the write-back schedule is deterministic).
    fn write_back(&mut self, state: MaterializedState) -> Result<()> {
        for entry in state.entries {
            if entry.dirty && entry.mode == StateMode::ReadWrite {
                self.client
                    .put(&entry.name, &entry.bytes)
                    .map_err(RFaasError::StatePlane)?;
            }
        }
        Ok(())
    }
}

struct MaterializedEntry {
    name: String,
    mode: StateMode,
    bytes: Vec<u8>,
    dirty: bool,
}

/// The declared keys of one stateful invocation, materialised into
/// worker-local byte buffers. This is the `StateAccess` window handed to the
/// function body: reads see the materialised copies, writes mark them dirty
/// for the post-completion write-back, and any access outside the declared
/// set (or a write to a read-only key) fails the invocation.
struct MaterializedState {
    entries: Vec<MaterializedEntry>,
}

impl StateAccess for MaterializedState {
    fn read(&self, key: &str) -> std::result::Result<&[u8], FunctionError> {
        self.entries
            .iter()
            .find(|e| e.name == key)
            .map(|e| e.bytes.as_slice())
            .ok_or_else(|| {
                FunctionError::StateAccess(format!("key '{key}' was not declared via with_state"))
            })
    }

    fn write(&mut self, key: &str) -> std::result::Result<&mut Vec<u8>, FunctionError> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.name == key)
            .ok_or_else(|| {
                FunctionError::StateAccess(format!("key '{key}' was not declared via with_state"))
            })?;
        if entry.mode == StateMode::Read {
            return Err(FunctionError::StateAccess(format!(
                "key '{key}' is declared read-only"
            )));
        }
        entry.dirty = true;
        Ok(&mut entry.bytes)
    }
}

/// Integer square root (floor), used to size the shared receive queue
/// sublinearly in the worker count.
fn integer_sqrt(n: usize) -> usize {
    let mut root = 0usize;
    while (root + 1).saturating_mul(root + 1) <= n {
        root += 1;
    }
    root
}

/// The (renewable) expiry instant of one lease, shared between the allocator,
/// the executor process and every worker thread serving the lease.
///
/// Workers consult it on each invocation (Sec. III-B: the executor enforces
/// the lease, not the client); `extend` pushes it forward when the client
/// renews through the manager. The deadline never moves backwards.
#[derive(Debug)]
pub struct LeaseDeadline {
    expires_at_ns: AtomicU64,
}

impl LeaseDeadline {
    /// A deadline at `expires_at`.
    pub fn new(expires_at: SimTime) -> LeaseDeadline {
        LeaseDeadline {
            expires_at_ns: AtomicU64::new(expires_at.as_nanos()),
        }
    }

    /// The current expiry instant.
    pub fn expires_at(&self) -> SimTime {
        SimTime::from_nanos(self.expires_at_ns.load(Ordering::Acquire))
    }

    /// Push the expiry forward to `expires_at` (monotonic: an earlier instant
    /// is ignored).
    pub fn extend(&self, expires_at: SimTime) {
        self.expires_at_ns
            .fetch_max(expires_at.as_nanos(), Ordering::AcqRel);
    }

    /// Whether the lease has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expires_at()
    }
}

/// A CPU core shared between workers; warm invocations must acquire it
/// exclusively, hot workers hold it for their whole lifetime (Fig. 6).
#[derive(Debug, Default)]
pub struct CoreSlot {
    busy: AtomicBool,
}

impl CoreSlot {
    /// Try to take exclusive ownership of the core.
    pub fn try_acquire(&self) -> bool {
        !self.busy.swap(true, Ordering::AcqRel)
    }

    /// Release the core.
    pub fn release(&self) {
        self.busy.store(false, Ordering::Release);
    }

    /// Whether the core is currently held.
    pub fn is_busy(&self) -> bool {
        self.busy.load(Ordering::Acquire)
    }
}

/// Statistics kept by one worker thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Successfully executed invocations.
    pub invocations: u64,
    /// Invocations rejected because the core was busy.
    pub rejected: u64,
    /// Invocations whose function body failed.
    pub failed: u64,
    /// Invocations refused because the lease had expired on arrival.
    pub expired: u64,
    /// Hot→warm demotions after spinning past the hot-poll timeout.
    pub demotions: u64,
    /// Virtual time spent executing function bodies.
    pub busy_time: SimDuration,
    /// Virtual time spent hot-polling between invocations.
    pub hot_poll_time: SimDuration,
    /// Remote-fork fault batches this worker served (forked processes only).
    pub fork_faults: u64,
    /// Virtual time spent faulting parent pages in over RDMA reads.
    pub fork_fault_time: SimDuration,
    /// Invocations that ran against a state-plane window.
    pub state_invocations: u64,
    /// Virtual time spent materialising declared keys and writing dirty
    /// ones back (part of `busy_time`, broken out here).
    pub state_time: SimDuration,
}

#[derive(Debug)]
struct WorkerShared {
    shutdown: AtomicBool,
    mode: OrderedMutex<PollingMode>,
    stats: OrderedMutex<WorkerStats>,
    clock: Arc<VirtualClock>,
    deadline: Arc<LeaseDeadline>,
}

/// Connection details a client needs to reach one worker thread.
#[derive(Debug, Clone)]
pub struct WorkerEndpointInfo {
    /// Fabric address the worker's listener is bound to.
    pub address: String,
    /// Maximum payload bytes the worker's input buffer accepts.
    pub max_payload: usize,
}

/// Handle owned by the executor process for one worker. The worker itself is
/// state driven by the process dispatcher thread, not a thread of its own.
#[derive(Debug)]
pub struct WorkerHandle {
    info: WorkerEndpointInfo,
    shared: Arc<WorkerShared>,
}

impl WorkerHandle {
    /// Connection info for clients.
    pub fn info(&self) -> &WorkerEndpointInfo {
        &self.info
    }

    /// Snapshot of the worker's statistics.
    pub fn stats(&self) -> WorkerStats {
        *self.shared.stats.lock()
    }

    /// The worker's virtual clock (its latest observed virtual time).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.shared.clock
    }

    /// Change the polling mode (hot ↔ warm switch, Sec. III-C).
    pub fn set_mode(&self, mode: PollingMode) {
        *self.shared.mode.lock() = mode;
    }

    /// Current polling mode.
    pub fn mode(&self) -> PollingMode {
        *self.shared.mode.lock()
    }

    fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // The dispatcher retires the worker (releases its core, disconnects
        // its client) on its next turn; joining happens at process level.
        self.request_shutdown();
    }
}

/// Per-worker state built at allocation time; the process dispatcher drives
/// its whole lifecycle (accept → hello → serve → retire).
struct WorkerSlot {
    listener: Listener,
    endpoint: Endpoint,
    shared: Arc<WorkerShared>,
    core: Arc<CoreSlot>,
    max_payload: usize,
    conn: Option<WorkerConn>,
    /// The worker finished (client gone, shutdown or setup failure). Its CQ
    /// is deregistered from the set; any stray token in flight is ignored.
    done: bool,
}

/// Live connection state of one worker, from accept until retirement.
struct WorkerConn {
    qp: QueuePair,
    input: MemoryRegion,
    output: MemoryRegion,
    hello_region: MemoryRegion,
    hello_sent: bool,
    /// This worker's receive-CQ token in the dispatcher's [`CqSet`].
    token: usize,
    holds_core: bool,
    last_ready: Option<SimTime>,
    /// Adaptive workers busy-poll until this *virtual* instant after each
    /// served request, then park on the completion channel. Compared against
    /// the next completion's virtual timestamp to decide whether that pickup
    /// is billed as a busy poll or a blocking wake-up, mirroring the
    /// spin-then-block wait of a dedicated thread. Virtual (not wall) time
    /// keeps the billing decision — and through it every downstream
    /// timestamp — deterministic across runs.
    unparked_until: SimTime,
}

/// Everything one dispatcher thread needs to serve a whole executor process.
struct DispatcherContext {
    workers: Vec<WorkerSlot>,
    package: CodePackage,
    config: RFaasConfig,
    billing: Option<Arc<BillingClient>>,
    shutdown: Arc<AtomicBool>,
    /// The process-wide shared receive queue every worker QP consumes from.
    srq: SharedReceiveQueue,
    /// The one receive ring replenishing the SRQ: its doorbell slots back
    /// every invocation of the process, so receive memory scales with the
    /// SRQ depth instead of `workers × recv_queue_depth`.
    ring: ReceiveRing,
    /// Fault state of a forked process: early invocations drain one prefetch
    /// window each until the child is resident. `None` for cold/warm spawns.
    fork: Option<Arc<ForkFaultState>>,
    /// State-plane attachment of the process. Populated after spawn (the
    /// client attaches its plane once the allocation is installed), hence
    /// the shared slot rather than a construction-time field.
    state_binding: Arc<OrderedMutex<Option<ExecutorStateBinding>>>,
}

/// Release a worker's resources and mark it finished. Dropping the
/// connection disconnects the queue pair and frees the registered buffers.
fn retire_worker(slot: &mut WorkerSlot, cqset: &mut CqSet) {
    if let Some(conn) = slot.conn.take() {
        if conn.holds_core {
            slot.core.release();
        }
        cqset.deregister(conn.token);
        conn.qp.disconnect();
    }
    slot.done = true;
}

/// Finish a worker's setup once its client connected: register the input and
/// output buffers, attach the QP to the process SRQ, register the receive CQ
/// in the dispatcher's set and prepare the hello message advertising the
/// input buffer.
fn connect_worker(
    slot: &WorkerSlot,
    qp: QueuePair,
    cqset: &mut CqSet,
    config: &RFaasConfig,
    srq: &SharedReceiveQueue,
) -> Option<WorkerConn> {
    // Registered buffers: clients write [header | payload] into `input`; the
    // function produces its result in `output` before it is written back.
    let input = slot.endpoint.pd.register(
        INVOCATION_HEADER_BYTES + slot.max_payload,
        AccessFlags::REMOTE_WRITE,
    );
    let output = slot
        .endpoint
        .pd
        .register(slot.max_payload, AccessFlags::LOCAL_ONLY);

    // No private receive ring: the QP consumes pre-posted receives from the
    // process-wide SRQ, capped by a per-worker flow-control credit so one
    // chatty connection cannot starve its siblings. The credit equals the
    // old private ring depth, so a single client observes the same
    // ReceiverNotReady threshold as before the SRQ rework.
    qp.attach_srq(srq, config.recv_queue_depth.max(1));

    let hello = InvocationHeader {
        result_rkey: input.rkey(),
        result_offset: 0,
        result_capacity: input.len() as u64,
    };
    let hello_region = slot
        .endpoint
        .pd
        .register_from(hello.encode().to_vec(), AccessFlags::LOCAL_ONLY);
    let token = cqset.register(qp.recv_cq());
    Some(WorkerConn {
        qp,
        input,
        output,
        hello_region,
        hello_sent: false,
        token,
        holds_core: false,
        last_ready: None,
        unparked_until: slot.shared.clock.now() + config.hot_poll_fallback,
    })
}

/// Serve one invocation completion on its owning worker: charge the pickup
/// on the worker's clock per its polling mode, apply the retrospective
/// hot-poll accounting, enforce the lease, acquire the core, run the
/// function and write the result back. The billing is exactly what a
/// dedicated worker thread charged; only the completion delivery is
/// multiplexed.
#[allow(clippy::too_many_arguments)]
fn serve_completion(
    slot: &mut WorkerSlot,
    raw: WorkCompletion,
    ring: &ReceiveRing,
    package: &CodePackage,
    config: &RFaasConfig,
    billing: &Option<Arc<BillingClient>>,
    fork: &Option<Arc<ForkFaultState>>,
    state_binding: &Arc<OrderedMutex<Option<ExecutorStateBinding>>>,
) {
    let shared = Arc::clone(&slot.shared);
    let core = Arc::clone(&slot.core);
    let Some(conn) = slot.conn.as_mut() else {
        return;
    };
    // Hand the raw completion back to the shared ring for slot accounting:
    // adoption releases the consuming QP's SRQ credit and re-posts the
    // consumed receive into the SRQ.
    let wc = ring.adopt(raw).wc;

    // The multiplexed drain was uncharged: bill the pickup the way this
    // worker's own wait would have. Hot workers (and adaptive workers still
    // inside their spin window) pay the busy-poll pickup; warm and parked
    // adaptive workers pay notification serialisation plus the blocking
    // wake-up.
    let mode = *shared.mode.lock();
    let parked = match mode {
        PollingMode::Hot => false,
        PollingMode::Warm => true,
        PollingMode::Adaptive => wc.timestamp >= conn.unparked_until,
    };
    let wc = if parked {
        conn.qp.recv_cq().charge_blocking_pickup(wc)
    } else {
        conn.qp.recv_cq().charge_poll_pickup(&wc);
        wc
    };
    if matches!(mode, PollingMode::Adaptive) {
        // The pickup charge above synced this worker's clock to the
        // arrival, so the next spin window opens at the served request.
        conn.unparked_until = shared.clock.now() + config.hot_poll_fallback;
    }
    if !wc.is_success() {
        return;
    }

    // Hot-polling time: the gap between becoming idle and the arrival of
    // this request is CPU time burnt spinning (billed like compute).
    //
    // Demotion is evaluated *retrospectively* at the next arrival: an
    // idle worker cannot observe virtual time passing (empty polls do
    // not advance it), so the spin gap is only known once a completion
    // carries its timestamp. The one fidelity cost: a hot worker past
    // its budget keeps the core until that next arrival, so co-located
    // warm invocations can still be rejected during the window.
    if matches!(mode, PollingMode::Hot | PollingMode::Adaptive) {
        if let Some(idle_since) = conn.last_ready {
            let spin = wc.timestamp.saturating_since(idle_since);
            let demote = matches!(mode, PollingMode::Hot)
                && !config.hot_poll_timeout.is_zero()
                && spin > config.hot_poll_timeout;
            if demote {
                // The worker stopped spinning `hot_poll_timeout` after
                // going idle and parked on the completion channel
                // (Sec. III-C): the polling bill is capped at the
                // budget, the worker is warm from here on, and this
                // request pays the blocking wake-up it actually took.
                {
                    let mut stats = shared.stats.lock();
                    stats.hot_poll_time += config.hot_poll_timeout;
                    stats.demotions += 1;
                }
                if let Some(b) = billing {
                    b.record_hot_poll(config.hot_poll_timeout);
                }
                *shared.mode.lock() = PollingMode::Warm;
                shared.clock.advance(conn.qp.recv_cq().blocking_penalty());
                if conn.holds_core {
                    core.release();
                    conn.holds_core = false;
                }
            } else {
                // An adaptive worker parks after its fallback window, so
                // it too only burns CPU up to the budget — never the
                // whole idle gap.
                let billed = if matches!(mode, PollingMode::Adaptive)
                    && !config.hot_poll_fallback.is_zero()
                {
                    spin.min(config.hot_poll_fallback)
                } else {
                    spin
                };
                if !billed.is_zero() {
                    shared.stats.lock().hot_poll_time += billed;
                    if let Some(b) = billing {
                        b.record_hot_poll(billed);
                    }
                }
            }
        }
    }

    let imm = wc.imm.unwrap_or(0);
    let (invocation_id, function_index) = ImmValue::parse_request(imm);
    let total_len = wc.byte_len;
    let header_bytes = match conn.input.read(0, INVOCATION_HEADER_BYTES) {
        Ok(bytes) => bytes,
        Err(_) => return,
    };
    let Ok(header) = InvocationHeader::decode(&header_bytes) else {
        return;
    };
    let result_handle = header.result_handle();
    let payload_len = total_len.saturating_sub(INVOCATION_HEADER_BYTES);

    // Lease enforcement (Sec. III-B): charging the pickup synchronised
    // this worker's clock to the invocation's arrival time, so comparing
    // against the shared deadline catches leases that expired while the
    // client kept the connection open. Refuse the invocation so the client
    // re-allocates through the resource manager.
    if shared.deadline.is_expired(shared.clock.now()) {
        shared.stats.lock().expired += 1;
        let _ = conn.qp.post_send(
            invocation_id as u64,
            SendRequest::WriteWithImm {
                local: Sge::range(&conn.output, 0, 0),
                remote: result_handle.slice(0, 0),
                imm: ImmValue::response(invocation_id, ResultStatus::LeaseExpired),
            },
            false,
        );
        // The spin up to this arrival was already accounted above; mark
        // the new idle point or the next request re-bills that interval.
        conn.last_ready = Some(shared.clock.now());
        return;
    }

    // Oversubscribed warm executions must grab the core; if a
    // compute-intensive task holds it, reject immediately so the client
    // redirects to another executor (Sec. III-D, Fig. 6).
    let acquired_for_this = if !conn.holds_core {
        if core.try_acquire() {
            true
        } else {
            shared.stats.lock().rejected += 1;
            let _ = conn.qp.post_send(
                invocation_id as u64,
                SendRequest::WriteWithImm {
                    local: Sge::range(&conn.output, 0, 0),
                    remote: result_handle.slice(0, 0),
                    imm: ImmValue::response(invocation_id, ResultStatus::Rejected),
                },
                false,
            );
            conn.last_ready = Some(shared.clock.now());
            return;
        }
    } else {
        false
    };

    // A forked child still faulting in parent pages pays the next prefetch
    // window here: the page touches happen under this invocation's function
    // entry, served by one-sided READs from the parent node and billed to
    // the tenant like compute. Once the map is resident (`serve_next`
    // returns None) invocations are indistinguishable from a warm spawn.
    if let Some(fork) = fork {
        if let Some(batch) = fork.serve_next() {
            shared.clock.advance(batch.cost);
            {
                let mut stats = shared.stats.lock();
                stats.fork_faults += 1;
                stats.fork_fault_time += batch.cost;
            }
            if let Some(b) = billing {
                b.record_compute(batch.cost);
            }
        }
    }

    // Dispatch: header parse, function lookup, argument setup.
    shared.clock.advance(config.dispatch_cost);

    let function = package.function_by_index(function_index as usize).cloned();
    let response = match function {
        None => (0usize, ResultStatus::FunctionFailed),
        Some(function) => {
            let input_bytes = conn
                .input
                .read(INVOCATION_HEADER_BYTES, payload_len)
                .unwrap_or_default();
            let started = shared.clock.now();
            let outcome = if function.is_stateful() {
                // Stateful path: materialise the declared keys into
                // worker-local buffers, run the function against the state
                // window, write dirty keys back. The time the state client
                // spends on its own clock (cache misses, remote reads, push
                // writes) is re-billed onto this worker's clock so the
                // invocation round trip carries it.
                let mut guard = state_binding.lock();
                match guard.as_mut() {
                    None => Err(FunctionError::StateAccess(
                        "no state plane is attached to this executor process".into(),
                    )),
                    Some(binding) => {
                        // The binding's clock may lag the worker's (it only
                        // moves on state traffic); sync before measuring so
                        // the access is billed its real cost, not the
                        // catch-up to the worker's present.
                        binding.sync_to(shared.clock.now());
                        let state_started = binding.now();
                        let outcome = match binding.materialize(function.name()) {
                            Err(e) => Err(FunctionError::StateAccess(e.to_string())),
                            Ok(mut window) => {
                                let run = conn.output.with_bytes_mut(|buf| {
                                    function.invoke_stateful(&input_bytes, &mut window, buf)
                                });
                                match run {
                                    Ok(n) => match binding.write_back(window) {
                                        Ok(()) => Ok(n),
                                        Err(e) => Err(FunctionError::StateAccess(e.to_string())),
                                    },
                                    Err(e) => Err(e),
                                }
                            }
                        };
                        let spent = binding.now().saturating_since(state_started);
                        shared.clock.advance(spent);
                        {
                            let mut stats = shared.stats.lock();
                            stats.state_invocations += 1;
                            stats.state_time += spent;
                        }
                        outcome
                    }
                }
            } else {
                conn.output
                    .with_bytes_mut(|buf| function.invoke(&input_bytes, buf))
            };
            shared.clock.advance(function.compute_cost(payload_len));
            let busy = shared.clock.now().saturating_since(started);
            {
                let mut stats = shared.stats.lock();
                stats.busy_time += busy;
            }
            if let Some(b) = billing {
                b.record_compute(busy);
            }
            match outcome {
                Ok(n) if n <= result_handle.len => (n, ResultStatus::Success),
                Ok(_) | Err(_) => (0, ResultStatus::FunctionFailed),
            }
        }
    };

    // Write the result directly into the client's memory and notify it
    // through the immediate value.
    let (out_len, status) = response;
    let _ = conn.qp.post_send(
        invocation_id as u64,
        SendRequest::WriteWithImm {
            local: Sge::range(&conn.output, 0, out_len),
            remote: result_handle.slice(0, out_len),
            imm: ImmValue::response(invocation_id, status),
        },
        false,
    );
    {
        let mut stats = shared.stats.lock();
        match status {
            ResultStatus::Success => stats.invocations += 1,
            ResultStatus::FunctionFailed => stats.failed += 1,
            ResultStatus::Rejected | ResultStatus::LeaseExpired => {}
        }
    }
    if acquired_for_this {
        core.release();
    }

    // The ring already replenished the consumed receive; mark the idle
    // point for the hot-poll accounting of the next request.
    conn.last_ready = Some(shared.clock.now());
    if let Some(b) = billing {
        let _ = b.flush();
    }
}

/// The dispatcher thread body: one completion-driven event loop serving
/// every worker of an executor process over a single multiplexed CQ set.
///
/// Each turn sweeps the worker lifecycles (accept pending clients, push
/// pending hellos, keep hot workers on their cores, retire finished
/// workers), then drains every receive CQ in deterministic registration
/// order and serves the completions on their owning workers. When a turn
/// makes no progress the loop spins only if some worker busy-polls;
/// otherwise it parks on the set's notifier like a warm worker parks on its
/// completion channel.
fn dispatcher_main(ctx: DispatcherContext) {
    /// How often an idle dispatcher re-polls its listeners while a worker
    /// connection is still being established. Replaces the old hard-coded
    /// 200µs `thread::sleep`: same accept cadence, but routed through the
    /// CqSet notifier so completions and disconnects cut the wait short.
    const SETUP_ACCEPT_POLL: Duration = Duration::from_micros(200);
    let DispatcherContext {
        mut workers,
        package,
        config,
        billing,
        shutdown,
        srq,
        ring,
        fork,
        state_binding,
    } = ctx;

    let mut cqset = CqSet::new();
    // Member token -> worker index, in registration (= drain) order.
    let mut owner: Vec<usize> = Vec::new();
    // Scratch reused across turns: the steady-state drain never allocates.
    let mut scratch: Vec<(usize, WorkCompletion)> = Vec::new();

    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }

        let mut progressed = false;

        // Lifecycle sweep.
        for (index, slot) in workers.iter_mut().enumerate() {
            if slot.done {
                continue;
            }
            if slot.shared.shutdown.load(Ordering::Acquire) {
                retire_worker(slot, &mut cqset);
                continue;
            }
            if slot.conn.is_none() {
                // Wait for the lease-holding client to connect.
                match slot.listener.try_accept(&slot.endpoint) {
                    Ok(Some(qp)) => match connect_worker(slot, qp, &mut cqset, &config, &srq) {
                        Some(conn) => {
                            debug_assert_eq!(conn.token, owner.len());
                            owner.push(index);
                            slot.conn = Some(conn);
                            progressed = true;
                        }
                        None => retire_worker(slot, &mut cqset),
                    },
                    Ok(None) => {}
                    Err(_) => retire_worker(slot, &mut cqset),
                }
                continue;
            }
            let conn = slot.conn.as_mut().unwrap();
            if !conn.hello_sent {
                // Advertise the input buffer to the client ("hello"). The
                // client posts its receive right after connecting; retry
                // every turn to cover the race between accept() returning
                // on both sides.
                match conn.qp.post_send(
                    0,
                    SendRequest::Send {
                        local: Sge::whole(&conn.hello_region),
                    },
                    false,
                ) {
                    Ok(()) => {
                        conn.hello_sent = true;
                        progressed = true;
                    }
                    Err(rdma_fabric::FabricError::ReceiverNotReady) => {
                        if !conn.qp.is_connected() {
                            retire_worker(slot, &mut cqset);
                        }
                    }
                    Err(_) => retire_worker(slot, &mut cqset),
                }
                continue;
            }
            // Hot workers own their core for their entire lifetime.
            let mode = *slot.shared.mode.lock();
            if matches!(mode, PollingMode::Hot) && !conn.holds_core {
                conn.holds_core = slot.core.try_acquire();
            }
            if !matches!(mode, PollingMode::Hot) && conn.holds_core {
                slot.core.release();
                conn.holds_core = false;
            }
            // A gone client retires the worker once its CQ drained: the
            // drain below still serves completions queued before the
            // disconnect, exactly like a dedicated thread polling dry.
            if !conn.qp.is_connected() && conn.qp.recv_cq().pending() == 0 {
                retire_worker(slot, &mut cqset);
            }
        }

        // Drain every member CQ in registration order and serve the
        // completions on their owning workers.
        scratch.clear();
        cqset.poll_uncharged_into(usize::MAX, &mut scratch);
        for (token, wc) in scratch.drain(..) {
            let slot = &mut workers[owner[token]];
            if slot.done || slot.conn.is_none() {
                continue;
            }
            serve_completion(
                slot,
                wc,
                &ring,
                &package,
                &config,
                &billing,
                &fork,
                &state_binding,
            );
            progressed = true;
        }

        if workers.iter().all(|slot| slot.done) {
            break;
        }
        if progressed {
            continue;
        }

        // Idle policy: spin while any hot worker busy-polls, otherwise
        // park on the set's notifier — a delivery or disconnect on any
        // member CQ wakes the loop immediately, so the timeout only bounds
        // how often host-side conditions the notifier cannot observe
        // (shutdown flags, new connections on the listeners) are re-polled.
        // Adaptive workers park too: their spin window is *virtual* time,
        // which an idle host thread cannot observe passing; the window is
        // enforced where it matters — in the billing decision against the
        // next completion's virtual timestamp.
        let mut spin = false;
        let mut setting_up = false;
        for slot in &workers {
            if slot.done {
                continue;
            }
            match &slot.conn {
                None => setting_up = true,
                Some(conn) if !conn.hello_sent => setting_up = true,
                Some(_) => match *slot.shared.mode.lock() {
                    PollingMode::Hot => spin = true,
                    PollingMode::Adaptive | PollingMode::Warm => {}
                },
            }
        }
        if spin {
            std::hint::spin_loop();
            std::thread::yield_now();
        } else if setting_up {
            // A connection is still being set up: the notifier cannot see
            // listener activity, so wait with the accept-poll interval
            // instead of a bare sleep — queued completions still wake the
            // loop instantly.
            cqset.wait(SETUP_ACCEPT_POLL);
        } else {
            cqset.wait(Duration::from_millis(50));
        }
    }

    for slot in &mut workers {
        retire_worker(slot, &mut cqset);
    }
}

/// Per-lease cold-start cost breakdown produced by the allocator, matching
/// the stacked bars of Fig. 9.
#[derive(Debug, Clone)]
pub struct AllocationBreakdown {
    /// Sandbox + executor-process + worker spawn costs.
    pub spawn: SpawnBreakdown,
    /// Cost of transferring and loading the code package.
    pub code_submission: SimDuration,
}

impl AllocationBreakdown {
    /// Total allocator-side cold-start cost.
    pub fn total(&self) -> SimDuration {
        self.spawn.total() + self.code_submission
    }
}

/// Result of a successful allocation: where to connect, and what it cost.
#[derive(Debug)]
pub struct AllocationResult {
    /// Executor-process identifier.
    pub process_id: u64,
    /// One entry per spawned worker thread.
    pub workers: Vec<WorkerEndpointInfo>,
    /// Cold-start cost breakdown.
    pub breakdown: AllocationBreakdown,
    /// The code package loaded into the executor; the client uses it to map
    /// function names to the indices carried in invocation immediates.
    pub package: CodePackage,
}

/// An executor process: one sandbox hosting a set of worker threads that all
/// serve the same code package on behalf of one lease.
#[derive(Debug)]
pub struct ExecutorProcess {
    id: u64,
    lease_id: u64,
    sandbox: OrderedMutex<Sandbox>,
    workers: Vec<WorkerHandle>,
    /// The one event-loop thread multiplexing every worker's receive CQ.
    dispatcher: Option<JoinHandle<()>>,
    dispatcher_shutdown: Arc<AtomicBool>,
    /// The process-wide shared receive queue the dispatcher's workers
    /// consume from (kept for statistics; the dispatcher owns a clone).
    srq: SharedReceiveQueue,
    /// Cores reserved from the node pool at allocation time (`lease.cores`,
    /// not the worker count — oversubscribed allocations spawn more workers
    /// than they reserve cores).
    leased_cores: u32,
    memory_mib: u64,
    deadline: Arc<LeaseDeadline>,
    created_at: SimTime,
    last_used: OrderedMutex<SimTime>,
    /// How the sandbox was provisioned, and — for forked processes — the
    /// shared fault state over the parent snapshot's page map.
    policy: AllocationPolicy,
    fork: Option<Arc<ForkFaultState>>,
    /// Shared slot the dispatcher reads stateful invocations' binding from;
    /// the allocator fills it when the client attaches a state plane.
    state_binding: Arc<OrderedMutex<Option<ExecutorStateBinding>>>,
}

impl ExecutorProcess {
    /// Process identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The lease this process belongs to.
    pub fn lease_id(&self) -> u64 {
        self.lease_id
    }

    /// Worker handles (read-only).
    pub fn workers(&self) -> &[WorkerHandle] {
        &self.workers
    }

    /// Cores reserved from the node pool for this process.
    pub fn leased_cores(&self) -> u32 {
        self.leased_cores
    }

    /// The (renewable) lease deadline shared with this process's workers.
    pub fn deadline(&self) -> &Arc<LeaseDeadline> {
        &self.deadline
    }

    /// Aggregate statistics over all workers.
    pub fn stats(&self) -> WorkerStats {
        let mut total = WorkerStats::default();
        for w in &self.workers {
            let s = w.stats();
            total.invocations += s.invocations;
            total.rejected += s.rejected;
            total.failed += s.failed;
            total.expired += s.expired;
            total.demotions += s.demotions;
            total.busy_time += s.busy_time;
            total.hot_poll_time += s.hot_poll_time;
            total.fork_faults += s.fork_faults;
            total.fork_fault_time += s.fork_fault_time;
            total.state_invocations += s.state_invocations;
            total.state_time += s.state_time;
        }
        total
    }

    /// The allocation policy this process was provisioned under.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Fault state of a forked process (`None` for cold/warm provisioning).
    pub fn fork_state(&self) -> Option<Arc<ForkFaultState>> {
        self.fork.clone()
    }

    /// Client-side counters of the process's state-plane attachment
    /// (`None` when no plane is attached).
    pub fn state_stats(&self) -> Option<StateClientStats> {
        self.state_binding.lock().as_ref().map(|b| b.stats())
    }

    /// Statistics of the process-wide shared receive queue: depth, posted
    /// slots, in-flight receives and the depth high watermark.
    pub fn srq_stats(&self) -> SrqStats {
        self.srq.stats()
    }

    /// Latest virtual time observed by any worker of this process.
    pub fn latest_worker_time(&self) -> SimTime {
        self.workers
            .iter()
            .map(|w| w.clock().now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Stop serving: shut every worker down and join the dispatcher. The
    /// sandbox stays alive so the caller can park it as a warm parent.
    fn stop_serving(&mut self) {
        for w in &self.workers {
            w.request_shutdown();
        }
        self.dispatcher_shutdown.store(true, Ordering::Release);
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }

    fn shutdown(&mut self) -> SimDuration {
        self.stop_serving();
        self.sandbox.lock().terminate().unwrap_or(SimDuration::ZERO)
    }
}

struct AllocatorState {
    available: NodeResources,
    processes: BTreeMap<u64, Arc<OrderedMutex<ExecutorProcess>>>,
}

/// The lightweight allocator of one spot executor (A2 in Fig. 4): connects
/// new clients, manages executor processes, removes idle processes and
/// accounts resource consumption.
pub struct LightweightAllocator {
    node_name: String,
    fabric: Arc<Fabric>,
    node: Arc<FabricNode>,
    config: RFaasConfig,
    registry: FunctionRegistry,
    images: ImageRegistry,
    state: OrderedMutex<AllocatorState>,
    clock: Arc<VirtualClock>,
    billing: OrderedMutex<Option<Arc<BillingClient>>>,
    /// Parked warm parents per `(SandboxType, package)` — deallocation parks
    /// a sandbox here (when capacity admits it) instead of tearing it down,
    /// and fork/warm-pool allocations consult it before a full spawn.
    warm_pool: WarmPool,
    // Cleared when the node dies or is reclaimed: a dead allocator refuses
    // new allocations instead of spawning processes on a gone machine.
    alive: AtomicBool,
    // Testing hook: index of the first worker-thread spawn forced to fail
    // (usize::MAX disables it). Lets tests exercise the mid-allocation
    // rollback path, which real `thread::spawn` failures make untestable.
    spawn_fail_at: AtomicUsize,
}

impl std::fmt::Debug for LightweightAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LightweightAllocator")
            .field("node", &self.node_name)
            .finish()
    }
}

impl LightweightAllocator {
    fn new(
        fabric: Arc<Fabric>,
        node: Arc<FabricNode>,
        node_name: String,
        resources: NodeResources,
        registry: FunctionRegistry,
        images: ImageRegistry,
        config: RFaasConfig,
    ) -> LightweightAllocator {
        let config_warm_capacity = config.warm_pool_capacity;
        LightweightAllocator {
            node_name,
            fabric,
            node,
            config,
            registry,
            images,
            state: OrderedMutex::new(
                ranks::EXECUTOR_ALLOCATOR,
                AllocatorState {
                    available: resources,
                    processes: BTreeMap::new(),
                },
            ),
            clock: VirtualClock::shared(),
            billing: OrderedMutex::new(ranks::EXECUTOR_BILLING, None),
            warm_pool: WarmPool::with_capacity(config_warm_capacity),
            alive: AtomicBool::new(true),
            spawn_fail_at: AtomicUsize::new(usize::MAX),
        }
    }

    /// Force the `index`-th worker-thread spawn of the next allocation to
    /// fail (testing hook for the rollback path).
    #[doc(hidden)]
    pub fn inject_spawn_failure(&self, index: usize) {
        self.spawn_fail_at.store(index, Ordering::Release);
    }

    /// Attach the billing client created by the resource manager.
    pub fn attach_billing(&self, billing: Arc<BillingClient>) {
        *self.billing.lock() = Some(billing);
    }

    /// Resources currently available for new allocations.
    pub fn available(&self) -> NodeResources {
        self.state.lock().available
    }

    /// Number of live executor processes.
    pub fn process_count(&self) -> usize {
        self.state.lock().processes.len()
    }

    /// The allocator's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Allocate an executor process for `lease` with one worker per leased
    /// core, each pinned to its own core slot.
    pub fn allocate(&self, lease: &Lease) -> Result<AllocationResult> {
        self.allocate_with_workers(lease, lease.cores as usize, PollingMode::Hot)
    }

    /// Allocate with an explicit worker count and polling mode. Requesting
    /// more workers than leased cores oversubscribes the cores, which makes
    /// warm invocations subject to rejection (Sec. III-D).
    pub fn allocate_with_workers(
        &self,
        lease: &Lease,
        workers: usize,
        mode: PollingMode,
    ) -> Result<AllocationResult> {
        self.allocate_with_policy(lease, workers, mode, AllocationPolicy::Cold)
    }

    /// Allocate under an explicit [`AllocationPolicy`]: the fork and
    /// warm-pool tiers consult the executor's [`WarmPool`] before paying for
    /// a full `Sandbox::spawn`, and fall back to the cold path on a miss.
    pub fn allocate_with_policy(
        &self,
        lease: &Lease,
        workers: usize,
        mode: PollingMode,
        policy: AllocationPolicy,
    ) -> Result<AllocationResult> {
        if workers == 0 {
            return Err(RFaasError::Internal("cannot allocate zero workers".into()));
        }
        if !self.alive.load(Ordering::Acquire) {
            return Err(RFaasError::ExecutorLost(self.node_name.clone()));
        }
        let package = self
            .registry
            .fetch(&lease.package)
            .ok_or_else(|| RFaasError::UnknownPackage(lease.package.clone()))?;
        let request = NodeResources {
            cores: lease.cores,
            memory_mib: lease.memory_mib,
        };
        {
            let mut state = self.state.lock();
            if !state.available.can_fit(&request) {
                return Err(RFaasError::InsufficientResources {
                    requested_cores: request.cores,
                    requested_memory_mib: request.memory_mib,
                });
            }
            state.available = state.available.saturating_sub(&request);
        }

        // Provision the sandbox per the policy and charge its cost on the
        // allocator clock. The fork and warm-pool tiers consult the warm
        // pool first; a miss degrades to the cold path. A micro-cost hit
        // (resume or fork setup) is reported through the spawn breakdown's
        // `sandbox_create` slot so clients see it in their cold-start bars.
        let cold_spawn = |images: &ImageRegistry| {
            let (mut sandbox, spawn) = Sandbox::spawn(
                lease.sandbox,
                workers,
                lease.memory_mib * 1024 * 1024,
                images,
                package.image(),
            );
            let code_submission = self
                .registry
                .code_submission_cost(&lease.package)
                .unwrap_or(SimDuration::ZERO)
                + sandbox.load_package(package.clone());
            (sandbox, spawn, code_submission)
        };
        let micro_spawn = |setup: SimDuration| SpawnBreakdown {
            image_pull: SimDuration::ZERO,
            sandbox_create: setup,
            executor_start: SimDuration::ZERO,
            workers: SimDuration::ZERO,
        };
        let mut fork_state: Option<Arc<ForkFaultState>> = None;
        let (mut sandbox, spawn, code_submission) = match policy {
            AllocationPolicy::Cold => cold_spawn(&self.images),
            AllocationPolicy::WarmPool => {
                match self.warm_pool.lease(lease.sandbox, &lease.package) {
                    Some(parent) => {
                        // The parent leaves the pool and becomes this
                        // lease's sandbox: resume it, no code submission —
                        // the package is already loaded and warm.
                        let mut sandbox = parent.into_sandbox();
                        let resume = sandbox.resume().unwrap_or(SimDuration::ZERO);
                        sandbox.set_workers(workers);
                        (sandbox, micro_spawn(resume), SimDuration::ZERO)
                    }
                    None => cold_spawn(&self.images),
                }
            }
            AllocationPolicy::Fork => {
                match self.warm_pool.fork_source(lease.sandbox, &lease.package) {
                    Some(snapshot) => {
                        // Clone the executor skeleton from the parent's
                        // snapshot; the parent stays parked and serves the
                        // child's page faults via one-sided READs.
                        let (sandbox, setup) = Sandbox::fork_from(&snapshot, workers);
                        fork_state = Some(Arc::new(ForkFaultState::new(
                            &snapshot,
                            self.fabric.profile(),
                            self.config.fork_prefetch_window,
                        )));
                        (sandbox, micro_spawn(setup), SimDuration::ZERO)
                    }
                    None => cold_spawn(&self.images),
                }
            }
        };
        self.clock.advance(spawn.total() + code_submission);
        let start_time = self.clock.now();

        // One core slot per leased core; workers round-robin over them.
        let cores: Vec<Arc<CoreSlot>> = (0..lease.cores.max(1))
            .map(|_| Arc::new(CoreSlot::default()))
            .collect();
        let device_function = if lease.sandbox.uses_virtual_function() {
            DeviceFunction::Virtual
        } else {
            DeviceFunction::Physical
        };

        // The process-wide shared receive queue: every worker QP consumes
        // pre-posted receives from it, so receive memory scales with the SRQ
        // depth — sublinear in the worker count — instead of one full ring
        // per connection. The depth grows with √workers on top of a
        // two-ring floor, clamped to what the device supports.
        let dispatch_endpoint = Endpoint {
            fabric: Arc::clone(&self.fabric),
            node: Arc::clone(&self.node),
            clock: Arc::new(VirtualClock::starting_at(start_time)),
            pd: rdma_fabric::ProtectionDomain::new(),
            function: device_function,
        };
        let max_depth = self.fabric.profile().max_recv_queue_depth;
        let srq_depth = (self.config.recv_queue_depth * (2 + integer_sqrt(workers))).clamp(
            self.config.recv_queue_depth.min(max_depth).max(1),
            max_depth,
        );
        let srq = SharedReceiveQueue::new(&dispatch_endpoint, srq_depth);
        let shared_ring = ReceiveRing::on_srq(&dispatch_endpoint, &srq, srq_depth, 8);

        let process_id = NEXT_PROCESS_ID.fetch_add(1, Ordering::Relaxed);
        let billing = self.billing.lock().clone();
        let deadline = Arc::new(LeaseDeadline::new(lease.expires_at));
        let mut handles = Vec::with_capacity(workers);
        let mut slots = Vec::with_capacity(workers);
        let mut spawn_error = shared_ring
            .as_ref()
            .err()
            .map(|e| RFaasError::Internal(format!("failed to build shared receive ring: {e}")));
        for worker_idx in 0..workers {
            if spawn_error.is_some() {
                break;
            }
            if worker_idx == self.spawn_fail_at.load(Ordering::Acquire) {
                self.spawn_fail_at.store(usize::MAX, Ordering::Release);
                spawn_error = Some(RFaasError::Internal(format!(
                    "failed to spawn worker: injected failure at index {worker_idx}"
                )));
                break;
            }
            let worker_id = NEXT_WORKER_ID.fetch_add(1, Ordering::Relaxed);
            let address = format!("rfaas://{}/{}/{}", self.node_name, process_id, worker_id);
            let listener = Listener::bind(&self.fabric, &address);
            let worker_clock = Arc::new(VirtualClock::starting_at(start_time));
            let shared = Arc::new(WorkerShared {
                shutdown: AtomicBool::new(false),
                mode: OrderedMutex::new(ranks::EXECUTOR_MODE, mode),
                stats: OrderedMutex::new(ranks::EXECUTOR_STATS, WorkerStats::default()),
                clock: Arc::clone(&worker_clock),
                deadline: Arc::clone(&deadline),
            });
            let endpoint = Endpoint {
                fabric: Arc::clone(&self.fabric),
                node: Arc::clone(&self.node),
                clock: worker_clock,
                pd: rdma_fabric::ProtectionDomain::new(),
                function: device_function,
            };
            handles.push(WorkerHandle {
                info: WorkerEndpointInfo {
                    address,
                    max_payload: self.config.max_payload_bytes,
                },
                shared: Arc::clone(&shared),
            });
            slots.push(WorkerSlot {
                listener,
                endpoint,
                shared,
                core: Arc::clone(&cores[worker_idx % cores.len()]),
                max_payload: self.config.max_payload_bytes,
                conn: None,
                done: false,
            });
        }

        // One dispatcher thread per process serves every worker slot.
        let dispatcher_shutdown = Arc::new(AtomicBool::new(false));
        let state_slot: Arc<OrderedMutex<Option<ExecutorStateBinding>>> =
            Arc::new(OrderedMutex::new(ranks::EXECUTOR_STATE_BINDING, None));
        let mut dispatcher = None;
        if spawn_error.is_none() {
            if let Ok(ring) = shared_ring {
                let context = DispatcherContext {
                    workers: std::mem::take(&mut slots),
                    package: package.clone(),
                    config: self.config.clone(),
                    billing,
                    shutdown: Arc::clone(&dispatcher_shutdown),
                    srq: srq.clone(),
                    ring,
                    fork: fork_state.clone(),
                    state_binding: Arc::clone(&state_slot),
                };
                match std::thread::Builder::new()
                    .name(format!("rfaas-dispatch-{process_id}"))
                    .spawn(move || dispatcher_main(context))
                {
                    Ok(thread) => dispatcher = Some(thread),
                    Err(e) => {
                        spawn_error = Some(RFaasError::Internal(format!(
                            "failed to spawn dispatcher: {e}"
                        )));
                    }
                }
            }
        }
        if let Some(error) = spawn_error {
            // Roll back the partial allocation: drop the worker handles and
            // slots built so far (nothing is serving them — the dispatcher
            // never started), terminate the sandbox and return the
            // reservation to the node pool.
            drop(handles);
            drop(slots);
            if let Some(teardown) = sandbox.terminate() {
                self.clock.advance(teardown);
            }
            let mut state = self.state.lock();
            state.available = state.available.add(&request);
            return Err(error);
        }

        let infos: Vec<WorkerEndpointInfo> = handles.iter().map(|h| h.info().clone()).collect();
        let process = ExecutorProcess {
            id: process_id,
            lease_id: lease.id,
            sandbox: OrderedMutex::new(ranks::EXECUTOR_SANDBOX, sandbox),
            workers: handles,
            dispatcher,
            dispatcher_shutdown,
            srq,
            leased_cores: lease.cores,
            memory_mib: lease.memory_mib,
            deadline,
            created_at: start_time,
            last_used: OrderedMutex::new(ranks::EXECUTOR_LAST_USED, start_time),
            policy,
            fork: fork_state,
            state_binding: state_slot,
        };
        self.state.lock().processes.insert(
            process_id,
            Arc::new(OrderedMutex::new(ranks::EXECUTOR_PROCESS, process)),
        );

        Ok(AllocationResult {
            process_id,
            workers: infos,
            breakdown: AllocationBreakdown {
                spawn,
                code_submission,
            },
            package,
        })
    }

    /// Look up an executor process.
    pub fn process(&self, process_id: u64) -> Option<Arc<OrderedMutex<ExecutorProcess>>> {
        self.state.lock().processes.get(&process_id).cloned()
    }

    /// Shared-receive-queue statistics of one process (`None` for an unknown
    /// or already deallocated process).
    pub fn srq_stats(&self, process_id: u64) -> Option<SrqStats> {
        self.process(process_id).map(|p| p.lock().srq_stats())
    }

    /// Depth high watermark of one process's shared receive queue: the peak
    /// number of receive slots simultaneously in flight across every worker
    /// connection of the process. Zero for an unknown process.
    pub fn srq_high_watermark(&self, process_id: u64) -> usize {
        self.srq_stats(process_id)
            .map(|s| s.depth_high_watermark)
            .unwrap_or(0)
    }

    /// The executor's warm pool of parked fork parents.
    pub fn warm_pool(&self) -> &WarmPool {
        &self.warm_pool
    }

    /// Evict warm parents idle past the configured timeout, finally tearing
    /// their sandboxes down. Returns the number evicted.
    pub fn evict_warm_parents(&self, now: SimTime) -> usize {
        self.warm_pool
            .evict_idle(now, self.config.warm_pool_idle_timeout)
            .len()
    }

    /// Fault state of a forked process (`None` for unknown processes or
    /// cold/warm provisioning).
    pub fn fork_state(&self, process_id: u64) -> Option<Arc<ForkFaultState>> {
        self.process(process_id).and_then(|p| p.lock().fork_state())
    }

    /// Attach a state-plane client to one executor process: stateful
    /// invocations dispatched to the process materialise their declared keys
    /// through it. Replaces any previous attachment.
    pub fn attach_state_client(&self, process_id: u64, client: StateClient) -> Result<()> {
        let process = self
            .process(process_id)
            .ok_or(RFaasError::UnknownLease(process_id))?;
        let slot = Arc::clone(&process.lock().state_binding);
        *slot.lock() = Some(ExecutorStateBinding::new(client));
        Ok(())
    }

    /// Register the declared key set of `function` on one process's state
    /// binding (bind-time validation already happened client-side).
    pub fn bind_state_spec(&self, process_id: u64, function: &str, spec: StateSpec) -> Result<()> {
        let process = self
            .process(process_id)
            .ok_or(RFaasError::UnknownLease(process_id))?;
        let slot = Arc::clone(&process.lock().state_binding);
        let mut guard = slot.lock();
        let binding = guard.as_mut().ok_or_else(|| {
            RFaasError::StatePlane(StateError::Protocol(
                "no state plane is attached to this executor process".into(),
            ))
        })?;
        binding.bind(function, spec);
        Ok(())
    }

    /// Client-side state counters of one process's plane attachment.
    pub fn state_client_stats(&self, process_id: u64) -> Option<StateClientStats> {
        self.process(process_id)
            .and_then(|p| p.lock().state_stats())
    }

    /// All live executor processes, in ascending process-id order (used by
    /// experiments and tests to reach worker handles without the id).
    pub fn processes(&self) -> Vec<Arc<OrderedMutex<ExecutorProcess>>> {
        let state = self.state.lock();
        let mut ids: Vec<u64> = state.processes.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| Arc::clone(&state.processes[&id]))
            .collect()
    }

    /// Deallocate an executor process, returning its resources to the pool
    /// and flushing the allocation-time billing record.
    pub fn deallocate(&self, process_id: u64) -> Result<WorkerStats> {
        let process = self
            .state
            .lock()
            .processes
            .remove(&process_id)
            .ok_or(RFaasError::UnknownLease(process_id))?;
        let mut process = process.lock();
        let stats = process.stats();
        let allocation_time = process
            .latest_worker_time()
            .saturating_since(process.created_at);
        let memory_mib = process.memory_mib;
        // Restore the reservation actually taken at allocation time — the
        // leased cores, not the worker count, which oversubscribed
        // allocations inflate past the reservation.
        let cores = process.leased_cores;
        process.stop_serving();
        // Offer the sandbox to the warm pool before destroying it: a parked
        // parent turns a later allocation of the same (sandbox, package)
        // into a µs-scale resume or fork source. Admission decides (pool
        // disabled or key at capacity → normal teardown, billed once).
        let parked = self
            .warm_pool
            .park(process.sandbox.lock().clone(), self.clock.now())
            .is_some();
        if !parked {
            if let Some(teardown) = process.sandbox.lock().terminate() {
                self.clock.advance(teardown);
            }
        }
        if let Some(billing) = self.billing.lock().as_ref() {
            billing.record_allocation(allocation_time, memory_mib);
            let _ = billing.flush();
        }
        // Release the process guard before re-taking the allocator lock:
        // allocator state ranks below the process lock (reap/cleanup hold
        // it while locking individual processes), so holding the process
        // across this acquisition would invert the order.
        drop(process);
        let mut state = self.state.lock();
        state.available = state.available.add(&NodeResources { cores, memory_mib });
        Ok(stats)
    }

    /// Push the lease deadline of every process serving `lease_id` forward to
    /// `expires_at` (lease renewal reaching the executor). Returns the number
    /// of processes whose deadline was extended.
    pub fn extend_lease(&self, lease_id: u64, expires_at: SimTime) -> usize {
        let processes: Vec<Arc<OrderedMutex<ExecutorProcess>>> =
            self.state.lock().processes.values().cloned().collect();
        let mut extended = 0;
        for process in processes {
            let process = process.lock();
            if process.lease_id == lease_id {
                process.deadline.extend(expires_at);
                extended += 1;
            }
        }
        extended
    }

    /// Deallocate processes whose lease deadline has passed at `now`,
    /// returning their reservations to the node pool. Returns the number of
    /// processes reaped.
    pub fn reap_expired(&self, now: SimTime) -> usize {
        let expired_ids: Vec<u64> = {
            let state = self.state.lock();
            state
                .processes
                .iter()
                .filter(|(_, p)| p.lock().deadline.is_expired(now))
                .map(|(id, _)| *id)
                .collect()
        };
        let mut count = 0;
        for id in expired_ids {
            // Re-check right before tearing down: a renewal may have pushed
            // the deadline forward between the snapshot and this point, and
            // reaping a freshly renewed lease would strand its client.
            let still_expired = self
                .state
                .lock()
                .processes
                .get(&id)
                .is_some_and(|p| p.lock().deadline.is_expired(now));
            if still_expired && self.deallocate(id).is_ok() {
                count += 1;
            }
        }
        count
    }

    /// Tear down every executor process without returning resources to the
    /// pool (the node itself was reclaimed or failed) and refuse future
    /// allocations. Returns the number of processes terminated.
    pub fn terminate_all(&self) -> usize {
        self.alive.store(false, Ordering::Release);
        let processes: Vec<Arc<OrderedMutex<ExecutorProcess>>> = {
            let mut state = self.state.lock();
            std::mem::take(&mut state.processes).into_values().collect()
        };
        let count = processes.len();
        for process in processes {
            process.lock().shutdown();
        }
        count
    }

    /// Remove processes that have been idle longer than the configured idle
    /// timeout (virtual time). Returns the number of processes reclaimed.
    pub fn cleanup_idle(&self, now: SimTime) -> usize {
        let idle_ids: Vec<u64> = {
            let state = self.state.lock();
            state
                .processes
                .iter()
                .filter(|(_, p)| {
                    let p = p.lock();
                    let last = (*p.last_used.lock()).max(p.latest_worker_time());
                    now.saturating_since(last) > self.config.executor_idle_timeout
                })
                .map(|(id, _)| *id)
                .collect()
        };
        let count = idle_ids.len();
        for id in idle_ids {
            let _ = self.deallocate(id);
        }
        count
    }
}

/// A spot executor: one node's worth of harvested resources offered to rFaaS.
pub struct SpotExecutor {
    name: String,
    node: Arc<FabricNode>,
    resources: NodeResources,
    allocator: LightweightAllocator,
    alive: AtomicBool,
    last_heartbeat_sent: OrderedMutex<Option<SimTime>>,
}

impl std::fmt::Debug for SpotExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpotExecutor")
            .field("name", &self.name)
            .field("resources", &self.resources)
            .finish()
    }
}

impl SpotExecutor {
    /// Offer `resources` of node `name` to the platform.
    pub fn new(
        fabric: &Arc<Fabric>,
        name: &str,
        resources: NodeResources,
        registry: FunctionRegistry,
        config: RFaasConfig,
    ) -> Arc<SpotExecutor> {
        let node = fabric.add_node(name);
        Arc::new(SpotExecutor {
            name: name.to_string(),
            node: Arc::clone(&node),
            resources,
            allocator: LightweightAllocator::new(
                Arc::clone(fabric),
                node,
                name.to_string(),
                resources,
                registry,
                ImageRegistry::new(),
                config,
            ),
            alive: AtomicBool::new(true),
            last_heartbeat_sent: OrderedMutex::new(ranks::EXECUTOR_HEARTBEAT, None),
        })
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fabric node the executor runs on.
    pub fn node(&self) -> &Arc<FabricNode> {
        &self.node
    }

    /// Total resources offered.
    pub fn resources(&self) -> NodeResources {
        self.resources
    }

    /// The node's lightweight allocator.
    pub fn allocator(&self) -> &LightweightAllocator {
        &self.allocator
    }

    /// Whether the node is still up and heartbeating.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate the node being reclaimed by the batch system (or crashing):
    /// heartbeats stop and every executor process is torn down, which
    /// disconnects the clients holding leases here. Returns the number of
    /// processes terminated.
    pub fn fail(&self) -> usize {
        self.alive.store(false, Ordering::Release);
        self.allocator.terminate_all()
    }

    /// Emit a heartbeat if one is due at `now` (the allocator pings the
    /// manager every `interval`, Sec. III-B). Dead executors emit nothing —
    /// that silence is what the manager's failure detector keys on. Returns
    /// the heartbeat timestamp when one was emitted.
    pub fn emit_heartbeat_if_due(&self, now: SimTime, interval: SimDuration) -> Option<SimTime> {
        if !self.is_alive() {
            return None;
        }
        let mut last = self.last_heartbeat_sent.lock();
        let due = match *last {
            None => true,
            Some(previous) => now.saturating_since(previous) >= interval,
        };
        if due {
            *last = Some(now);
            Some(now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::echo_function;

    fn test_lease(cores: u32, package: &str) -> Lease {
        Lease {
            id: 1,
            executor_node: "exec-0".into(),
            cores,
            memory_mib: 1024,
            expires_at: SimTime::from_secs(3600),
            sandbox: SandboxType::BareMetal,
            package: package.into(),
            billing_slot: 0,
        }
    }

    fn registry_with_echo() -> FunctionRegistry {
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("echo-pkg").with_function(echo_function()));
        registry
    }

    fn executor() -> Arc<SpotExecutor> {
        let fabric = Fabric::with_defaults();
        SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 8,
                memory_mib: 32 * 1024,
            },
            registry_with_echo(),
            RFaasConfig::default(),
        )
    }

    fn executor_with_pool(capacity: usize) -> Arc<SpotExecutor> {
        let fabric = Fabric::with_defaults();
        let config = RFaasConfig {
            warm_pool_capacity: capacity,
            ..RFaasConfig::default()
        };
        SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 8,
                memory_mib: 32 * 1024,
            },
            registry_with_echo(),
            config,
        )
    }

    /// Allocate and deallocate once so a warm parent is parked for
    /// `echo-pkg`, returning the pool-enabled executor.
    fn executor_with_parked_parent() -> Arc<SpotExecutor> {
        let exec = executor_with_pool(2);
        let first = exec
            .allocator()
            .allocate(&test_lease(1, "echo-pkg"))
            .unwrap();
        exec.allocator().deallocate(first.process_id).unwrap();
        assert_eq!(
            exec.allocator()
                .warm_pool()
                .idle_for(SandboxType::BareMetal, "echo-pkg"),
            1
        );
        exec
    }

    #[test]
    fn core_slot_is_exclusive() {
        let slot = CoreSlot::default();
        assert!(slot.try_acquire());
        assert!(!slot.try_acquire());
        assert!(slot.is_busy());
        slot.release();
        assert!(!slot.is_busy());
        assert!(slot.try_acquire());
    }

    #[test]
    fn allocation_reserves_and_deallocation_restores_resources() {
        let exec = executor();
        let lease = test_lease(4, "echo-pkg");
        let result = exec.allocator().allocate(&lease).unwrap();
        assert_eq!(result.workers.len(), 4);
        assert_eq!(exec.allocator().available().cores, 4);
        assert_eq!(exec.allocator().process_count(), 1);
        let stats = exec.allocator().deallocate(result.process_id).unwrap();
        assert_eq!(stats.invocations, 0);
        assert_eq!(exec.allocator().available().cores, 8);
        assert_eq!(exec.allocator().process_count(), 0);
    }

    #[test]
    fn allocation_fails_for_unknown_package() {
        let exec = executor();
        let lease = test_lease(1, "missing-pkg");
        let err = exec.allocator().allocate(&lease).unwrap_err();
        assert!(matches!(err, RFaasError::UnknownPackage(_)));
        // Resources must not leak on the failure path.
        assert_eq!(exec.allocator().available().cores, 8);
    }

    #[test]
    fn allocation_fails_when_resources_exhausted() {
        let exec = executor();
        let lease = test_lease(6, "echo-pkg");
        let first = exec.allocator().allocate(&lease).unwrap();
        let err = exec
            .allocator()
            .allocate(&test_lease(6, "echo-pkg"))
            .unwrap_err();
        assert!(matches!(err, RFaasError::InsufficientResources { .. }));
        exec.allocator().deallocate(first.process_id).unwrap();
    }

    #[test]
    fn cold_start_breakdown_matches_sandbox_scale() {
        let exec = executor();
        let result = exec
            .allocator()
            .allocate(&test_lease(1, "echo-pkg"))
            .unwrap();
        let total = result.breakdown.total().as_millis_f64();
        assert!(
            (10.0..80.0).contains(&total),
            "bare-metal cold start {total} ms"
        );
        assert!(result.breakdown.code_submission.as_millis_f64() < 10.0);
        exec.allocator().deallocate(result.process_id).unwrap();
    }

    #[test]
    fn docker_allocation_is_slower_and_uses_virtual_function() {
        let exec = executor();
        let mut lease = test_lease(1, "echo-pkg");
        lease.sandbox = SandboxType::Docker;
        let result = exec.allocator().allocate(&lease).unwrap();
        assert!(result.breakdown.total().as_secs_f64() > 2.0);
        exec.allocator().deallocate(result.process_id).unwrap();
    }

    #[test]
    fn deallocate_unknown_process_errors() {
        let exec = executor();
        assert!(matches!(
            exec.allocator().deallocate(999),
            Err(RFaasError::UnknownLease(999))
        ));
    }

    #[test]
    fn zero_worker_allocation_is_rejected() {
        let exec = executor();
        let err = exec
            .allocator()
            .allocate_with_workers(&test_lease(1, "echo-pkg"), 0, PollingMode::Hot)
            .unwrap_err();
        assert!(matches!(err, RFaasError::Internal(_)));
    }

    #[test]
    fn worker_mode_can_be_switched() {
        let exec = executor();
        let result = exec
            .allocator()
            .allocate(&test_lease(1, "echo-pkg"))
            .unwrap();
        let process = exec.allocator().process(result.process_id).unwrap();
        {
            let process = process.lock();
            let worker = &process.workers()[0];
            assert_eq!(worker.mode(), PollingMode::Hot);
            worker.set_mode(PollingMode::Warm);
            assert_eq!(worker.mode(), PollingMode::Warm);
        }
        exec.allocator().deallocate(result.process_id).unwrap();
    }

    #[test]
    fn oversubscribed_deallocate_restores_exactly_the_leased_cores() {
        let exec = executor();
        let lease = test_lease(2, "echo-pkg");
        // 4 workers over 2 leased cores: only 2 cores are reserved.
        let result = exec
            .allocator()
            .allocate_with_workers(&lease, 2 * lease.cores as usize, PollingMode::Warm)
            .unwrap();
        assert_eq!(result.workers.len(), 4);
        assert_eq!(exec.allocator().available().cores, 6);
        exec.allocator().deallocate(result.process_id).unwrap();
        // Regression: restoring workers.len() cores would inflate the pool
        // to 10 here (and leak cores for undersubscribed allocations).
        assert_eq!(exec.allocator().available().cores, 8);
        assert_eq!(
            exec.allocator().available().memory_mib,
            exec.resources().memory_mib
        );
    }

    #[test]
    fn spawn_failure_rolls_back_reservation_and_partial_state() {
        let exec = executor();
        exec.allocator().inject_spawn_failure(2);
        let err = exec
            .allocator()
            .allocate_with_workers(&test_lease(4, "echo-pkg"), 4, PollingMode::Hot)
            .unwrap_err();
        assert!(matches!(err, RFaasError::Internal(_)));
        // Regression: the reservation debited before spawning must be
        // restored, no half-built process may linger, and the two workers
        // spawned before the failure must be shut down (drop joins them).
        assert_eq!(exec.allocator().available().cores, 8);
        assert_eq!(
            exec.allocator().available().memory_mib,
            exec.resources().memory_mib
        );
        assert_eq!(exec.allocator().process_count(), 0);
        // The hook disarms itself: the next allocation succeeds.
        let result = exec
            .allocator()
            .allocate(&test_lease(4, "echo-pkg"))
            .unwrap();
        exec.allocator().deallocate(result.process_id).unwrap();
    }

    #[test]
    fn reap_expired_reclaims_processes_after_the_deadline() {
        let exec = executor();
        let mut lease = test_lease(2, "echo-pkg");
        lease.expires_at = SimTime::from_secs(10);
        let result = exec.allocator().allocate(&lease).unwrap();
        assert_eq!(exec.allocator().reap_expired(SimTime::from_secs(9)), 0);
        assert_eq!(exec.allocator().process_count(), 1);
        assert_eq!(exec.allocator().reap_expired(SimTime::from_secs(10)), 1);
        assert_eq!(exec.allocator().process_count(), 0);
        assert_eq!(exec.allocator().available().cores, 8);
        assert!(exec.allocator().process(result.process_id).is_none());
    }

    #[test]
    fn extend_lease_pushes_the_process_deadline_forward() {
        let exec = executor();
        let mut lease = test_lease(1, "echo-pkg");
        lease.expires_at = SimTime::from_secs(10);
        let result = exec.allocator().allocate(&lease).unwrap();
        assert_eq!(
            exec.allocator()
                .extend_lease(lease.id, SimTime::from_secs(50)),
            1
        );
        // Extending an unknown lease touches nothing.
        assert_eq!(
            exec.allocator().extend_lease(999, SimTime::from_secs(99)),
            0
        );
        assert_eq!(exec.allocator().reap_expired(SimTime::from_secs(20)), 0);
        let process = exec.allocator().process(result.process_id).unwrap();
        assert_eq!(
            process.lock().deadline().expires_at(),
            SimTime::from_secs(50)
        );
        // The deadline is monotonic: an earlier extension is ignored.
        process.lock().deadline().extend(SimTime::from_secs(30));
        assert_eq!(
            process.lock().deadline().expires_at(),
            SimTime::from_secs(50)
        );
        exec.allocator().deallocate(result.process_id).unwrap();
    }

    #[test]
    fn failed_executor_terminates_processes_and_stops_heartbeating() {
        let exec = executor();
        exec.allocator()
            .allocate(&test_lease(2, "echo-pkg"))
            .unwrap();
        assert!(exec.is_alive());
        let interval = SimDuration::from_secs(5);
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(1), interval)
            .is_some());
        // Not due again until a full interval elapsed.
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(3), interval)
            .is_none());
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(6), interval)
            .is_some());
        assert_eq!(exec.fail(), 1);
        assert!(!exec.is_alive());
        assert_eq!(exec.allocator().process_count(), 0);
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(11), interval)
            .is_none());
    }

    #[test]
    fn heartbeat_at_time_zero_still_rate_limits() {
        let exec = executor();
        let interval = SimDuration::from_secs(5);
        // Regression: a ZERO sentinel made an emission at t=0 invisible, so
        // every later call emitted regardless of the interval.
        assert!(exec
            .emit_heartbeat_if_due(SimTime::ZERO, interval)
            .is_some());
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(1), interval)
            .is_none());
        assert!(exec
            .emit_heartbeat_if_due(SimTime::from_secs(5), interval)
            .is_some());
    }

    #[test]
    fn integer_sqrt_floors() {
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(1), 1);
        assert_eq!(integer_sqrt(3), 1);
        assert_eq!(integer_sqrt(4), 2);
        assert_eq!(integer_sqrt(15), 3);
        assert_eq!(integer_sqrt(16), 4);
        assert_eq!(integer_sqrt(17), 4);
    }

    #[test]
    fn srq_depth_is_sublinear_in_worker_count() {
        let exec = executor();
        let one = exec
            .allocator()
            .allocate_with_workers(&test_lease(2, "echo-pkg"), 1, PollingMode::Warm)
            .unwrap();
        let sixteen = exec
            .allocator()
            .allocate_with_workers(&test_lease(2, "echo-pkg"), 16, PollingMode::Warm)
            .unwrap();
        let config = RFaasConfig::default();
        let depth1 = exec
            .allocator()
            .srq_stats(one.process_id)
            .unwrap()
            .max_depth;
        let depth16 = exec
            .allocator()
            .srq_stats(sixteen.process_id)
            .unwrap()
            .max_depth;
        // A single worker still gets at least its old private ring depth.
        assert!(depth1 >= config.recv_queue_depth);
        // 16 workers share far fewer receive slots than 16 private rings
        // would pin — receive memory is sublinear in the connection count.
        assert!(
            depth16 < 16 * config.recv_queue_depth,
            "16-worker SRQ depth {depth16} should undercut 16 private rings"
        );
        assert!(depth16 * 4 <= 16 * depth1, "depth must grow sublinearly");
        exec.allocator().deallocate(one.process_id).unwrap();
        exec.allocator().deallocate(sixteen.process_id).unwrap();
    }

    #[test]
    fn srq_stats_of_unknown_process_are_empty() {
        let exec = executor();
        assert!(exec.allocator().srq_stats(999).is_none());
        assert_eq!(exec.allocator().srq_high_watermark(999), 0);
    }

    #[test]
    fn cleanup_idle_reclaims_stale_processes() {
        let exec = executor();
        let result = exec
            .allocator()
            .allocate(&test_lease(1, "echo-pkg"))
            .unwrap();
        assert_eq!(exec.allocator().process_count(), 1);
        // Nothing is idle yet relative to the allocator clock.
        assert_eq!(
            exec.allocator()
                .cleanup_idle(exec.allocator().clock().now()),
            0
        );
        // Far in the virtual future everything is idle.
        let far = exec.allocator().clock().now() + SimDuration::from_secs(3600);
        assert_eq!(exec.allocator().cleanup_idle(far), 1);
        assert_eq!(exec.allocator().process_count(), 0);
        assert!(exec.allocator().process(result.process_id).is_none());
    }

    #[test]
    fn deallocate_parks_into_warm_pool_when_enabled() {
        let exec = executor_with_pool(2);
        let result = exec
            .allocator()
            .allocate(&test_lease(4, "echo-pkg"))
            .unwrap();
        exec.allocator().deallocate(result.process_id).unwrap();
        // The sandbox was parked, not torn down, and the reservation was
        // still restored in full.
        let pool = exec.allocator().warm_pool();
        assert_eq!(pool.idle_for(SandboxType::BareMetal, "echo-pkg"), 1);
        assert_eq!(pool.stats().returned, 1);
        assert_eq!(exec.allocator().available().cores, 8);
    }

    #[test]
    fn disabled_pool_never_parks() {
        let exec = executor();
        let result = exec
            .allocator()
            .allocate(&test_lease(1, "echo-pkg"))
            .unwrap();
        exec.allocator().deallocate(result.process_id).unwrap();
        let pool = exec.allocator().warm_pool();
        assert_eq!(pool.idle_for(SandboxType::BareMetal, "echo-pkg"), 0);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn fork_allocation_is_microseconds_and_faults_lazily() {
        let exec = executor_with_parked_parent();
        let result = exec
            .allocator()
            .allocate_with_policy(
                &test_lease(1, "echo-pkg"),
                1,
                PollingMode::Warm,
                AllocationPolicy::Fork,
            )
            .unwrap();
        // Fork setup is µs-scale — orders of magnitude below the ~17 ms
        // bare-metal cold spawn — and submits no code (the snapshot already
        // holds the package).
        let total = result.breakdown.total().as_micros_f64();
        assert!(total < 100.0, "forked allocation took {total} µs");
        assert!(result.breakdown.code_submission.is_zero());
        // The child starts with an empty address space: every page is still
        // to be faulted in over one-sided READs, none served yet.
        let fork = exec.allocator().fork_state(result.process_id).unwrap();
        assert!(fork.total_pages() > 0);
        assert_eq!(fork.pages_faulted(), 0);
        assert!(!fork.is_complete());
        // The parent stays parked and can seed further forks.
        assert_eq!(
            exec.allocator()
                .warm_pool()
                .idle_for(SandboxType::BareMetal, "echo-pkg"),
            1
        );
    }

    #[test]
    fn warm_pool_hit_resumes_the_parked_parent() {
        let exec = executor_with_parked_parent();
        let result = exec
            .allocator()
            .allocate_with_policy(
                &test_lease(1, "echo-pkg"),
                1,
                PollingMode::Warm,
                AllocationPolicy::WarmPool,
            )
            .unwrap();
        // A pool hit pays only the paused→running resume (150 µs scale) and
        // consumes the parked parent.
        let total = result.breakdown.total().as_micros_f64();
        assert!(
            (100.0..1000.0).contains(&total),
            "warm-pool hit took {total} µs"
        );
        assert!(result.breakdown.code_submission.is_zero());
        assert!(exec.allocator().fork_state(result.process_id).is_none());
        assert_eq!(
            exec.allocator()
                .warm_pool()
                .idle_for(SandboxType::BareMetal, "echo-pkg"),
            0
        );
        assert_eq!(exec.allocator().warm_pool().stats().hits, 1);
    }

    #[test]
    fn fork_and_warm_pool_degrade_to_cold_on_a_miss() {
        for policy in [AllocationPolicy::Fork, AllocationPolicy::WarmPool] {
            let exec = executor_with_pool(2); // enabled but empty
            let result = exec
                .allocator()
                .allocate_with_policy(&test_lease(1, "echo-pkg"), 1, PollingMode::Hot, policy)
                .unwrap();
            assert!(
                result.breakdown.total().as_millis_f64() > 10.0,
                "a pool miss must pay the full cold spawn"
            );
            assert!(exec.allocator().fork_state(result.process_id).is_none());
            assert_eq!(exec.allocator().warm_pool().stats().misses, 1);
        }
    }

    #[test]
    fn idle_warm_parents_are_evicted_after_the_timeout() {
        let exec = executor_with_parked_parent();
        let clock = Arc::clone(exec.allocator().clock());
        // Under the 120 s idle timeout nothing is evicted.
        assert_eq!(exec.allocator().evict_warm_parents(clock.now()), 0);
        let late = clock.now() + SimDuration::from_secs(3600);
        assert_eq!(exec.allocator().evict_warm_parents(late), 1);
        assert_eq!(
            exec.allocator()
                .warm_pool()
                .idle_for(SandboxType::BareMetal, "echo-pkg"),
            0
        );
        assert_eq!(exec.allocator().warm_pool().stats().evictions, 1);
    }
}
