//! The resource manager: leases, executor registry, heartbeats and billing.
//!
//! rFaaS splits allocation from invocation (Sec. III-A/B): clients involve
//! the resource manager exactly once per lease, and every subsequent warm or
//! hot invocation goes straight to the executor over RDMA. The manager keeps
//! the inventory of spot executors advertised by cluster operators, grants
//! leases round-robin over executors that can fit the request, tracks
//! executor heartbeats for failure detection, and owns the billing database
//! that allocators update with RDMA atomics.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cluster_sim::NodeResources;
use rdma_fabric::{Endpoint, Fabric, FabricNode, QueuePair};
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::{SimDuration, SimTime, VirtualClock};

use rdma_fabric::DatagramSocket;

use crate::billing::{BillingClient, BillingDatabase, UsageRecord};
use crate::config::RFaasConfig;
use crate::error::{RFaasError, Result};
use crate::executor::SpotExecutor;
use crate::protocol::{ControlFrame, Lease, LeaseRequest};

/// How many executor-failure lease terminations the manager remembers for
/// [`ResourceManager::is_lease_terminated`] before pruning the oldest.
const TERMINATED_LEASE_HISTORY: usize = 4096;

struct RegisteredExecutor {
    executor: Arc<SpotExecutor>,
    available: NodeResources,
    last_heartbeat: SimTime,
    billing_slot: usize,
}

/// The rFaaS resource manager (one instance of the replicated service).
pub struct ResourceManager {
    config: RFaasConfig,
    fabric: Arc<Fabric>,
    node: Arc<FabricNode>,
    endpoint: Endpoint,
    clock: Arc<VirtualClock>,
    // First-contact control plane: allocation requests arrive as datagrams
    // (no RC handshake) and the verdict goes back to the client's reply
    // address. The mutex serialises concurrent pollers, not the socket.
    control: OrderedMutex<DatagramSocket>,
    control_address: String,
    // Both registries are ordered maps: placement, failure detection and
    // expiry sweeps iterate them, and HashMap key order would leak
    // run-to-run nondeterminism into all three.
    executors: OrderedMutex<BTreeMap<String, RegisteredExecutor>>,
    leases: OrderedMutex<BTreeMap<u64, Lease>>,
    // Leases killed because their executor died (as opposed to expiring or
    // being released): clients seeing ExecutorLost consult this to learn the
    // lease will never come back. Ordered so the oldest ids can be pruned —
    // capped at TERMINATED_LEASE_HISTORY to stay bounded under churn.
    terminated_leases: OrderedMutex<BTreeSet<u64>>,
    billing: BillingDatabase,
    // Manager-side halves of the billing connections; kept alive so executors
    // can keep issuing one-sided atomics without any manager CPU involvement.
    billing_qps: OrderedMutex<Vec<QueuePair>>,
    next_lease_id: AtomicU64,
    // Lease ids advance by this much per grant. A standalone manager strides
    // by 1; shard `i` of an S-shard ManagerGroup starts at `i + 1` and
    // strides by S, so every id's residue class identifies its shard and
    // cross-shard lookup needs no directory.
    lease_id_stride: u64,
    round_robin: AtomicUsize,
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager")
            .field("executors", &self.executor_count())
            .field("leases", &self.lease_count())
            .finish()
    }
}

impl ResourceManager {
    /// Create a manager attached to `fabric` on its own node.
    pub fn new(fabric: &Arc<Fabric>, config: RFaasConfig) -> Arc<ResourceManager> {
        Self::with_name(fabric, config, "resource-manager")
    }

    /// Create a manager on an explicitly named node (used when running a
    /// replicated manager group).
    pub fn with_name(
        fabric: &Arc<Fabric>,
        config: RFaasConfig,
        node_name: &str,
    ) -> Arc<ResourceManager> {
        Self::with_lease_namespace(fabric, config, node_name, 1, 1)
    }

    /// Create a manager issuing lease ids `first_lease_id, first_lease_id +
    /// stride, ...`. The sharded [`ManagerGroup`] gives each shard a disjoint
    /// residue class so leases stay globally unique and O(1) routable.
    ///
    /// [`ManagerGroup`]: crate::sharding::ManagerGroup
    pub fn with_lease_namespace(
        fabric: &Arc<Fabric>,
        config: RFaasConfig,
        node_name: &str,
        first_lease_id: u64,
        stride: u64,
    ) -> Arc<ResourceManager> {
        let node = fabric.add_node(node_name);
        let endpoint = Endpoint::new(fabric, &node);
        let billing = BillingDatabase::new(&endpoint);
        let control_address = format!("rfaas-ctl://{node_name}");
        let control = DatagramSocket::bind(&endpoint, &control_address);
        Arc::new(ResourceManager {
            config,
            fabric: Arc::clone(fabric),
            node,
            clock: Arc::clone(&endpoint.clock),
            endpoint,
            control: OrderedMutex::new(ranks::MANAGER_CONTROL, control),
            control_address,
            executors: OrderedMutex::new(ranks::MANAGER_EXECUTORS, BTreeMap::new()),
            leases: OrderedMutex::new(ranks::MANAGER_LEASES, BTreeMap::new()),
            terminated_leases: OrderedMutex::new(ranks::MANAGER_TERMINATED, BTreeSet::new()),
            billing,
            billing_qps: OrderedMutex::new(ranks::MANAGER_BILLING_QPS, Vec::new()),
            next_lease_id: AtomicU64::new(first_lease_id.max(1)),
            lease_id_stride: stride.max(1),
            round_robin: AtomicUsize::new(0),
        })
    }

    /// The manager's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The fabric node the manager runs on.
    pub fn node(&self) -> &Arc<FabricNode> {
        &self.node
    }

    /// The platform configuration.
    pub fn config(&self) -> &RFaasConfig {
        &self.config
    }

    /// Register a spot executor (a cluster operator adding idle resources,
    /// C2 in Fig. 4). Also wires the executor's allocator to the billing
    /// database through a dedicated queue pair.
    pub fn register_executor(&self, executor: &Arc<SpotExecutor>) {
        let slot = self.billing.reserve_slot();
        // Create the RDMA connection the allocator will use for billing
        // atomics: one manager-side QP (parked) and one executor-side QP.
        let manager_qp = QueuePair::new(&self.endpoint);
        let executor_endpoint = Endpoint::new(&self.fabric, executor.node())
            .with_clock(Arc::clone(executor.allocator().clock()));
        let executor_qp = QueuePair::new(&executor_endpoint);
        if QueuePair::connect_pair(&manager_qp, &executor_qp).is_ok() {
            executor
                .allocator()
                .attach_billing(Arc::new(BillingClient::new(
                    executor_qp,
                    self.billing.slot_handle(slot),
                )));
            self.billing_qps.lock().push(manager_qp);
        }
        self.executors.lock().insert(
            executor.name().to_string(),
            RegisteredExecutor {
                available: executor.resources(),
                executor: Arc::clone(executor),
                last_heartbeat: self.clock.now(),
                billing_slot: slot,
            },
        );
    }

    /// Remove an executor from the pool (node reclaimed by the batch system):
    /// no new leases will be placed there. Pair this with
    /// [`Self::terminate_leases_on`] — once the registry entry is gone,
    /// leases still mapped to the node can no longer credit their resources
    /// back on release and would linger as zombies. The [`LifecycleDriver`]
    /// does both for executors whose heartbeats stop.
    ///
    /// [`LifecycleDriver`]: crate::lifecycle::LifecycleDriver
    pub fn deregister_executor(&self, name: &str) -> bool {
        self.executors.lock().remove(name).is_some()
    }

    /// Number of registered executors.
    pub fn executor_count(&self) -> usize {
        self.executors.lock().len()
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.lock().len()
    }

    /// Look up a registered executor by node name.
    pub fn executor(&self, name: &str) -> Option<Arc<SpotExecutor>> {
        self.executors
            .lock()
            .get(name)
            .map(|r| Arc::clone(&r.executor))
    }

    /// All currently registered executors, in deterministic (name) order.
    pub fn registered_executors(&self) -> Vec<Arc<SpotExecutor>> {
        self.executors
            .lock()
            .values()
            .map(|r| Arc::clone(&r.executor))
            .collect()
    }

    /// Look up an active lease.
    pub fn lease(&self, id: u64) -> Option<Lease> {
        self.leases.lock().get(&id).cloned()
    }

    /// Grant a lease for `request`, charging the manager-side processing cost
    /// on `client_clock` (the client is blocked while the manager decides).
    ///
    /// Placement is round-robin over executors with enough free resources,
    /// which spreads leases the same way the replicated managers of
    /// Sec. III-D would.
    pub fn request_lease(
        &self,
        request: &LeaseRequest,
        client_clock: &VirtualClock,
    ) -> Result<(Lease, Arc<SpotExecutor>)> {
        // The request carries the client's timestamp: the manager synchronises
        // to it (conservative logical-time rule) so granted expiry instants
        // are meaningful to the client, then spends its processing budget,
        // which the client observes as added latency on the (cold) path.
        self.clock.advance_to(client_clock.now());
        self.clock.advance(self.config.allocation_processing_cost);
        client_clock.advance(self.config.allocation_processing_cost);
        self.place_request(request)
    }

    /// The datagram address allocation requests should be sent to.
    pub fn control_address(&self) -> &str {
        &self.control_address
    }

    /// Drain pending control-plane datagrams: each `Allocate` frame is placed
    /// (or denied) and answered at the sender's reply address. Returns how
    /// many frames were handled. Malformed or unexpected frames are dropped —
    /// an unreliable transport cannot promise the sender a diagnosis anyway.
    pub fn poll_control(&self) -> usize {
        let control = self.control.lock();
        let mut handled = 0;
        while let Some(msg) = control.try_recv() {
            handled += 1;
            let (reply_to, request) = match ControlFrame::decode(&msg.payload) {
                Ok(ControlFrame::Allocate { reply_to, request }) => (reply_to, request),
                _ => continue,
            };
            self.clock.advance(self.config.allocation_processing_cost);
            let frame = match self.place_request(&request) {
                Ok((lease, _)) => ControlFrame::Granted { lease },
                Err(err) => ControlFrame::Denied {
                    reason: err.to_string(),
                },
            };
            let _ = control.send_to(&reply_to, &frame.encode());
        }
        handled
    }

    /// Placement core shared by the RC path ([`Self::request_lease`]) and the
    /// datagram control plane: round-robin over executors with room, reserve
    /// the resources, mint the lease at the manager's current clock.
    fn place_request(&self, request: &LeaseRequest) -> Result<(Lease, Arc<SpotExecutor>)> {
        let mut executors = self.executors.lock();
        if executors.is_empty() {
            return Err(RFaasError::InsufficientResources {
                requested_cores: request.cores,
                requested_memory_mib: request.memory_mib,
            });
        }
        let needed = NodeResources {
            cores: request.cores,
            memory_mib: request.memory_mib,
        };
        // BTreeMap keys come back sorted, so the round-robin rotation below
        // is deterministic without a per-placement sort.
        let names: Vec<String> = executors.keys().cloned().collect();
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        let candidates = || {
            (0..names.len())
                .map(|i| &names[(start + i) % names.len()])
                .filter(|name| executors[*name].available.can_fit(&needed))
        };
        // Prefer an executor holding a warm parent for this (sandbox,
        // package): an allocation placed there can resume or fork instead of
        // cold-spawning. Fall back to plain round-robin over executors with
        // room; with warm pooling disabled the two passes choose identically.
        let chosen = candidates()
            .find(|name| {
                executors[*name]
                    .executor
                    .allocator()
                    .warm_pool()
                    .idle_for(request.sandbox, &request.package)
                    > 0
            })
            .or_else(|| candidates().next())
            .cloned()
            .ok_or(RFaasError::InsufficientResources {
                requested_cores: request.cores,
                requested_memory_mib: request.memory_mib,
            })?;

        let entry = executors.get_mut(&chosen).expect("chosen executor exists");
        entry.available = entry.available.saturating_sub(&needed);
        let lease = Lease {
            id: self
                .next_lease_id
                .fetch_add(self.lease_id_stride, Ordering::Relaxed),
            executor_node: chosen.clone(),
            cores: request.cores,
            memory_mib: request.memory_mib,
            expires_at: self.clock.now() + request.timeout,
            sandbox: request.sandbox,
            package: request.package.clone(),
            billing_slot: entry.billing_slot,
        };
        let executor = Arc::clone(&entry.executor);
        drop(executors);
        self.leases.lock().insert(lease.id, lease.clone());
        Ok((lease, executor))
    }

    /// Renew a lease: push its expiry to `now + extension` (never backwards),
    /// charging the renewal processing cost on both clocks. Fails if the
    /// lease no longer exists or its executor was deregistered — the client
    /// must then re-allocate.
    pub fn renew_lease(
        &self,
        lease_id: u64,
        extension: SimDuration,
        client_clock: &VirtualClock,
    ) -> Result<Lease> {
        self.clock.advance_to(client_clock.now());
        self.clock.advance(self.config.lease_renewal_cost);
        client_clock.advance(self.config.lease_renewal_cost);

        let mut leases = self.leases.lock();
        let lease = leases
            .get_mut(&lease_id)
            .ok_or(RFaasError::UnknownLease(lease_id))?;
        if !self.executors.lock().contains_key(&lease.executor_node) {
            return Err(RFaasError::ExecutorLost(lease.executor_node.clone()));
        }
        lease.expires_at = lease.expires_at.max(self.clock.now() + extension);
        Ok(lease.clone())
    }

    /// Release a lease before it expires; the executor notifies the manager
    /// so the resources re-enter future allocations (Sec. III-B).
    pub fn release_lease(&self, lease_id: u64) -> Result<()> {
        let lease = self
            .leases
            .lock()
            .remove(&lease_id)
            .ok_or(RFaasError::UnknownLease(lease_id))?;
        let mut executors = self.executors.lock();
        if let Some(entry) = executors.get_mut(&lease.executor_node) {
            entry.available = entry.available.add(&NodeResources {
                cores: lease.cores,
                memory_mib: lease.memory_mib,
            });
        }
        Ok(())
    }

    /// Mark every lease placed on `node` as terminated (the node died or was
    /// reclaimed before the leases expired). The executor's registry entry —
    /// and with it the node's resource accounting — must already be gone;
    /// clients discover the termination through [`Self::is_lease_terminated`]
    /// or an `ExecutorLost` on their connections. Returns the ids terminated.
    pub fn terminate_leases_on(&self, node: &str) -> Vec<u64> {
        let mut leases = self.leases.lock();
        let ids: Vec<u64> = leases
            .values()
            .filter(|l| l.executor_node == node)
            .map(|l| l.id)
            .collect();
        let mut terminated = self.terminated_leases.lock();
        for id in &ids {
            leases.remove(id);
            terminated.insert(*id);
        }
        // Lease ids are monotonic, so pruning the smallest drops the oldest
        // terminations; long-dead leases have no client left to ask about
        // them, and an unbounded set would leak under sustained churn.
        while terminated.len() > TERMINATED_LEASE_HISTORY {
            terminated.pop_first();
        }
        ids
    }

    /// Whether `lease_id` was killed by an executor failure (as opposed to
    /// expiring or being released normally).
    pub fn is_lease_terminated(&self, lease_id: u64) -> bool {
        self.terminated_leases.lock().contains(&lease_id)
    }

    /// Record a heartbeat from an executor's allocator.
    pub fn heartbeat(&self, executor_name: &str, now: SimTime) -> bool {
        let mut executors = self.executors.lock();
        match executors.get_mut(executor_name) {
            Some(entry) => {
                entry.last_heartbeat = entry.last_heartbeat.max(now);
                true
            }
            None => false,
        }
    }

    /// Executors whose last heartbeat is older than `timeout` at `now`; the
    /// manager announces their leases as terminated so clients can reallocate.
    pub fn failed_executors(&self, now: SimTime, timeout: SimDuration) -> Vec<String> {
        self.executors
            .lock()
            .iter()
            .filter(|(_, e)| now.saturating_since(e.last_heartbeat) > timeout)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Leases that have expired at `now`. The caller (or a manager background
    /// task) releases them to reclaim resources.
    pub fn expired_leases(&self, now: SimTime) -> Vec<u64> {
        self.leases
            .lock()
            .values()
            .filter(|l| !l.is_valid_at(now))
            .map(|l| l.id)
            .collect()
    }

    /// Aggregate resources still available across all registered executors.
    pub fn available_resources(&self) -> NodeResources {
        self.executors
            .lock()
            .values()
            .fold(NodeResources::ZERO, |acc, e| acc.add(&e.available))
    }

    /// The billing database (for reports and tests).
    pub fn billing(&self) -> &BillingDatabase {
        &self.billing
    }

    /// Usage accumulated for the executor hosting `lease`.
    pub fn lease_usage(&self, lease: &Lease) -> UsageRecord {
        self.billing.read_slot(lease.billing_slot)
    }

    /// Total monetary cost accumulated by the platform so far.
    pub fn total_cost(&self) -> f64 {
        self.billing.total_cost(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RFaasConfig;
    use sandbox::{echo_function, CodePackage, FunctionRegistry};

    fn registry() -> FunctionRegistry {
        let r = FunctionRegistry::new();
        r.deploy(CodePackage::minimal("echo-pkg").with_function(echo_function()));
        r
    }

    fn setup(executors: usize) -> (Arc<Fabric>, Arc<ResourceManager>, Vec<Arc<SpotExecutor>>) {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let mut execs = Vec::new();
        for i in 0..executors {
            let exec = SpotExecutor::new(
                &fabric,
                &format!("exec-{i}"),
                NodeResources {
                    cores: 16,
                    memory_mib: 64 * 1024,
                },
                registry(),
                RFaasConfig::default(),
            );
            manager.register_executor(&exec);
            execs.push(exec);
        }
        (fabric, manager, execs)
    }

    fn request() -> LeaseRequest {
        LeaseRequest::single_worker("echo-pkg")
            .with_cores(4)
            .with_memory_mib(4096)
    }

    #[test]
    fn lease_grant_reserves_resources() {
        let (_fabric, manager, _execs) = setup(1);
        assert_eq!(manager.executor_count(), 1);
        let client_clock = VirtualClock::new();
        let (lease, executor) = manager.request_lease(&request(), &client_clock).unwrap();
        assert_eq!(lease.cores, 4);
        assert_eq!(executor.name(), "exec-0");
        assert_eq!(manager.lease_count(), 1);
        assert_eq!(manager.available_resources().cores, 12);
        // The client pays the manager processing latency.
        assert!(client_clock.now().as_micros_f64() >= 500.0);
        assert!(manager.lease(lease.id).is_some());
    }

    #[test]
    fn release_returns_resources() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        let (lease, _) = manager.request_lease(&request(), &clock).unwrap();
        manager.release_lease(lease.id).unwrap();
        assert_eq!(manager.lease_count(), 0);
        assert_eq!(manager.available_resources().cores, 16);
        assert!(matches!(
            manager.release_lease(lease.id),
            Err(RFaasError::UnknownLease(_))
        ));
    }

    #[test]
    fn round_robin_spreads_leases_across_executors() {
        let (_fabric, manager, _execs) = setup(4);
        let clock = VirtualClock::new();
        let mut nodes = std::collections::HashSet::new();
        for _ in 0..4 {
            let (lease, _) = manager.request_lease(&request(), &clock).unwrap();
            nodes.insert(lease.executor_node);
        }
        assert!(
            nodes.len() >= 3,
            "round-robin should spread over executors, got {nodes:?}"
        );
    }

    #[test]
    fn placement_is_deterministic_across_managers() {
        // Two identically configured managers must place identical request
        // sequences identically — HashMap iteration order must not leak into
        // placement (regression: round-robin walked raw key order).
        let place = || -> Vec<String> {
            let (_fabric, manager, _execs) = setup(5);
            let clock = VirtualClock::new();
            (0..10)
                .map(|_| {
                    manager
                        .request_lease(&request(), &clock)
                        .unwrap()
                        .0
                        .executor_node
                })
                .collect()
        };
        let first = place();
        assert_eq!(first, place());
        // The sorted rotation also visits every executor.
        assert_eq!(
            first.iter().collect::<std::collections::HashSet<_>>().len(),
            5
        );
    }

    #[test]
    fn renew_lease_extends_expiry_and_charges_the_client() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        let mut req = request();
        req.timeout = SimDuration::from_secs(10);
        let (lease, _) = manager.request_lease(&req, &clock).unwrap();
        let before_renewal = clock.now();
        let renewed = manager
            .renew_lease(lease.id, SimDuration::from_secs(30), &clock)
            .unwrap();
        assert!(renewed.expires_at >= lease.expires_at + SimDuration::from_secs(19));
        assert_eq!(
            manager.lease(lease.id).unwrap().expires_at,
            renewed.expires_at
        );
        // The client pays the renewal processing cost.
        assert!(clock.now() > before_renewal);
        // Renewal never moves the expiry backwards.
        let shrunk = manager
            .renew_lease(lease.id, SimDuration::from_nanos(1), &clock)
            .unwrap();
        assert_eq!(shrunk.expires_at, renewed.expires_at);
        assert!(matches!(
            manager.renew_lease(999, SimDuration::from_secs(1), &clock),
            Err(RFaasError::UnknownLease(999))
        ));
    }

    #[test]
    fn renew_fails_after_executor_deregistration() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        let (lease, _) = manager.request_lease(&request(), &clock).unwrap();
        manager.deregister_executor("exec-0");
        assert!(matches!(
            manager.renew_lease(lease.id, SimDuration::from_secs(1), &clock),
            Err(RFaasError::ExecutorLost(_))
        ));
    }

    #[test]
    fn terminated_leases_are_removed_and_flagged() {
        let (_fabric, manager, _execs) = setup(2);
        let clock = VirtualClock::new();
        let (a, _) = manager.request_lease(&request(), &clock).unwrap();
        let (b, _) = manager.request_lease(&request(), &clock).unwrap();
        assert_ne!(a.executor_node, b.executor_node);
        manager.deregister_executor(&a.executor_node);
        let terminated = manager.terminate_leases_on(&a.executor_node);
        assert_eq!(terminated, vec![a.id]);
        assert!(manager.lease(a.id).is_none());
        assert!(manager.is_lease_terminated(a.id));
        assert!(!manager.is_lease_terminated(b.id));
        assert_eq!(manager.lease_count(), 1);
    }

    #[test]
    fn registered_executors_come_back_in_name_order() {
        let (_fabric, manager, _execs) = setup(3);
        let names: Vec<String> = manager
            .registered_executors()
            .iter()
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(names, vec!["exec-0", "exec-1", "exec-2"]);
    }

    #[test]
    fn manager_clock_syncs_to_client_requests() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        clock.advance(SimDuration::from_secs(100));
        let mut req = request();
        req.timeout = SimDuration::from_secs(10);
        let (lease, _) = manager.request_lease(&req, &clock).unwrap();
        // The lease expiry is anchored to the (later) client time, not the
        // manager's stale local clock.
        assert!(lease.expires_at >= SimTime::from_secs(110));
        assert!(manager.clock().now() >= SimTime::from_secs(100));
    }

    #[test]
    fn exhausted_pool_rejects_requests() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        // 16 cores / 4 per lease = 4 leases fit.
        for _ in 0..4 {
            manager.request_lease(&request(), &clock).unwrap();
        }
        let err = manager.request_lease(&request(), &clock).unwrap_err();
        assert!(matches!(err, RFaasError::InsufficientResources { .. }));
    }

    #[test]
    fn no_executors_means_no_lease() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let err = manager
            .request_lease(&request(), &VirtualClock::new())
            .unwrap_err();
        assert!(matches!(err, RFaasError::InsufficientResources { .. }));
    }

    #[test]
    fn deregistered_executor_is_skipped() {
        let (_fabric, manager, _execs) = setup(2);
        assert!(manager.deregister_executor("exec-0"));
        assert!(!manager.deregister_executor("exec-0"));
        let clock = VirtualClock::new();
        for _ in 0..3 {
            let (lease, _) = manager.request_lease(&request(), &clock).unwrap();
            assert_eq!(lease.executor_node, "exec-1");
        }
        assert!(manager.executor("exec-0").is_none());
        assert!(manager.executor("exec-1").is_some());
    }

    #[test]
    fn heartbeats_detect_failed_executors() {
        let (_fabric, manager, _execs) = setup(2);
        let t0 = manager.clock().now();
        assert!(manager.heartbeat("exec-0", t0 + SimDuration::from_secs(30)));
        assert!(!manager.heartbeat("unknown", t0));
        let failed =
            manager.failed_executors(t0 + SimDuration::from_secs(40), SimDuration::from_secs(15));
        assert_eq!(failed, vec!["exec-1".to_string()]);
    }

    #[test]
    fn expired_leases_are_reported() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        let mut req = request();
        req.timeout = SimDuration::from_secs(10);
        let (lease, _) = manager.request_lease(&req, &clock).unwrap();
        assert!(manager.expired_leases(manager.clock().now()).is_empty());
        let later = manager.clock().now() + SimDuration::from_secs(11);
        assert_eq!(manager.expired_leases(later), vec![lease.id]);
    }

    #[test]
    fn lease_namespace_strides_ids() {
        // Shard 1 of a 4-shard plane: ids 2, 6, 10, ... — the residue class
        // the group's cross-shard routing depends on.
        let fabric = Fabric::with_defaults();
        let manager =
            ResourceManager::with_lease_namespace(&fabric, RFaasConfig::default(), "m-1", 2, 4);
        let exec = SpotExecutor::new(
            &fabric,
            "exec-ns",
            NodeResources {
                cores: 16,
                memory_mib: 64 * 1024,
            },
            registry(),
            RFaasConfig::default(),
        );
        manager.register_executor(&exec);
        let clock = VirtualClock::new();
        let ids: Vec<u64> = (0..3)
            .map(|_| manager.request_lease(&request(), &clock).unwrap().0.id)
            .collect();
        assert_eq!(ids, vec![2, 6, 10]);
    }

    #[test]
    fn control_datagrams_grant_and_deny() {
        let (fabric, manager, _execs) = setup(1);
        let client_node = fabric.add_node("ctl-client");
        let ep = Endpoint::new(&fabric, &client_node);
        let sock = DatagramSocket::bind(&ep, "rfaas-clt://ctl-client/0");

        // 16 cores / 4 per request: four grants, then a denial.
        for _ in 0..5 {
            let frame = ControlFrame::Allocate {
                reply_to: sock.address().to_string(),
                request: request(),
            };
            sock.send_to(manager.control_address(), &frame.encode())
                .unwrap();
        }
        assert_eq!(manager.poll_control(), 5);
        assert_eq!(manager.poll_control(), 0);

        let mut grants = 0;
        let mut denials = 0;
        for _ in 0..5 {
            let reply = sock
                .recv_timeout(std::time::Duration::from_secs(1))
                .unwrap();
            match ControlFrame::decode(&reply.payload).unwrap() {
                ControlFrame::Granted { lease } => {
                    assert!(manager.lease(lease.id).is_some());
                    assert_eq!(lease.executor_node, "exec-0");
                    grants += 1;
                }
                ControlFrame::Denied { reason } => {
                    assert!(!reason.is_empty());
                    denials += 1;
                }
                other => panic!("unexpected control reply {other:?}"),
            }
        }
        assert_eq!((grants, denials), (4, 1));
        // Garbage frames are dropped without wedging the poller.
        sock.send_to(manager.control_address(), &[0xFF, 1, 2])
            .unwrap();
        assert_eq!(manager.poll_control(), 1);
        assert_eq!(manager.lease_count(), 4);
    }

    #[test]
    fn billing_database_starts_empty() {
        let (_fabric, manager, _execs) = setup(1);
        let clock = VirtualClock::new();
        let (lease, _) = manager.request_lease(&request(), &clock).unwrap();
        assert!(manager.lease_usage(&lease).is_empty());
        assert_eq!(manager.total_cost(), 0.0);
    }
}
