//! The completion-driven reactor: one event loop driving every in-flight
//! invocation of a client thread.
//!
//! The pre-reactor client blocked each waiter on its own connection
//! (`wait_for` busy-rescans) and `CompletionSet::wait_any` re-scanned every
//! entry per call, so the sustainable in-flight depth per thread was
//! effectively the worker count. The reactor inverts the control flow: every
//! [`WorkerConnection`](crate::client) registers itself as a
//! `CompletionSource`, and a single [`Reactor::turn`] pumps all sources in
//! **registration order** (keeping virtual-time runs deterministic),
//! stashes results and dispatches registered continuations — each exactly
//! once — to the ready queues of the completion sets waiting on them. One
//! thread calling `turn` in a loop sustains thousands of outstanding
//! invocations across many sessions; hand-rolled futures
//! ([`crate::TypedFuture`], [`crate::CompletionSet`]) resolve off the ready
//! queues instead of rescanning. No external async runtime is involved: the
//! loop is a plain function call, so the offline shims stay sufficient and
//! virtual time stays bit-reproducible.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_core::sync::{ranks, OrderedMutex};

/// A drainable producer of invocation completions (a client worker
/// connection). `pump` must drain everything currently queued — stashing the
/// results where the owner finds them — and report each newly-stashed
/// invocation id through `sink`.
pub(crate) trait CompletionSource: Send + Sync {
    fn pump(&self, sink: &mut dyn FnMut(u32));
    fn is_connected(&self) -> bool;
}

/// Where a dispatched completion lands: the shared ready queue of a
/// completion set, and the entry index to push into it.
pub(crate) struct Continuation {
    pub(crate) ready: Arc<OrderedMutex<VecDeque<usize>>>,
    pub(crate) index: usize,
}

/// Counters exposed for regression tests and introspection: a well-behaved
/// reactor dispatches each continuation exactly once and sweeps each source
/// O(1) times per completion, never O(n).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Completed `turn` calls.
    pub turns: u64,
    /// Completions pumped out of sources.
    pub pumped: u64,
    /// Continuations dispatched to ready queues.
    pub dispatched: u64,
}

#[derive(Default)]
struct ReactorState {
    /// Registration order is dispatch order — the determinism contract.
    sources: Vec<(u64, Arc<dyn CompletionSource>)>,
    continuations: HashMap<(u64, u32), Continuation>,
    next_token: u64,
}

struct ReactorInner {
    /// Serialises turns: concurrent callers queue behind one sweep instead
    /// of racing over the same rings (the reactor replaces the per-connection
    /// `wait_lock` of the old client).
    turn_lock: OrderedMutex<()>,
    state: OrderedMutex<ReactorState>,
    /// Scratch reused across turns (guarded by `turn_lock`): the steady-state
    /// sweep performs no allocations.
    events: OrderedMutex<Vec<(u64, u32)>>,
    sweep: OrderedMutex<Vec<(u64, Arc<dyn CompletionSource>)>>,
    turns: AtomicU64,
    pumped: AtomicU64,
    dispatched: AtomicU64,
}

impl Default for ReactorInner {
    fn default() -> ReactorInner {
        ReactorInner {
            turn_lock: OrderedMutex::new(ranks::REACTOR_TURN, ()),
            state: OrderedMutex::new(ranks::REACTOR_STATE, ReactorState::default()),
            events: OrderedMutex::new(ranks::REACTOR_EVENTS, Vec::new()),
            sweep: OrderedMutex::new(ranks::REACTOR_SWEEP, Vec::new()),
            turns: AtomicU64::new(0),
            pumped: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
        }
    }
}

/// Handle to one reactor; cheap to clone, shareable across sessions.
#[derive(Clone, Default)]
pub struct Reactor {
    inner: Arc<ReactorInner>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Reactor")
            .field("sources", &self.inner.state.lock().sources.len())
            .field("stats", &stats)
            .finish()
    }
}

impl Reactor {
    /// A fresh reactor with no sources.
    pub fn new() -> Reactor {
        Reactor::default()
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            turns: self.inner.turns.load(Ordering::Relaxed),
            pumped: self.inner.pumped.load(Ordering::Relaxed),
            dispatched: self.inner.dispatched.load(Ordering::Relaxed),
        }
    }

    /// Register a source; the returned token scopes continuations to it.
    /// Sources are pumped in registration order on every turn.
    pub(crate) fn register_source(&self, source: Arc<dyn CompletionSource>) -> u64 {
        let mut state = self.inner.state.lock();
        state.next_token += 1;
        let token = state.next_token;
        state.sources.push((token, source));
        token
    }

    /// Remove a source. Continuations registered against it stay put: their
    /// owners detect the dead connection and run recovery.
    pub(crate) fn unregister_source(&self, token: u64) {
        self.inner.state.lock().sources.retain(|(t, _)| *t != token);
    }

    /// Arm a continuation: when the source registered under `token` reports
    /// `invocation_id`, push `index` onto `ready`. Dispatch is exactly-once —
    /// the continuation is consumed. The caller must re-check its result
    /// stash after arming (a concurrent turn may have pumped the completion
    /// just before the continuation existed); a duplicate ready entry from
    /// that re-check is harmless as long as consumers treat ready indices as
    /// hints (take-and-skip-empty).
    pub(crate) fn register_continuation(
        &self,
        token: u64,
        invocation_id: u32,
        ready: &Arc<OrderedMutex<VecDeque<usize>>>,
        index: usize,
    ) {
        self.inner.state.lock().continuations.insert(
            (token, invocation_id),
            Continuation {
                ready: Arc::clone(ready),
                index,
            },
        );
    }

    /// Drop a continuation that will never fire (its completion set is being
    /// abandoned).
    pub(crate) fn cancel_continuation(&self, token: u64, invocation_id: u32) {
        self.inner
            .state
            .lock()
            .continuations
            .remove(&(token, invocation_id));
    }

    /// One sweep of the event loop: pump every source in registration order,
    /// dispatch the continuations of everything that completed, and prune
    /// sources whose connections are gone (after their final drain). Returns
    /// the number of completions pumped — `0` means no progress, so the
    /// caller may yield or block on an external signal.
    pub fn turn(&self) -> usize {
        let _serialised = self.inner.turn_lock.lock();
        let mut sweep = self.inner.sweep.lock();
        let mut events = self.inner.events.lock();
        sweep.clear();
        sweep.extend(
            self.inner
                .state
                .lock()
                .sources
                .iter()
                .map(|(t, s)| (*t, Arc::clone(s))),
        );
        events.clear();
        let mut dead = 0usize;
        for (token, source) in sweep.iter() {
            source.pump(&mut |id| events.push((*token, id)));
            if !source.is_connected() {
                dead += 1;
            }
        }
        let progressed = events.len();
        if progressed > 0 || dead > 0 {
            let mut state = self.inner.state.lock();
            let mut dispatched = 0u64;
            for (token, id) in events.drain(..) {
                if let Some(continuation) = state.continuations.remove(&(token, id)) {
                    continuation.ready.lock().push_back(continuation.index);
                    dispatched += 1;
                }
            }
            if dead > 0 {
                // A disconnected source can never produce another completion:
                // it was drained above, so dropping it now loses nothing.
                state.sources.retain(|(_, source)| source.is_connected());
            }
            self.inner
                .dispatched
                .fetch_add(dispatched, Ordering::Relaxed);
        }
        self.inner
            .pumped
            .fetch_add(progressed as u64, Ordering::Relaxed);
        self.inner.turns.fetch_add(1, Ordering::Relaxed);
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicBool;

    /// Deterministic stand-in for a worker connection: completions are queued
    /// by the test and drained by `pump`.
    #[derive(Default)]
    struct MockSource {
        queued: Mutex<VecDeque<u32>>,
        stashed: Mutex<Vec<u32>>,
        connected: AtomicBool,
    }

    impl MockSource {
        fn new() -> Arc<MockSource> {
            let source = Arc::new(MockSource::default());
            source.connected.store(true, Ordering::Relaxed);
            source
        }

        fn push(&self, id: u32) {
            self.queued.lock().push_back(id);
        }
    }

    impl CompletionSource for MockSource {
        fn pump(&self, sink: &mut dyn FnMut(u32)) {
            while let Some(id) = self.queued.lock().pop_front() {
                self.stashed.lock().push(id);
                sink(id);
            }
        }

        fn is_connected(&self) -> bool {
            self.connected.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn turn_dispatches_registered_continuations_once() {
        let reactor = Reactor::new();
        let source = MockSource::new();
        let token = reactor.register_source(source.clone());
        let ready = Arc::new(OrderedMutex::new(ranks::REACTOR_READY, VecDeque::new()));
        reactor.register_continuation(token, 7, &ready, 3);
        source.push(7);
        assert_eq!(reactor.turn(), 1);
        assert_eq!(ready.lock().iter().copied().collect::<Vec<_>>(), vec![3]);
        // The continuation was consumed: replaying the id dispatches nothing.
        source.push(7);
        assert_eq!(reactor.turn(), 1);
        assert_eq!(ready.lock().len(), 1);
        let stats = reactor.stats();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.pumped, 2);
    }

    #[test]
    fn sources_are_pumped_in_registration_order() {
        let reactor = Reactor::new();
        let first = MockSource::new();
        let second = MockSource::new();
        let t1 = reactor.register_source(first.clone());
        let t2 = reactor.register_source(second.clone());
        let ready = Arc::new(OrderedMutex::new(ranks::REACTOR_READY, VecDeque::new()));
        reactor.register_continuation(t2, 1, &ready, 20);
        reactor.register_continuation(t1, 1, &ready, 10);
        // Queue the later-registered source first; dispatch order must still
        // follow registration order.
        second.push(1);
        first.push(1);
        assert_eq!(reactor.turn(), 2);
        assert_eq!(
            ready.lock().iter().copied().collect::<Vec<_>>(),
            vec![10, 20]
        );
    }

    #[test]
    fn dead_sources_are_pruned_after_their_final_drain() {
        let reactor = Reactor::new();
        let source = MockSource::new();
        let token = reactor.register_source(source.clone());
        let ready = Arc::new(OrderedMutex::new(ranks::REACTOR_READY, VecDeque::new()));
        reactor.register_continuation(token, 9, &ready, 0);
        // The completion queued before the disconnect must still dispatch.
        source.push(9);
        source.connected.store(false, Ordering::Relaxed);
        assert_eq!(reactor.turn(), 1);
        assert_eq!(ready.lock().len(), 1);
        assert_eq!(reactor.inner.state.lock().sources.len(), 0);
    }

    proptest::proptest! {
        // No lost and no duplicate dispatches under arbitrary assignments of
        // completions to sources and arbitrary push/turn interleavings.
        #[test]
        fn dispatch_is_exactly_once_under_arbitrary_interleavings(
            assignment: Vec<u8>,
            turn_after: Vec<bool>,
        ) {
            let reactor = Reactor::new();
            let sources: Vec<_> = (0..4).map(|_| MockSource::new()).collect();
            let tokens: Vec<_> = sources
                .iter()
                .map(|s| reactor.register_source(s.clone()))
                .collect();
            let ready = Arc::new(OrderedMutex::new(ranks::REACTOR_READY, VecDeque::new()));
            for (index, pick) in assignment.iter().enumerate() {
                reactor.register_continuation(
                    tokens[(*pick % 4) as usize],
                    index as u32,
                    &ready,
                    index,
                );
            }
            // Interleave deliveries with turns as the bool tape dictates.
            for (index, pick) in assignment.iter().enumerate() {
                sources[(*pick % 4) as usize].push(index as u32);
                if turn_after.get(index % turn_after.len().max(1)).copied().unwrap_or(false) {
                    reactor.turn();
                }
            }
            // Final drain: everything still queued dispatches now.
            while reactor.turn() > 0 {}
            let mut seen: Vec<usize> = ready.lock().iter().copied().collect();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..assignment.len()).collect();
            proptest::prop_assert_eq!(seen, expected);
            proptest::prop_assert_eq!(reactor.stats().dispatched, assignment.len() as u64);
            proptest::prop_assert_eq!(reactor.stats().pumped, assignment.len() as u64);
        }
    }
}
