//! The rFaaS client library: invoker, RDMA buffers and invocation futures.
//!
//! This is the Rust equivalent of the paper's C++ programming model
//! (Sec. IV-B, Fig. 7, Listing 2): an [`Invoker`] acquires leases, connects
//! directly to the executor workers, and submits function invocations by
//! writing the header and payload straight into the workers' registered
//! memory. Results are represented by [`InvocationFuture`]s and land directly
//! in client-side [`Buffer`]s written remotely by the executor.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rdma_fabric::{
    connect_with_timeout, AccessFlags, Endpoint, Fabric, MemoryRegion, ProtectionDomain, QueuePair,
    RecvRequest, RemoteMemoryHandle, SendRequest, Sge,
};
use sandbox::CodePackage;
use sim_core::{SimDuration, VirtualClock};

use crate::config::{PollingMode, RFaasConfig};
use crate::error::{RFaasError, Result};
use crate::executor::SpotExecutor;
use crate::manager::ResourceManager;
use crate::protocol::{
    ImmValue, InvocationHeader, Lease, LeaseRequest, ResultStatus, INVOCATION_HEADER_BYTES,
};

/// A registered, page-aligned client buffer.
///
/// Input buffers reserve space for the invocation header in front of the
/// payload, exactly like the paper's allocator ("automatically expanded with
/// the function's header"); output buffers are registered with remote-write
/// access so the executor can deposit results without client involvement.
#[derive(Debug, Clone)]
pub struct Buffer {
    region: MemoryRegion,
    header_space: usize,
}

impl Buffer {
    /// Bytes of payload the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.region.len() - self.header_space
    }

    /// The underlying registered region (header space included).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Offset of the payload within the region.
    pub fn payload_offset(&self) -> usize {
        self.header_space
    }

    /// Copy `data` into the payload area. Returns the payload length.
    pub fn write_payload(&self, data: &[u8]) -> Result<usize> {
        if data.len() > self.capacity() {
            return Err(RFaasError::PayloadTooLarge {
                payload: data.len(),
                capacity: self.capacity(),
            });
        }
        self.region
            .write(self.header_space, data)
            .map_err(RFaasError::from)?;
        Ok(data.len())
    }

    /// Copy `len` payload bytes out of the buffer.
    pub fn read_payload(&self, len: usize) -> Result<Vec<u8>> {
        self.region
            .read(self.header_space, len.min(self.capacity()))
            .map_err(RFaasError::from)
    }

    /// Fill the payload with an `f64` slice (the element type of every HPC
    /// workload in the paper's evaluation).
    pub fn write_f64(&self, values: &[f64]) -> Result<usize> {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_payload(&bytes)
    }

    /// Interpret `len_bytes` of payload as an `f64` slice.
    pub fn read_f64(&self, len_bytes: usize) -> Result<Vec<f64>> {
        let bytes = self.read_payload(len_bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Remote handle covering the payload area (what the executor writes to).
    pub fn remote_handle(&self) -> RemoteMemoryHandle {
        self.region
            .remote_handle_range(self.header_space, self.capacity())
            .expect("payload range within region")
    }
}

/// Allocates RDMA-registered buffers from the invoker's protection domain
/// (the `rfaas::allocator` of Listing 2).
#[derive(Debug, Clone)]
pub struct BufferAllocator {
    pd: ProtectionDomain,
}

impl BufferAllocator {
    /// Allocate an input buffer for payloads of up to `capacity` bytes; the
    /// header slot is added in front automatically.
    pub fn input(&self, capacity: usize) -> Buffer {
        Buffer {
            region: self
                .pd
                .register(INVOCATION_HEADER_BYTES + capacity, AccessFlags::LOCAL_ONLY),
            header_space: INVOCATION_HEADER_BYTES,
        }
    }

    /// Allocate an output buffer of `capacity` bytes the executor may write
    /// into remotely.
    pub fn output(&self, capacity: usize) -> Buffer {
        Buffer {
            region: self.pd.register(capacity, AccessFlags::REMOTE_WRITE),
            header_space: 0,
        }
    }
}

/// Breakdown of a cold start as observed by the client (Fig. 9's stacked
/// bars: connect to manager, submit allocation, spawn worker, submit code,
/// plus the direct worker connections).
#[derive(Debug, Clone, Default)]
pub struct ColdStartBreakdown {
    /// Establishing the connection to the resource manager.
    pub connect_to_manager: SimDuration,
    /// Submitting the allocation request and the manager's placement work.
    pub submit_allocation: SimDuration,
    /// Sandbox creation and worker-thread spawn on the executor node.
    pub spawn_workers: SimDuration,
    /// Transferring and loading the code package.
    pub submit_code: SimDuration,
    /// Establishing the direct RDMA connections to every worker.
    pub connect_to_workers: SimDuration,
}

impl ColdStartBreakdown {
    /// Total cold-start latency.
    pub fn total(&self) -> SimDuration {
        self.connect_to_manager
            + self.submit_allocation
            + self.spawn_workers
            + self.submit_code
            + self.connect_to_workers
    }
}

struct WorkerConnection {
    qp: QueuePair,
    remote_input: RemoteMemoryHandle,
    recv_scratch: MemoryRegion,
    outstanding: AtomicUsize,
    completed: Mutex<HashMap<u32, (usize, ResultStatus)>>,
    wait_lock: Mutex<()>,
    index: usize,
}

impl WorkerConnection {
    /// Wait until the result for `invocation_id` is available, using busy
    /// polling on the connection's completion queue.
    fn wait_for(&self, invocation_id: u32) -> Result<(usize, ResultStatus)> {
        loop {
            if let Some(result) = self.completed.lock().remove(&invocation_id) {
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                return Ok(result);
            }
            let _guard = self.wait_lock.lock();
            // Re-check: another waiter may have stashed our completion.
            if let Some(result) = self.completed.lock().remove(&invocation_id) {
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                return Ok(result);
            }
            match self.qp.recv_cq().busy_wait() {
                Some(wc) => {
                    let (id, status) = ImmValue::parse_response(wc.imm.unwrap_or(0));
                    self.completed.lock().insert(id, (wc.byte_len, status));
                }
                None => return Err(RFaasError::ExecutorLost(format!("worker {}", self.index))),
            }
        }
    }
}

/// The client-side invoker: manages leases, executor connections and
/// invocation submission (the `rfaas::invoker` of Listing 2).
pub struct Invoker {
    fabric: Arc<Fabric>,
    clock: Arc<VirtualClock>,
    pd: ProtectionDomain,
    node_name: String,
    config: RFaasConfig,
    manager: Arc<ResourceManager>,
    lease: Option<Lease>,
    executor: Option<Arc<SpotExecutor>>,
    process_id: Option<u64>,
    package: Option<CodePackage>,
    connections: Vec<Arc<WorkerConnection>>,
    next_invocation: AtomicU32,
    round_robin: AtomicUsize,
    cold_start: Option<ColdStartBreakdown>,
}

impl std::fmt::Debug for Invoker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invoker")
            .field("node", &self.node_name)
            .field("workers", &self.connections.len())
            .finish()
    }
}

impl Invoker {
    /// Create an invoker for a client application running on `client_node`.
    pub fn new(
        fabric: &Arc<Fabric>,
        client_node: &str,
        manager: &Arc<ResourceManager>,
        config: RFaasConfig,
    ) -> Invoker {
        Invoker {
            fabric: Arc::clone(fabric),
            clock: VirtualClock::shared(),
            pd: ProtectionDomain::new(),
            node_name: client_node.to_string(),
            config,
            manager: Arc::clone(manager),
            lease: None,
            executor: None,
            process_id: None,
            package: None,
            connections: Vec::new(),
            next_invocation: AtomicU32::new(1),
            round_robin: AtomicUsize::new(0),
            cold_start: None,
        }
    }

    /// The client's virtual clock (latency measurements are deltas of this).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Buffer allocator bound to the invoker's protection domain.
    pub fn allocator(&self) -> BufferAllocator {
        BufferAllocator {
            pd: self.pd.clone(),
        }
    }

    /// Number of connected executor workers.
    pub fn worker_count(&self) -> usize {
        self.connections.len()
    }

    /// Cold-start breakdown of the last allocation, if any.
    pub fn cold_start(&self) -> Option<&ColdStartBreakdown> {
        self.cold_start.as_ref()
    }

    /// The active lease, if any.
    pub fn lease(&self) -> Option<&Lease> {
        self.lease.as_ref()
    }

    /// Acquire a lease and spin up executor workers (the cold invocation path
    /// of Fig. 5/6). `mode` selects hot busy-polling or warm blocking waits
    /// on the executor side.
    pub fn allocate(
        &mut self,
        request: LeaseRequest,
        mode: PollingMode,
    ) -> Result<&ColdStartBreakdown> {
        if self.lease.is_some() {
            self.deallocate()?;
        }
        let mut breakdown = ColdStartBreakdown::default();

        // Step 1: connect to the resource manager.
        let t0 = self.clock.now();
        self.clock.advance(self.config.manager_connect_cost);
        breakdown.connect_to_manager = self.clock.now().saturating_since(t0);

        // Step 2: submit the allocation request, wait for the lease.
        let t1 = self.clock.now();
        self.clock.advance(self.config.allocation_submit_cost);
        let (lease, executor) = self.manager.request_lease(&request, &self.clock)?;
        breakdown.submit_allocation = self.clock.now().saturating_since(t1);

        // Step 3 + 4: the allocator spawns the sandboxed executor process and
        // loads the code package; the client waits for the whole thing.
        let t2 = self.clock.now();
        let allocation =
            executor
                .allocator()
                .allocate_with_workers(&lease, request.cores as usize, mode)?;
        self.clock.advance(allocation.breakdown.spawn.total());
        breakdown.spawn_workers = self.clock.now().saturating_since(t2);
        let t3 = self.clock.now();
        self.clock.advance(allocation.breakdown.code_submission);
        breakdown.submit_code = self.clock.now().saturating_since(t3);

        // Step 5: establish a direct RDMA connection to every worker thread
        // and learn where its input buffer lives.
        let t4 = self.clock.now();
        let client_node = self.fabric.add_node(&self.node_name);
        let mut connections = Vec::with_capacity(allocation.workers.len());
        for (index, worker) in allocation.workers.iter().enumerate() {
            let endpoint = Endpoint {
                fabric: Arc::clone(&self.fabric),
                node: Arc::clone(&client_node),
                clock: Arc::clone(&self.clock),
                pd: self.pd.clone(),
                function: rdma_fabric::DeviceFunction::Physical,
            };
            let qp = connect_with_timeout(&endpoint, &worker.address, Duration::from_secs(10))?;
            // Receive the worker's "hello" advertising its input buffer.
            let hello = self
                .pd
                .register(INVOCATION_HEADER_BYTES, AccessFlags::LOCAL_ONLY);
            qp.post_recv(RecvRequest {
                wr_id: u64::MAX,
                local: Sge::whole(&hello),
            })?;
            let wc = qp
                .recv_cq()
                .blocking_wait_timeout(Duration::from_secs(10))
                .ok_or_else(|| RFaasError::ExecutorLost(worker.address.clone()))?;
            if !wc.is_success() {
                return Err(RFaasError::ExecutorLost(worker.address.clone()));
            }
            let advertised = InvocationHeader::decode(&hello.read_all())?;
            let remote_input = RemoteMemoryHandle {
                rkey: advertised.result_rkey,
                offset: advertised.result_offset as usize,
                len: advertised.result_capacity as usize,
            };
            let recv_scratch = self.pd.register(8, AccessFlags::LOCAL_ONLY);
            connections.push(Arc::new(WorkerConnection {
                qp,
                remote_input,
                recv_scratch,
                outstanding: AtomicUsize::new(0),
                completed: Mutex::new(HashMap::new()),
                wait_lock: Mutex::new(()),
                index,
            }));
        }
        breakdown.connect_to_workers = self.clock.now().saturating_since(t4);

        self.package = Some(allocation.package.clone());
        self.process_id = Some(allocation.process_id);
        self.lease = Some(lease);
        self.executor = Some(executor);
        self.connections = connections;
        self.cold_start = Some(breakdown);
        Ok(self.cold_start.as_ref().expect("just set"))
    }

    /// Submit an invocation of `function` with `payload_len` bytes from
    /// `input`; the result will be written into `output`.
    pub fn submit(
        &self,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<InvocationFuture<'_>> {
        self.submit_on(None, function, input, payload_len, output)
    }

    /// Submit to a specific worker (used for explicit work partitioning and
    /// by the redirection path).
    pub fn submit_to_worker(
        &self,
        worker: usize,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<InvocationFuture<'_>> {
        self.submit_on(Some(worker), function, input, payload_len, output)
    }

    fn submit_on(
        &self,
        worker: Option<usize>,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<InvocationFuture<'_>> {
        if self.connections.is_empty() {
            return Err(RFaasError::NotAllocated);
        }
        let package = self.package.as_ref().ok_or(RFaasError::NotAllocated)?;
        let (function_index, _) = package
            .function_by_name(function)
            .ok_or_else(|| RFaasError::UnknownFunction(function.to_string()))?;
        if function_index > u8::MAX as usize {
            return Err(RFaasError::Internal("function index exceeds 255".into()));
        }
        let connection = match worker {
            Some(idx) => self
                .connections
                .get(idx)
                .cloned()
                .ok_or(RFaasError::NotAllocated)?,
            None => self.pick_connection(),
        };
        let wire_len = INVOCATION_HEADER_BYTES + payload_len;
        if wire_len > connection.remote_input.len {
            return Err(RFaasError::PayloadTooLarge {
                payload: wire_len,
                capacity: connection.remote_input.len,
            });
        }

        let invocation_id = self.next_invocation.fetch_add(1, Ordering::Relaxed) & 0x00FF_FFFF;

        // Fill the header in front of the payload: where the executor should
        // write the result.
        self.clock.advance(self.config.header_write_cost);
        let header = InvocationHeader::for_result_buffer(&output.remote_handle());
        input
            .region()
            .write(0, &header.encode())
            .map_err(RFaasError::from)?;

        // Post the receive that the executor's result write will consume,
        // then write header + payload into the worker's input buffer.
        connection.qp.post_recv(RecvRequest {
            wr_id: invocation_id as u64,
            local: Sge::whole(&connection.recv_scratch),
        })?;
        connection.qp.post_send(
            invocation_id as u64,
            SendRequest::WriteWithImm {
                local: Sge::range(input.region(), 0, wire_len),
                remote: connection.remote_input.slice(0, wire_len),
                imm: ImmValue::request(invocation_id, function_index as u8),
            },
            false,
        )?;
        connection.outstanding.fetch_add(1, Ordering::Relaxed);

        Ok(InvocationFuture {
            invoker: self,
            connection,
            invocation_id,
            function: function.to_string(),
            input: input.clone(),
            payload_len,
            output: output.clone(),
            redirections: 0,
        })
    }

    fn pick_connection(&self) -> Arc<WorkerConnection> {
        // Prefer an idle worker; otherwise round-robin over all of them.
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        let n = self.connections.len();
        for i in 0..n {
            let conn = &self.connections[(start + i) % n];
            if conn.outstanding.load(Ordering::Relaxed) == 0 {
                return Arc::clone(conn);
            }
        }
        Arc::clone(&self.connections[start % n])
    }

    /// Convenience wrapper: submit one invocation and wait for its result,
    /// returning the output length and the client-observed round-trip time.
    pub fn invoke_sync(
        &self,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<(usize, SimDuration)> {
        let start = self.clock.now();
        let future = self.submit(function, input, payload_len, output)?;
        let len = future.wait()?;
        Ok((len, self.clock.now().saturating_since(start)))
    }

    /// Release all executor resources and the lease (Listing 2's
    /// `invoker.deallocate()`).
    pub fn deallocate(&mut self) -> Result<()> {
        for conn in self.connections.drain(..) {
            conn.qp.disconnect();
        }
        if let (Some(executor), Some(process_id)) = (self.executor.take(), self.process_id.take()) {
            let _ = executor.allocator().deallocate(process_id);
        }
        if let Some(lease) = self.lease.take() {
            let _ = self.manager.release_lease(lease.id);
        }
        self.package = None;
        Ok(())
    }
}

impl Drop for Invoker {
    fn drop(&mut self) {
        let _ = self.deallocate();
    }
}

/// The in-flight result of a submitted invocation (`std::future`-style,
/// Sec. IV-B). Waiting busy-polls the client-side completion queue, which is
/// what the paper's invoker does to minimise latency.
pub struct InvocationFuture<'a> {
    invoker: &'a Invoker,
    connection: Arc<WorkerConnection>,
    invocation_id: u32,
    function: String,
    input: Buffer,
    payload_len: usize,
    output: Buffer,
    redirections: u32,
}

impl std::fmt::Debug for InvocationFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvocationFuture")
            .field("id", &self.invocation_id)
            .field("function", &self.function)
            .finish()
    }
}

impl InvocationFuture<'_> {
    /// The invocation identifier carried in the immediate value.
    pub fn id(&self) -> u32 {
        self.invocation_id
    }

    /// Number of times the invocation was redirected after a rejection.
    pub fn redirections(&self) -> u32 {
        self.redirections
    }

    /// Block (busy-polling) until the result is available; returns the number
    /// of output bytes written into the output buffer.
    ///
    /// Rejected invocations (oversubscribed warm executors) are transparently
    /// redirected to another worker, as in Fig. 6.
    pub fn wait(mut self) -> Result<usize> {
        loop {
            let (byte_len, status) = self.connection.wait_for(self.invocation_id)?;
            match status {
                ResultStatus::Success => return Ok(byte_len),
                ResultStatus::FunctionFailed => {
                    return Err(RFaasError::Function(
                        sandbox::FunctionError::ExecutionFailed(format!(
                            "function '{}' failed on the executor",
                            self.function
                        )),
                    ))
                }
                ResultStatus::Rejected => {
                    // Redirect to a different worker; give up once every
                    // worker rejected the request.
                    self.redirections += 1;
                    if self.redirections as usize > self.invoker.worker_count() {
                        return Err(RFaasError::AllWorkersBusy);
                    }
                    let next_worker = (self.connection.index + 1) % self.invoker.worker_count();
                    let retry = self.invoker.submit_to_worker(
                        next_worker,
                        &self.function,
                        &self.input,
                        self.payload_len,
                        &self.output,
                    )?;
                    self.connection = Arc::clone(&retry.connection);
                    self.invocation_id = retry.invocation_id;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeResources;
    use sandbox::{echo_function, failing_function, CodePackage, FunctionRegistry};

    fn platform(workers: u32) -> (Arc<Fabric>, Arc<ResourceManager>, Invoker) {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(
            CodePackage::minimal("pkg")
                .with_function(echo_function())
                .with_function(failing_function("intentional")),
        );
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let mut invoker = Invoker::new(&fabric, "client-0", &manager, RFaasConfig::default());
        invoker
            .allocate(
                LeaseRequest::single_worker("pkg").with_cores(workers),
                PollingMode::Hot,
            )
            .unwrap();
        (fabric, manager, invoker)
    }

    #[test]
    fn buffers_round_trip_payloads() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        let alloc = invoker.allocator();
        let input = alloc.input(64);
        assert_eq!(input.capacity(), 64);
        assert_eq!(input.payload_offset(), INVOCATION_HEADER_BYTES);
        assert_eq!(input.write_payload(&[1, 2, 3]).unwrap(), 3);
        assert_eq!(input.read_payload(3).unwrap(), vec![1, 2, 3]);
        assert!(input.write_payload(&[0u8; 65]).is_err());

        let output = alloc.output(32);
        assert_eq!(output.payload_offset(), 0);
        let values = [1.5f64, -2.25, 3.0];
        output.write_f64(&values).unwrap();
        assert_eq!(output.read_f64(24).unwrap(), values);
    }

    #[test]
    fn allocate_invoke_deallocate_round_trip() {
        let (_fabric, manager, mut invoker) = platform(1);
        assert_eq!(invoker.worker_count(), 1);
        assert!(invoker.lease().is_some());
        let cold = invoker.cold_start().unwrap();
        assert!(cold.total().as_millis_f64() > 10.0);

        let alloc = invoker.allocator();
        let input = alloc.input(1024);
        let output = alloc.output(1024);
        let payload: Vec<u8> = (0..100u8).collect();
        input.write_payload(&payload).unwrap();
        let (len, rtt) = invoker
            .invoke_sync("echo", &input, payload.len(), &output)
            .unwrap();
        assert_eq!(len, 100);
        assert_eq!(output.read_payload(100).unwrap(), payload);
        assert!(
            rtt.as_micros_f64() > 1.0 && rtt.as_micros_f64() < 100.0,
            "rtt {rtt}"
        );

        invoker.deallocate().unwrap();
        assert_eq!(invoker.worker_count(), 0);
        assert_eq!(manager.lease_count(), 0);
    }

    #[test]
    fn hot_invocation_latency_matches_paper_range() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(64);
        let output = alloc.output(64);
        input.write_payload(&[7u8; 8]).unwrap();
        // Warm up the executor, then measure.
        invoker.invoke_sync("echo", &input, 8, &output).unwrap();
        let mut samples = Vec::new();
        for _ in 0..50 {
            let (_, rtt) = invoker.invoke_sync("echo", &input, 8, &output).unwrap();
            samples.push(rtt.as_micros_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        // Paper: ~3.96 us hot latency for small payloads.
        assert!((3.0..6.0).contains(&median), "hot median {median} us");
    }

    #[test]
    fn failing_function_propagates_error() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        input.write_payload(&[1]).unwrap();
        let err = invoker
            .invoke_sync("always-fails", &input, 1, &output)
            .unwrap_err();
        assert!(matches!(err, RFaasError::Function(_)));
    }

    #[test]
    fn unknown_function_is_rejected_client_side() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        let err = invoker.submit("nope", &input, 0, &output).unwrap_err();
        assert!(matches!(err, RFaasError::UnknownFunction(_)));
    }

    #[test]
    fn submit_without_allocation_fails() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        assert!(matches!(
            invoker.submit("echo", &input, 0, &output),
            Err(RFaasError::NotAllocated)
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_transmission() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let huge = RFaasConfig::default().max_payload_bytes + 1024;
        let input = alloc.input(huge);
        let output = alloc.output(64);
        let err = invoker.submit("echo", &input, huge, &output).unwrap_err();
        assert!(matches!(err, RFaasError::PayloadTooLarge { .. }));
    }

    #[test]
    fn parallel_invocations_on_multiple_workers() {
        let (_fabric, _manager, invoker) = platform(4);
        assert_eq!(invoker.worker_count(), 4);
        let alloc = invoker.allocator();
        let inputs: Vec<Buffer> = (0..4).map(|_| alloc.input(1024)).collect();
        let outputs: Vec<Buffer> = (0..4).map(|_| alloc.output(1024)).collect();
        let mut futures = Vec::new();
        for (i, (input, output)) in inputs.iter().zip(outputs.iter()).enumerate() {
            let payload = vec![i as u8; 256];
            input.write_payload(&payload).unwrap();
            futures.push(invoker.submit("echo", input, 256, output).unwrap());
        }
        for (i, future) in futures.into_iter().enumerate() {
            let len = future.wait().unwrap();
            assert_eq!(len, 256);
            assert_eq!(outputs[i].read_payload(4).unwrap(), vec![i as u8; 4]);
        }
    }

    #[test]
    fn results_land_directly_in_output_buffer() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(4096);
        let output = alloc.output(4096);
        let data: Vec<f64> = (0..256).map(|i| i as f64 * 0.5).collect();
        let len = input.write_f64(&data).unwrap();
        let (out_len, _) = invoker.invoke_sync("echo", &input, len, &output).unwrap();
        assert_eq!(out_len, len);
        assert_eq!(output.read_f64(out_len).unwrap(), data);
    }
}
