//! The rFaaS client library: invoker, RDMA buffers and invocation futures.
//!
//! This is the Rust equivalent of the paper's C++ programming model
//! (Sec. IV-B, Fig. 7, Listing 2): an [`Invoker`] acquires leases, connects
//! directly to the executor workers, and submits function invocations by
//! writing the header and payload straight into the workers' registered
//! memory. Results are represented by [`InvocationFuture`]s and land directly
//! in client-side [`Buffer`]s written remotely by the executor.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rdma_fabric::{
    connect_pooled, AccessFlags, ConnectionPool, DatagramSocket, Endpoint, Fabric, MemoryRegion,
    ProtectionDomain, QueuePair, ReceiveRing, RecvRequest, RemoteMemoryHandle, SendRequest, Sge,
};
use sandbox::CodePackage;
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::{SimDuration, SimTime, VirtualClock};
use state_plane::{StateClient, StateClientStats, StateError, StatePlane, StateSpec};

use crate::codec::Codec;
use crate::config::{PollingMode, RFaasConfig};
use crate::error::{RFaasError, Result};
use crate::executor::{AllocationPolicy, ForkFaultState, SpotExecutor};
use crate::manager::ResourceManager;
use crate::protocol::{
    ControlFrame, ImmValue, InvocationHeader, Lease, LeaseRequest, ResultStatus,
    INVOCATION_HEADER_BYTES,
};
use crate::reactor::{CompletionSource, Reactor};

/// A registered, page-aligned client buffer.
///
/// Input buffers reserve space for the invocation header in front of the
/// payload, exactly like the paper's allocator ("automatically expanded with
/// the function's header"); output buffers are registered with remote-write
/// access so the executor can deposit results without client involvement.
#[derive(Debug, Clone)]
pub struct Buffer {
    region: MemoryRegion,
    header_space: usize,
}

impl Buffer {
    /// Bytes of payload the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.region.len() - self.header_space
    }

    /// The underlying registered region (header space included).
    pub fn region(&self) -> &MemoryRegion {
        &self.region
    }

    /// Offset of the payload within the region.
    pub fn payload_offset(&self) -> usize {
        self.header_space
    }

    /// Copy `data` into the payload area. Returns the payload length.
    pub fn write_payload(&self, data: &[u8]) -> Result<usize> {
        if data.len() > self.capacity() {
            return Err(RFaasError::PayloadTooLarge {
                payload: data.len(),
                capacity: self.capacity(),
            });
        }
        self.region
            .write(self.header_space, data)
            .map_err(RFaasError::from)?;
        Ok(data.len())
    }

    /// Copy `len` payload bytes out of the buffer. A `len` beyond the
    /// buffer's payload capacity is rejected — silently clamping used to hand
    /// callers a short read they would misinterpret as the full result.
    pub fn read_payload(&self, len: usize) -> Result<Vec<u8>> {
        if len > self.capacity() {
            return Err(RFaasError::PayloadTooLarge {
                payload: len,
                capacity: self.capacity(),
            });
        }
        self.region
            .read(self.header_space, len)
            .map_err(RFaasError::from)
    }

    /// Fill the payload with an `f64` slice (the element type of every HPC
    /// workload in the paper's evaluation).
    pub fn write_f64(&self, values: &[f64]) -> Result<usize> {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_payload(&bytes)
    }

    /// Interpret `len_bytes` of payload as an `f64` slice.
    pub fn read_f64(&self, len_bytes: usize) -> Result<Vec<f64>> {
        let bytes = self.read_payload(len_bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Encode `value` into the payload area through its [`Codec`], returning
    /// the payload length (the typed equivalent of [`Buffer::write_payload`]).
    pub fn write_encoded<C: Codec + ?Sized>(&self, value: &C) -> Result<usize> {
        let len = value.encoded_len();
        // Guards the slice below, not just the encode: encode_into checks
        // against the slice it receives, which must exist first.
        crate::codec::check_capacity(len, self.capacity())?;
        let start = self.header_space;
        self.region
            .with_bytes_mut(|bytes| value.encode_into(&mut bytes[start..start + len]))
    }

    /// Decode `len` payload bytes through codec `C` (the typed equivalent of
    /// [`Buffer::read_payload`]).
    pub fn read_decoded<C: Codec + ?Sized>(&self, len: usize) -> Result<C::Owned> {
        let bytes = self.read_payload(len)?;
        C::decode(&bytes)
    }

    /// Remote handle covering the payload area (what the executor writes to).
    pub fn remote_handle(&self) -> RemoteMemoryHandle {
        self.region
            .remote_handle_range(self.header_space, self.capacity())
            .expect("payload range within region")
    }
}

/// Allocates RDMA-registered buffers from the invoker's protection domain
/// (the `rfaas::allocator` of Listing 2).
#[derive(Debug, Clone)]
pub struct BufferAllocator {
    pd: ProtectionDomain,
}

impl BufferAllocator {
    /// Allocate an input buffer for payloads of up to `capacity` bytes; the
    /// header slot is added in front automatically.
    pub fn input(&self, capacity: usize) -> Buffer {
        Buffer {
            region: self
                .pd
                .register(INVOCATION_HEADER_BYTES + capacity, AccessFlags::LOCAL_ONLY),
            header_space: INVOCATION_HEADER_BYTES,
        }
    }

    /// Allocate an output buffer of `capacity` bytes the executor may write
    /// into remotely.
    pub fn output(&self, capacity: usize) -> Buffer {
        Buffer {
            region: self.pd.register(capacity, AccessFlags::REMOTE_WRITE),
            header_space: 0,
        }
    }
}

/// Breakdown of a cold start as observed by the client (Fig. 9's stacked
/// bars: connect to manager, submit allocation, spawn worker, submit code,
/// plus the direct worker connections).
#[derive(Debug, Clone, Default)]
pub struct ColdStartBreakdown {
    /// Establishing the connection to the resource manager.
    pub connect_to_manager: SimDuration,
    /// Submitting the allocation request and the manager's placement work.
    pub submit_allocation: SimDuration,
    /// Sandbox creation and worker-thread spawn on the executor node.
    pub spawn_workers: SimDuration,
    /// Transferring and loading the code package.
    pub submit_code: SimDuration,
    /// Establishing the direct RDMA connections to every worker.
    pub connect_to_workers: SimDuration,
}

impl ColdStartBreakdown {
    /// Total cold-start latency.
    pub fn total(&self) -> SimDuration {
        self.connect_to_manager
            + self.submit_allocation
            + self.spawn_workers
            + self.submit_code
            + self.connect_to_workers
    }
}

/// Connection-plane counters of one invoker/session: how many worker
/// connections were physically established, how the warmth pool performed,
/// and how deep the executor side reached into its shared receive queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionPlaneStats {
    /// Worker RC connections established over the invoker's lifetime.
    pub connections_opened: u64,
    /// Connects that redeemed a pool warmth token (warm re-establishment).
    pub pool_hits: u64,
    /// Connects that paid the full first-contact handshake.
    pub pool_misses: u64,
    /// Highest concurrent buffer use of the active executor process's shared
    /// receive queue (0 when nothing is allocated).
    pub srq_depth_high_watermark: usize,
}

struct WorkerConnection {
    qp: QueuePair,
    remote_input: RemoteMemoryHandle,
    /// Pre-posted result-notification slots, re-posted automatically as
    /// results are picked up: submissions within the ring depth never pay a
    /// `post_recv` on the critical path.
    ring: ReceiveRing,
    /// Scratch for overflow receives posted when more invocations are in
    /// flight than the ring holds slots.
    overflow_scratch: MemoryRegion,
    outstanding: AtomicUsize,
    completed: OrderedMutex<HashMap<u32, (usize, ResultStatus)>>,
    /// Token under which this connection is registered with the invoker's
    /// [`Reactor`] (set right after registration, before any submission).
    reactor_token: AtomicU64,
    index: usize,
}

impl WorkerConnection {
    /// Whether a result for `invocation_id` is already stashed.
    fn has_result(&self, invocation_id: u32) -> bool {
        self.completed.lock().contains_key(&invocation_id)
    }

    /// Remove a stashed result, returning the in-flight reservation with it.
    fn take_result(&self, invocation_id: u32) -> Option<(usize, ResultStatus)> {
        let result = self.completed.lock().remove(&invocation_id)?;
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        Some(result)
    }

    fn token(&self) -> u64 {
        self.reactor_token.load(Ordering::Relaxed)
    }
}

impl CompletionSource for WorkerConnection {
    /// Drain the receive ring into the result stash, reporting each newly
    /// stashed invocation id. `ring.poll_one` charges the busy-poll pickup on
    /// the client clock per completion — the reactor sweep costs exactly what
    /// the old per-connection rescan did.
    fn pump(&self, sink: &mut dyn FnMut(u32)) {
        while let Some(completion) = self.ring.poll_one() {
            let wc = completion.wc;
            let (id, status) = ImmValue::parse_response(wc.imm.unwrap_or(0));
            self.completed.lock().insert(id, (wc.byte_len, status));
            sink(id);
        }
    }

    fn is_connected(&self) -> bool {
        self.qp.is_connected()
    }
}

/// Everything the invoker holds while a lease is active. Kept behind one lock
/// so the recovery path can atomically swap the whole allocation (lease,
/// executor, connections) from `&self` while invocation futures are waiting.
struct ActiveAllocation {
    /// Monotonic counter distinguishing successive allocations: a future
    /// observing its allocation die only triggers a re-allocation if the
    /// active epoch still matches what it used — otherwise another future
    /// already recovered and it just resubmits on the fresh connections.
    epoch: u64,
    lease: Lease,
    executor: Arc<SpotExecutor>,
    process_id: u64,
    package: CodePackage,
    connections: Vec<Arc<WorkerConnection>>,
}

/// The client-side invoker: manages leases, executor connections and
/// invocation submission (the `rfaas::invoker` of Listing 2).
pub struct Invoker {
    fabric: Arc<Fabric>,
    clock: Arc<VirtualClock>,
    reactor: Reactor,
    pd: ProtectionDomain,
    node_name: String,
    config: RFaasConfig,
    manager: Arc<ResourceManager>,
    /// Warmth pool worker connects draw from; shared across sessions via
    /// [`Invoker::set_connection_pool`] so lease churn back to the same
    /// executor reuses the warm re-establishment tier.
    pool: ConnectionPool,
    /// Datagram socket for first contact with the resource manager, bound
    /// lazily on the first allocation and reused for every re-allocation.
    control: OrderedMutex<Option<DatagramSocket>>,
    connections_opened: AtomicU64,
    active: OrderedMutex<Option<ActiveAllocation>>,
    // The request that produced the current lease, replayed by the
    // transparent recovery path (Sec. III-B: clients re-allocate when an
    // executor disappears or a lease expires).
    last_request: OrderedMutex<Option<(LeaseRequest, PollingMode)>>,
    // Serialises recovery: two futures discovering the same dead allocation
    // must produce one re-allocation, not two (the loser would overwrite —
    // and leak — the winner's allocation).
    recovery_lock: OrderedMutex<()>,
    allocation_epoch: AtomicU64,
    next_invocation: AtomicU32,
    round_robin: AtomicUsize,
    cold_start: OrderedMutex<Option<ColdStartBreakdown>>,
    recoveries: AtomicU32,
    recovery_budget: u32,
    /// How the allocator provisions the executor sandbox: full cold spawn,
    /// remote fork from a parked parent, or warm-pool resume.
    policy: AllocationPolicy,
    /// The state plane this invoker's allocations attach to, if any. Set
    /// before `allocate`; every fresh allocation re-attaches the executor
    /// process to it (recovery included).
    state_plane: Option<StatePlane>,
    /// The session-side caching state client, attached lazily on the first
    /// allocation and kept across re-allocations (the cache region and its
    /// datagram endpoint belong to the client node, not to any lease).
    session_state: OrderedMutex<Option<StateClient>>,
}

/// Everything one invocation needs to be posted (and transparently
/// replayed): target worker, function name, payload location and length, and
/// the result buffer. Bundling these kills the long argument tuples the raw
/// API used to thread through every submission and recovery path.
#[derive(Clone)]
pub(crate) struct InvocationSpec {
    pub(crate) worker: Option<usize>,
    pub(crate) function: String,
    pub(crate) input: Buffer,
    pub(crate) payload_len: usize,
    pub(crate) output: Buffer,
}

/// State of one transparent-recovery attempt: the allocation epoch observed
/// failing, the remaining re-allocation budget, and the original failure to
/// surface once the budget is spent.
struct RecoveryPlan {
    observed_epoch: u64,
    budget: u32,
    cause: RFaasError,
}

/// Doorbell accounting of one batched submission
/// ([`crate::FunctionHandle::map_workers`]): all WQEs of the batch are built
/// back-to-back and ride one doorbell, so only the first pays the full issue
/// cost and the rest are billed at the chained-WQE rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Invocations submitted in the batch.
    pub submissions: usize,
    /// Doorbells rung (one per batch on the happy path).
    pub doorbells: usize,
    /// WQEs that joined an already-open chain instead of ringing their own
    /// doorbell.
    pub chained_wqes: usize,
    /// Client-side virtual time spent posting the whole batch.
    pub post_time: SimDuration,
}

impl std::fmt::Debug for Invoker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invoker")
            .field("node", &self.node_name)
            .field("workers", &self.worker_count())
            .finish()
    }
}

impl Invoker {
    /// Create an invoker for a client application running on `client_node`.
    pub fn new(
        fabric: &Arc<Fabric>,
        client_node: &str,
        manager: &Arc<ResourceManager>,
        config: RFaasConfig,
    ) -> Invoker {
        Invoker {
            fabric: Arc::clone(fabric),
            clock: VirtualClock::shared(),
            reactor: Reactor::new(),
            pd: ProtectionDomain::new(),
            node_name: client_node.to_string(),
            config,
            manager: Arc::clone(manager),
            pool: ConnectionPool::new(),
            control: OrderedMutex::new(ranks::CLIENT_CONTROL, None),
            connections_opened: AtomicU64::new(0),
            active: OrderedMutex::new(ranks::CLIENT_ACTIVE, None),
            last_request: OrderedMutex::new(ranks::CLIENT_LAST_REQUEST, None),
            recovery_lock: OrderedMutex::new(ranks::CLIENT_RECOVERY, ()),
            allocation_epoch: AtomicU64::new(0),
            next_invocation: AtomicU32::new(1),
            round_robin: AtomicUsize::new(0),
            cold_start: OrderedMutex::new(ranks::CLIENT_COLD_START, None),
            recoveries: AtomicU32::new(0),
            recovery_budget: Invoker::DEFAULT_RECOVERY_BUDGET,
            policy: AllocationPolicy::default(),
            state_plane: None,
            session_state: OrderedMutex::new(ranks::CLIENT_SESSION_STATE, None),
        }
    }

    /// Default maximum lease re-allocations one invocation will attempt
    /// before surfacing the failure (guards against a platform that keeps
    /// handing out instantly-dying leases).
    pub const DEFAULT_RECOVERY_BUDGET: u32 = 3;

    /// Override the per-invocation transparent-recovery budget (see
    /// [`Invoker::DEFAULT_RECOVERY_BUDGET`]).
    pub fn set_recovery_budget(&mut self, budget: u32) {
        self.recovery_budget = budget;
    }

    /// The per-invocation transparent-recovery budget.
    pub fn recovery_budget(&self) -> u32 {
        self.recovery_budget
    }

    /// Choose how allocations provision their executor sandbox (cold spawn,
    /// remote fork, or warm-pool resume). Applies to the next `allocate` and
    /// to transparent re-allocations; fork and warm-pool degrade to a cold
    /// spawn when the chosen executor holds no suitable warm parent.
    pub fn set_allocation_policy(&mut self, policy: AllocationPolicy) {
        self.policy = policy;
    }

    /// The provisioning policy the next allocation will use.
    pub fn allocation_policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Fault state of the active allocation's forked sandbox: `None` when
    /// nothing is allocated or the sandbox was not provisioned by fork.
    pub fn fork_state(&self) -> Option<Arc<ForkFaultState>> {
        self.active
            .lock()
            .as_ref()
            .and_then(|a| a.executor.allocator().fork_state(a.process_id))
    }

    /// Attach a [`StatePlane`] to this invoker: the session gains a caching
    /// state client on its first allocation, and every executor process the
    /// invoker allocates (transparent re-allocations included) is bound to
    /// the same plane so stateful functions can materialise declared keys.
    /// Must be called before `allocate`.
    pub fn set_state_plane(&mut self, plane: &StatePlane) {
        self.state_plane = Some(plane.clone());
    }

    /// Whether a state plane is attached.
    pub fn has_state_plane(&self) -> bool {
        self.state_plane.is_some()
    }

    /// Whether `key` currently exists in the attached state plane (false
    /// when no plane is attached).
    pub fn state_contains(&self, key: &str) -> bool {
        self.state_plane.as_ref().is_some_and(|p| p.contains(key))
    }

    /// Run `f` over the session's state client, surfacing the missing-plane
    /// case as a typed error.
    fn with_session_state<R>(&self, f: impl FnOnce(&mut StateClient) -> Result<R>) -> Result<R> {
        let mut guard = self.session_state.lock();
        match guard.as_mut() {
            Some(client) => f(client),
            None => Err(RFaasError::StatePlane(StateError::Protocol(
                "no state plane is attached to this session".into(),
            ))),
        }
    }

    /// Store `value` under `key` in the attached state plane (push-model
    /// RDMA write through the session's cache).
    pub fn state_put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.with_session_state(|c| c.put(key, value).map_err(RFaasError::StatePlane))
    }

    /// Read `key` through the session's state cache into an owned vector.
    pub fn state_get(&self, key: &str) -> Result<Vec<u8>> {
        self.with_session_state(|c| c.get(key).map_err(RFaasError::StatePlane))
    }

    /// Read `key` and hand the cached bytes to `f` *in place* — the
    /// zero-copy path over the pre-registered cache region (pair with
    /// [`crate::Codec::decode_view`] for a typed window).
    pub fn state_get_with<R>(&self, key: &str, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.with_session_state(|c| c.get_with(key, f).map_err(RFaasError::StatePlane))
    }

    /// Delete `key` from the attached state plane; returns whether it
    /// existed.
    pub fn state_delete(&self, key: &str) -> Result<bool> {
        self.with_session_state(|c| c.delete(key).map_err(RFaasError::StatePlane))
    }

    /// Counters of the session-side state client (`None` before the first
    /// allocation or without a plane).
    pub fn state_stats(&self) -> Option<StateClientStats> {
        self.session_state.lock().as_ref().map(|c| c.stats())
    }

    /// Counters of the active executor process's state client.
    pub fn executor_state_stats(&self) -> Option<StateClientStats> {
        self.active
            .lock()
            .as_ref()
            .and_then(|a| a.executor.allocator().state_client_stats(a.process_id))
    }

    /// Register the declared key set of `function` with the active executor
    /// process (the executor side of [`crate::FunctionHandle::with_state`]).
    pub fn bind_state_spec(&self, function: &str, spec: StateSpec) -> Result<()> {
        let active = self.active.lock();
        let active = active.as_ref().ok_or(RFaasError::NotAllocated)?;
        active
            .executor
            .allocator()
            .bind_state_spec(active.process_id, function, spec)
    }

    /// Share a completion reactor with other invokers (one event loop driving
    /// many sessions from one thread). Must be called before `allocate` —
    /// connections register with whatever reactor is installed at connect
    /// time.
    pub fn set_reactor(&mut self, reactor: Reactor) {
        self.reactor = reactor;
    }

    /// The invoker's completion reactor: every worker connection is
    /// registered with it and one [`Reactor::turn`] pumps them all.
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Share a virtual clock with other invokers (sessions driven by one
    /// client thread advance one clock). Must be called before `allocate` —
    /// worker endpoints capture the clock at connect time.
    pub fn set_clock(&mut self, clock: Arc<VirtualClock>) {
        self.clock = clock;
    }

    /// Share a connection-warmth pool with other invokers. Must be called
    /// before `allocate` — re-allocations consult whatever pool is installed.
    pub fn set_connection_pool(&mut self, pool: ConnectionPool) {
        self.pool = pool;
    }

    /// The invoker's connection-warmth pool.
    pub fn connection_pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// Connection-plane counters: physical connects, pool hit/miss, and the
    /// active executor process's shared-receive-queue high watermark.
    pub fn connection_stats(&self) -> ConnectionPlaneStats {
        let pool = self.pool.stats();
        let srq_depth_high_watermark = self.active.lock().as_ref().map_or(0, |a| {
            a.executor.allocator().srq_high_watermark(a.process_id)
        });
        ConnectionPlaneStats {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            srq_depth_high_watermark,
        }
    }

    /// Drive the reactor until `invocation_id`'s result lands on
    /// `connection`, then take it. Every wait path funnels through here: the
    /// turn pumps *all* registered connections, so one waiting thread keeps
    /// every other in-flight invocation moving too.
    fn await_result(
        &self,
        connection: &Arc<WorkerConnection>,
        invocation_id: u32,
    ) -> Result<(usize, ResultStatus)> {
        loop {
            if let Some(result) = connection.take_result(invocation_id) {
                return Ok(result);
            }
            let progressed = self.reactor.turn();
            if progressed == 0 {
                // Re-check after the empty sweep: a concurrent turner may
                // have stashed our result between the take above and now.
                if let Some(result) = connection.take_result(invocation_id) {
                    return Ok(result);
                }
                // The final (empty) drain has run, so a dead connection can
                // never produce this result any more.
                if !connection.qp.is_connected() {
                    return Err(RFaasError::ExecutorLost(format!(
                        "worker {}",
                        connection.index
                    )));
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Whether `function` exists in the currently allocated code package.
    pub fn has_function(&self, function: &str) -> bool {
        self.active
            .lock()
            .as_ref()
            .is_some_and(|a| a.package.function_by_name(function).is_some())
    }

    /// Names of every function in the currently allocated code package (the
    /// session-level function registry; empty when nothing is allocated).
    pub fn function_names(&self) -> Vec<String> {
        self.active.lock().as_ref().map_or_else(Vec::new, |a| {
            a.package
                .functions()
                .iter()
                .map(|f| f.name().to_string())
                .collect()
        })
    }

    /// The client's virtual clock (latency measurements are deltas of this).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Buffer allocator bound to the invoker's protection domain.
    pub fn allocator(&self) -> BufferAllocator {
        BufferAllocator {
            pd: self.pd.clone(),
        }
    }

    /// Number of connected executor workers.
    pub fn worker_count(&self) -> usize {
        self.active
            .lock()
            .as_ref()
            .map_or(0, |a| a.connections.len())
    }

    /// Cold-start breakdown of the last allocation, if any.
    pub fn cold_start(&self) -> Option<ColdStartBreakdown> {
        self.cold_start.lock().clone()
    }

    /// The active lease, if any.
    pub fn lease(&self) -> Option<Lease> {
        self.active.lock().as_ref().map(|a| a.lease.clone())
    }

    /// How many times the invoker transparently re-allocated after a lease
    /// expired or an executor was lost (the recovery analogue of
    /// [`InvocationFuture::redirections`]).
    pub fn recoveries(&self) -> u32 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Acquire a lease and spin up executor workers (the cold invocation path
    /// of Fig. 5/6). `mode` selects hot busy-polling or warm blocking waits
    /// on the executor side.
    pub fn allocate(
        &mut self,
        request: LeaseRequest,
        mode: PollingMode,
    ) -> Result<ColdStartBreakdown> {
        *self.last_request.lock() = Some((request.clone(), mode));
        self.allocate_internal(&request, mode)
    }

    fn allocate_internal(
        &self,
        request: &LeaseRequest,
        mode: PollingMode,
    ) -> Result<ColdStartBreakdown> {
        if self.active.lock().is_some() {
            self.deallocate_internal();
        }
        let mut breakdown = ColdStartBreakdown::default();

        // Step 1: first contact with the resource manager rides the datagram
        // transport — a UD-style endpoint an order of magnitude cheaper to
        // set up than the RC connection the old control path paid for
        // (`manager_connect_cost`). Bound once, reused by re-allocations.
        let t0 = self.clock.now();
        self.ensure_control_socket();
        breakdown.connect_to_manager = self.clock.now().saturating_since(t0);

        // Step 2: submit the allocation request as a control frame, wait for
        // the verdict datagram.
        let t1 = self.clock.now();
        self.clock.advance(self.config.allocation_submit_cost);
        let (lease, executor) = self.allocate_via_control(request)?;
        breakdown.submit_allocation = self.clock.now().saturating_since(t1);

        // Step 3 + 4: the allocator spawns the sandboxed executor process and
        // loads the code package; the client waits for the whole thing. From
        // here on every error path must release the lease just granted, or
        // the manager's reservation leaks until the lease expires.
        let t2 = self.clock.now();
        let allocation = match executor.allocator().allocate_with_policy(
            &lease,
            request.cores as usize,
            mode,
            self.policy,
        ) {
            Ok(allocation) => allocation,
            Err(e) => {
                let _ = self.manager.release_lease(lease.id);
                return Err(e);
            }
        };
        self.clock.advance(allocation.breakdown.spawn.total());
        breakdown.spawn_workers = self.clock.now().saturating_since(t2);
        let t3 = self.clock.now();
        self.clock.advance(allocation.breakdown.code_submission);
        breakdown.submit_code = self.clock.now().saturating_since(t3);

        // Step 5: establish a direct RDMA connection to every worker thread
        // and learn where its input buffer lives.
        let t4 = self.clock.now();
        let connections = match self.connect_workers(&allocation.workers, &lease.executor_node) {
            Ok(connections) => connections,
            Err(e) => {
                let _ = executor.allocator().deallocate(allocation.process_id);
                let _ = self.manager.release_lease(lease.id);
                return Err(e);
            }
        };
        breakdown.connect_to_workers = self.clock.now().saturating_since(t4);

        // Step 6 (stateful sessions only): bind the fresh executor process
        // to the state plane, and attach the session-side cache on the first
        // allocation. Re-allocations repeat the executor attach — the new
        // process starts with a cold state cache, the session cache survives.
        if let Some(plane) = &self.state_plane {
            let mut session_state = self.session_state.lock();
            if session_state.is_none() {
                *session_state = Some(plane.attach(
                    &self.node_name,
                    &self.fabric.add_node(&self.node_name),
                    &self.clock,
                    self.config.state_cache_bytes,
                ));
            }
            let exec_client = plane.attach(
                &format!("{}-exec", lease.executor_node),
                executor.node(),
                executor.allocator().clock(),
                self.config.state_cache_bytes,
            );
            executor
                .allocator()
                .attach_state_client(allocation.process_id, exec_client)?;
        }

        let fresh = ActiveAllocation {
            epoch: self.allocation_epoch.fetch_add(1, Ordering::Relaxed) + 1,
            lease,
            executor,
            process_id: allocation.process_id,
            package: allocation.package.clone(),
            connections,
        };
        // Defensive: if another allocation raced in since the teardown above,
        // swap it out and release it instead of silently leaking its lease.
        if let Some(displaced) = self.active.lock().replace(fresh) {
            self.teardown(displaced);
        }
        *self.cold_start.lock() = Some(breakdown.clone());
        Ok(breakdown)
    }

    /// Epoch of the current allocation (0 when none is active).
    fn current_epoch(&self) -> u64 {
        self.active.lock().as_ref().map_or(0, |a| a.epoch)
    }

    /// Bind the control datagram socket on first use. The bind charges the
    /// cheap `datagram_setup` tier once; later allocations reuse the socket
    /// for free — exactly the first-contact amortisation the paper's leases
    /// give the data plane.
    fn ensure_control_socket(&self) {
        let mut control = self.control.lock();
        if control.is_none() {
            static NEXT_CONTROL_ID: AtomicU64 = AtomicU64::new(1);
            let endpoint = Endpoint {
                fabric: Arc::clone(&self.fabric),
                node: self.fabric.add_node(&self.node_name),
                clock: Arc::clone(&self.clock),
                pd: self.pd.clone(),
                function: rdma_fabric::DeviceFunction::Physical,
            };
            let address = format!(
                "rfaas-clt://{}/{}",
                self.node_name,
                NEXT_CONTROL_ID.fetch_add(1, Ordering::Relaxed)
            );
            *control = Some(DatagramSocket::bind(&endpoint, &address));
        }
    }

    /// One allocation round trip over the datagram control plane: send the
    /// `Allocate` frame, drive the manager's poller (the manager is not a
    /// thread in this simulation), and decode the verdict.
    fn allocate_via_control(&self, request: &LeaseRequest) -> Result<(Lease, Arc<SpotExecutor>)> {
        let control = self.control.lock();
        let socket = control.as_ref().expect("control socket bound");
        let frame = ControlFrame::Allocate {
            reply_to: socket.address().to_string(),
            request: request.clone(),
        };
        socket.send_to(self.manager.control_address(), &frame.encode())?;
        self.manager.poll_control();
        let reply = socket.recv_timeout(self.config.connect_timeout)?;
        match ControlFrame::decode(&reply.payload)? {
            ControlFrame::Granted { lease } => {
                let executor = self
                    .manager
                    .executor(&lease.executor_node)
                    .ok_or_else(|| RFaasError::ExecutorLost(lease.executor_node.clone()))?;
                Ok((lease, executor))
            }
            ControlFrame::Denied { .. } => Err(RFaasError::InsufficientResources {
                requested_cores: request.cores,
                requested_memory_mib: request.memory_mib,
            }),
            ControlFrame::Allocate { .. } => Err(RFaasError::Internal(
                "unexpected allocate frame on the client control socket".into(),
            )),
        }
    }

    fn connect_workers(
        &self,
        workers: &[crate::executor::WorkerEndpointInfo],
        pool_key: &str,
    ) -> Result<Vec<Arc<WorkerConnection>>> {
        let client_node = self.fabric.add_node(&self.node_name);
        let mut connections = Vec::with_capacity(workers.len());
        for (index, worker) in workers.iter().enumerate() {
            let endpoint = Endpoint {
                fabric: Arc::clone(&self.fabric),
                node: Arc::clone(&client_node),
                clock: Arc::clone(&self.clock),
                pd: self.pd.clone(),
                function: rdma_fabric::DeviceFunction::Physical,
            };
            // Worker addresses are fresh per lease, but the executor *node*
            // stays warm across lease churn: a pooled token keyed by the node
            // buys the cheap re-establishment tier.
            let (qp, _warm) = connect_pooled(
                &endpoint,
                &worker.address,
                &self.pool,
                pool_key,
                self.config.connect_timeout,
            )?;
            self.connections_opened.fetch_add(1, Ordering::Relaxed);
            // Receive the worker's "hello" advertising its input buffer.
            let hello = self
                .pd
                .register(INVOCATION_HEADER_BYTES, AccessFlags::LOCAL_ONLY);
            qp.post_recv(RecvRequest {
                wr_id: u64::MAX,
                local: Sge::whole(&hello),
            })?;
            let wc = qp
                .recv_cq()
                .blocking_wait_timeout(self.config.connect_timeout)
                .ok_or_else(|| RFaasError::ExecutorLost(worker.address.clone()))?;
            if !wc.is_success() {
                return Err(RFaasError::ExecutorLost(worker.address.clone()));
            }
            let advertised = InvocationHeader::decode(&hello.read_all())?;
            let remote_input = RemoteMemoryHandle {
                rkey: advertised.result_rkey,
                offset: advertised.result_offset as usize,
                len: advertised.result_capacity as usize,
            };
            // Clamp to the device limit: a shallower result ring only means
            // overflow receives kick in earlier, not a failed connection.
            let ring_depth = self
                .config
                .recv_queue_depth
                .clamp(1, self.fabric.profile().max_recv_queue_depth);
            let ring = ReceiveRing::new(&qp, ring_depth, 8)?;
            let overflow_scratch = self.pd.register(8, AccessFlags::LOCAL_ONLY);
            let connection = Arc::new(WorkerConnection {
                qp,
                remote_input,
                ring,
                overflow_scratch,
                outstanding: AtomicUsize::new(0),
                completed: OrderedMutex::new(ranks::CLIENT_COMPLETED, HashMap::new()),
                reactor_token: AtomicU64::new(0),
                index,
            });
            // Register with the reactor before the connection can carry an
            // invocation: every result on this ring is picked up by the
            // shared event loop.
            let token = self
                .reactor
                .register_source(Arc::clone(&connection) as Arc<dyn CompletionSource>);
            connection.reactor_token.store(token, Ordering::Relaxed);
            connections.push(connection);
        }
        Ok(connections)
    }

    /// Renew the active lease: a manager round trip pushing the expiry to
    /// `now + extension` (charged at the lease-renewal processing cost), then
    /// the executor-side deadline update, so long-running clients keep their
    /// hot workers. Returns the new expiry instant.
    pub fn extend_lease(&self, extension: SimDuration) -> Result<SimTime> {
        let (lease_id, executor) = {
            let active = self.active.lock();
            let active = active.as_ref().ok_or(RFaasError::NotAllocated)?;
            (active.lease.id, Arc::clone(&active.executor))
        };
        // Submitting the renewal request costs the same as submitting an
        // allocation; the manager then charges its processing cost.
        self.clock.advance(self.config.allocation_submit_cost);
        let renewed = self.manager.renew_lease(lease_id, extension, &self.clock)?;
        if executor
            .allocator()
            .extend_lease(lease_id, renewed.expires_at)
            == 0
        {
            // The executor process is already gone (idle-reaped or expired
            // under us): the manager-side renewal succeeded but there is no
            // worker left to keep hot. Surface it so the caller re-allocates
            // instead of invoking into a dead connection.
            return Err(RFaasError::ExecutorLost(renewed.executor_node));
        }
        if let Some(active) = self.active.lock().as_mut() {
            if active.lease.id == lease_id {
                active.lease = renewed.clone();
            }
        }
        Ok(renewed.expires_at)
    }

    /// Tear down the current allocation and replay the last lease request:
    /// fresh lease, fresh executor process, fresh connections. Called by the
    /// transparent recovery path after `LeaseExpired` / `ExecutorLost`.
    ///
    /// `observed_epoch` is the epoch of the allocation the caller saw fail.
    /// If the active allocation has already moved past it (another future
    /// recovered first), this is a no-op — the caller just resubmits on the
    /// fresh connections instead of destroying them.
    fn recover(&self, observed_epoch: u64) -> Result<()> {
        let _serialised = self.recovery_lock.lock();
        if self
            .active
            .lock()
            .as_ref()
            .is_some_and(|a| a.epoch != observed_epoch)
        {
            return Ok(());
        }
        let (request, mode) = self
            .last_request
            .lock()
            .clone()
            .ok_or(RFaasError::NotAllocated)?;
        self.deallocate_internal();
        self.allocate_internal(&request, mode)?;
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submit an invocation of `function` with `payload_len` bytes from
    /// `input`; the result will be written into `output`.
    pub fn submit(
        &self,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<InvocationFuture<'_>> {
        self.submit_spec(InvocationSpec {
            worker: None,
            function: function.to_string(),
            input: input.clone(),
            payload_len,
            output: output.clone(),
        })
    }

    /// Submit to a specific worker (used for explicit work partitioning and
    /// by the redirection path).
    pub fn submit_to_worker(
        &self,
        worker: usize,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<InvocationFuture<'_>> {
        self.submit_spec(InvocationSpec {
            worker: Some(worker),
            function: function.to_string(),
            input: input.clone(),
            payload_len,
            output: output.clone(),
        })
    }

    pub(crate) fn submit_spec(&self, spec: InvocationSpec) -> Result<InvocationFuture<'_>> {
        let observed_epoch = self.current_epoch();
        match self.try_submit_spec(&spec) {
            // A dead connection at submission time (the executor node was
            // reclaimed under us) is recovered exactly like a mid-wait loss:
            // re-allocate and submit on the fresh connections, with the same
            // retry budget.
            Err(e) if connection_is_lost(&e) && self.last_request.lock().is_some() => {
                let plan = RecoveryPlan {
                    observed_epoch,
                    budget: self.recovery_budget,
                    cause: e,
                };
                let (mut future, used) = self.recover_and_resubmit(&spec, plan)?;
                future.recoveries = used;
                Ok(future)
            }
            result => result,
        }
    }

    /// Submit a whole batch of invocations behind one doorbell: every WQE of
    /// the batch is built back-to-back and posted on the chained path
    /// ([`rdma_fabric::QueuePair::post_send_batch`] semantics, spanning the
    /// per-worker queue pairs of one NIC), so only the first submission pays
    /// the full issue cost. A connection lost mid-batch triggers one
    /// transparent recovery of the whole batch, bounded by the invoker's
    /// recovery budget.
    pub(crate) fn submit_specs(
        &self,
        specs: &[InvocationSpec],
    ) -> Result<(Vec<InvocationFuture<'_>>, BatchStats)> {
        if specs.is_empty() {
            return Ok((Vec::new(), BatchStats::default()));
        }
        // Captured BEFORE the attempt: if the attempt fails because the
        // allocation died, recover() must only tear down that allocation —
        // a fresh one another future raced in is detected as a newer epoch
        // and reused, never destroyed.
        let mut observed_epoch = self.current_epoch();
        match self.try_submit_specs(specs) {
            Err(cause) if connection_is_lost(&cause) && self.last_request.lock().is_some() => {
                // Mirror of recover_and_resubmit, replaying the whole batch:
                // a failed recovery consumes budget and is retried against
                // whatever epoch is live now; once the budget is spent the
                // original cause surfaces. Posts from a failed attempt died
                // with the torn-down connections.
                let mut used = 0u32;
                loop {
                    used += 1;
                    if used > self.recovery_budget {
                        return Err(cause);
                    }
                    if self.recover(observed_epoch).is_err() {
                        continue;
                    }
                    observed_epoch = self.current_epoch();
                    match self.try_submit_specs(specs) {
                        Ok((mut futures, stats)) => {
                            // The budget spent here is charged to every
                            // future of the batch, exactly as the
                            // single-submission path records it — a later
                            // mid-wait recovery draws on what remains.
                            for future in &mut futures {
                                future.recoveries = used;
                            }
                            return Ok((futures, stats));
                        }
                        Err(e) if connection_is_lost(&e) => continue,
                        Err(e) => return Err(e),
                    }
                }
            }
            result => result,
        }
    }

    /// Recover from an allocation observed dead at `plan.observed_epoch`,
    /// then resubmit the invocation; fresh connection losses are retried (the
    /// manager's round robin moves to a different executor each attempt)
    /// until the plan's budget is spent, after which the plan's cause
    /// surfaces. Returns the replacement future and the attempts consumed.
    fn recover_and_resubmit(
        &self,
        spec: &InvocationSpec,
        mut plan: RecoveryPlan,
    ) -> Result<(InvocationFuture<'_>, u32)> {
        let mut used = 0;
        loop {
            used += 1;
            if used > plan.budget {
                return Err(plan.cause);
            }
            if self.recover(plan.observed_epoch).is_err() {
                continue;
            }
            // Whatever allocation is live now (ours or another future's) is
            // the one the next attempt must observe failing.
            plan.observed_epoch = self.current_epoch();
            match self.try_submit_spec(spec) {
                Ok(future) => return Ok((future, used)),
                Err(e) if connection_is_lost(&e) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Resolve a spec against the active allocation: function index, target
    /// connection and allocation epoch, plus the wire-capacity checks that
    /// must precede any posting.
    fn resolve_spec(&self, spec: &InvocationSpec) -> Result<(u8, Arc<WorkerConnection>, u64)> {
        let (function_index, connection, epoch) = {
            let active = self.active.lock();
            let active = active.as_ref().ok_or(RFaasError::NotAllocated)?;
            if active.connections.is_empty() {
                return Err(RFaasError::NotAllocated);
            }
            // Resolve the function while the lock is held — cloning the code
            // package per submission would put two heap allocations on the
            // microsecond-scale hot path.
            let (function_index, _) = active
                .package
                .function_by_name(&spec.function)
                .ok_or_else(|| RFaasError::UnknownFunction(spec.function.clone()))?;
            let connection = match spec.worker {
                Some(idx) => active
                    .connections
                    .get(idx)
                    .cloned()
                    .ok_or(RFaasError::NotAllocated)?,
                None => self.pick_connection(&active.connections),
            };
            (function_index, connection, active.epoch)
        };
        if function_index > u8::MAX as usize {
            return Err(RFaasError::Internal("function index exceeds 255".into()));
        }
        if spec.payload_len > spec.input.capacity() {
            return Err(RFaasError::PayloadTooLarge {
                payload: spec.payload_len,
                capacity: spec.input.capacity(),
            });
        }
        let wire_len = INVOCATION_HEADER_BYTES + spec.payload_len;
        if wire_len > connection.remote_input.len {
            return Err(RFaasError::PayloadTooLarge {
                payload: wire_len,
                capacity: connection.remote_input.len,
            });
        }
        Ok((function_index as u8, connection, epoch))
    }

    fn try_submit_spec(&self, spec: &InvocationSpec) -> Result<InvocationFuture<'_>> {
        let (function_index, connection, epoch) = self.resolve_spec(spec)?;
        let invocation_id = self.next_invocation.fetch_add(1, Ordering::Relaxed) & 0x00FF_FFFF;

        // Reserve the in-flight slot *before* deciding whether an extra
        // receive is needed: the previous value tells this submission alone
        // whether it fits the ring, so concurrent submits cannot both read a
        // stale count and under-post receives (a lost result would hang the
        // waiter forever). Every error below must return the reservation.
        let reserved = connection.outstanding.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.post_invocation(
            &connection,
            reserved,
            invocation_id,
            function_index,
            spec,
            false,
        ) {
            connection.outstanding.fetch_sub(1, Ordering::Relaxed);
            return Err(e);
        }

        Ok(InvocationFuture {
            invoker: self,
            connection,
            invocation_id,
            spec: spec.clone(),
            redirections: 0,
            recoveries: 0,
            epoch,
        })
    }

    /// One attempt at posting a whole batch behind a shared doorbell. Every
    /// spec is resolved and capacity-checked *before* the first WQE is built;
    /// a post that still fails mid-batch (a lost connection, or a device
    /// limit such as an exhausted receive queue) reaps the already-posted
    /// invocations before the error surfaces, so no in-flight reservation or
    /// undrained completion outlives the failed attempt.
    fn try_submit_specs(
        &self,
        specs: &[InvocationSpec],
    ) -> Result<(Vec<InvocationFuture<'_>>, BatchStats)> {
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in specs {
            resolved.push(self.resolve_spec(spec)?);
        }
        let started = self.clock.now();
        let mut futures: Vec<InvocationFuture<'_>> = Vec::with_capacity(specs.len());
        for (i, (spec, (function_index, connection, epoch))) in
            specs.iter().zip(resolved).enumerate()
        {
            let invocation_id = self.next_invocation.fetch_add(1, Ordering::Relaxed) & 0x00FF_FFFF;
            let reserved = connection.outstanding.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = self.post_invocation(
                &connection,
                reserved,
                invocation_id,
                function_index,
                spec,
                i > 0,
            ) {
                connection.outstanding.fetch_sub(1, Ordering::Relaxed);
                // The earlier posts of this attempt already executed. Wait
                // their completions out (discarding the results) so their
                // reservations and ring slots are returned — otherwise the
                // connection's in-flight count stays inflated forever and
                // stale completions clog the stash. A connection that died
                // has nothing left to drain; await_result's error says
                // exactly that and is safe to ignore.
                for posted in &futures {
                    let _ = self.await_result(&posted.connection, posted.invocation_id);
                }
                return Err(e);
            }
            futures.push(InvocationFuture {
                invoker: self,
                connection,
                invocation_id,
                spec: spec.clone(),
                redirections: 0,
                recoveries: 0,
                epoch,
            });
        }
        let stats = BatchStats {
            submissions: specs.len(),
            doorbells: 1,
            chained_wqes: specs.len().saturating_sub(1),
            post_time: self.clock.now().saturating_since(started),
        };
        Ok((futures, stats))
    }

    /// Post one invocation onto `connection`: the overflow receive when this
    /// submission's reserved slot (`reserved`, the pre-increment in-flight
    /// count) exceeds the ring, then header + payload — inline when the wire
    /// fits the device's WQE inline capacity, buffered otherwise. A `chained`
    /// post joins the WQE chain opened by the previous post of the batch
    /// (descriptor build only, no doorbell) and always takes the buffered
    /// path, since inline WQEs cannot join a chain that spans queue pairs.
    fn post_invocation(
        &self,
        connection: &Arc<WorkerConnection>,
        reserved: usize,
        invocation_id: u32,
        function_index: u8,
        spec: &InvocationSpec,
        chained: bool,
    ) -> Result<()> {
        // Payload-vs-capacity bounds were already enforced by resolve_spec
        // (every caller resolves before posting), so the spec is trusted
        // here.
        let (input, payload_len, output) = (&spec.input, spec.payload_len, &spec.output);

        // The connection's receive ring holds one pre-posted slot per
        // in-flight result; only past the ring depth does a submission pay an
        // extra receive on the critical path.
        if reserved >= connection.ring.depth() {
            connection.qp.post_recv(RecvRequest {
                wr_id: u64::MAX,
                local: Sge::whole(&connection.overflow_scratch),
            })?;
        }

        let wire_len = INVOCATION_HEADER_BYTES + payload_len;
        // Fill the header in front of the payload: where the executor should
        // write the result.
        self.clock.advance(self.config.header_write_cost);
        let header = InvocationHeader::for_result_buffer(&output.remote_handle());
        let imm = ImmValue::request(invocation_id, function_index);
        // Stack staging area for inline wires — the hot path must not touch
        // the heap (the default inline capacity is 128 B; a profile offering
        // more simply falls back to the buffered path beyond this bound).
        const INLINE_STACK: usize = 512;
        if !chained && wire_len <= self.fabric.profile().max_inline_data && wire_len <= INLINE_STACK
        {
            // Zero-copy hot path (Sec. IV-A): header and payload ride inside
            // the WQE — no staging write into the input region, no DMA
            // fetch, no heap allocation.
            let mut wire = [0u8; INLINE_STACK];
            wire[..INVOCATION_HEADER_BYTES].copy_from_slice(&header.encode());
            input.region().with_bytes(|bytes| {
                let payload = &bytes[input.payload_offset()..input.payload_offset() + payload_len];
                wire[INVOCATION_HEADER_BYTES..wire_len].copy_from_slice(payload);
            });
            connection.qp.post_write_inline(
                invocation_id as u64,
                &wire[..wire_len],
                &connection.remote_input.slice(0, wire_len),
                Some(imm),
                false,
            )?;
        } else {
            // Buffered path: stage the header in front of the payload and
            // gather both from the registered input region.
            input
                .region()
                .write(0, &header.encode())
                .map_err(RFaasError::from)?;
            connection.qp.post_send_chained(
                invocation_id as u64,
                SendRequest::WriteWithImm {
                    local: Sge::range(input.region(), 0, wire_len),
                    remote: connection.remote_input.slice(0, wire_len),
                    imm,
                },
                false,
                chained,
            )?;
        }
        Ok(())
    }

    fn pick_connection(&self, connections: &[Arc<WorkerConnection>]) -> Arc<WorkerConnection> {
        // Prefer an idle worker; otherwise round-robin over all of them.
        let start = self.round_robin.fetch_add(1, Ordering::Relaxed);
        let n = connections.len();
        for i in 0..n {
            let conn = &connections[(start + i) % n];
            if conn.outstanding.load(Ordering::Relaxed) == 0 {
                return Arc::clone(conn);
            }
        }
        Arc::clone(&connections[start % n])
    }

    /// Convenience wrapper: submit one invocation and wait for its result,
    /// returning the output length and the client-observed round-trip time.
    pub fn invoke_sync(
        &self,
        function: &str,
        input: &Buffer,
        payload_len: usize,
        output: &Buffer,
    ) -> Result<(usize, SimDuration)> {
        let start = self.clock.now();
        let future = self.submit(function, input, payload_len, output)?;
        let len = future.wait()?;
        Ok((len, self.clock.now().saturating_since(start)))
    }

    /// Release all executor resources and the lease (Listing 2's
    /// `invoker.deallocate()`).
    pub fn deallocate(&mut self) -> Result<()> {
        *self.last_request.lock() = None;
        self.deallocate_internal();
        Ok(())
    }

    fn deallocate_internal(&self) {
        if let Some(active) = self.active.lock().take() {
            self.teardown(active);
        }
    }

    fn teardown(&self, active: ActiveAllocation) {
        for conn in &active.connections {
            conn.qp.disconnect();
            self.reactor.unregister_source(conn.token());
            // The remote node's state (path records, exchanged attributes)
            // survives the teardown: park a warmth token so a re-allocation
            // landing on the same executor reconnects at the warm tier.
            self.pool
                .release(&active.lease.executor_node, self.clock.now());
        }
        // Both calls tolerate the other side being gone already: a failed
        // executor has no process left to deallocate, and the lifecycle
        // driver may have released or terminated the lease before us.
        let _ = active.executor.allocator().deallocate(active.process_id);
        let _ = self.manager.release_lease(active.lease.id);
    }
}

/// Whether an error means the executor connection is gone (as opposed to a
/// protocol or application failure), making transparent re-allocation the
/// right response.
fn connection_is_lost(error: &RFaasError) -> bool {
    match error {
        RFaasError::ExecutorLost(_) => true,
        RFaasError::Fabric(e) => matches!(
            e,
            rdma_fabric::FabricError::ConnectionLost
                | rdma_fabric::FabricError::NotConnected
                | rdma_fabric::FabricError::InvalidQpState { .. }
        ),
        _ => false,
    }
}

impl Drop for Invoker {
    fn drop(&mut self) {
        let _ = self.deallocate();
    }
}

/// The in-flight result of a submitted invocation (`std::future`-style,
/// Sec. IV-B). Waiting busy-polls the client-side completion queue, which is
/// what the paper's invoker does to minimise latency.
pub struct InvocationFuture<'a> {
    invoker: &'a Invoker,
    connection: Arc<WorkerConnection>,
    invocation_id: u32,
    spec: InvocationSpec,
    redirections: u32,
    recoveries: u32,
    // Allocation epoch the current connection belongs to; recovery uses it to
    // detect that another future already replaced a dead allocation.
    epoch: u64,
}

impl std::fmt::Debug for InvocationFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvocationFuture")
            .field("id", &self.invocation_id)
            .field("function", &self.spec.function)
            .finish()
    }
}

impl InvocationFuture<'_> {
    /// The invocation identifier carried in the immediate value.
    pub fn id(&self) -> u32 {
        self.invocation_id
    }

    /// Number of times the invocation was redirected after a rejection.
    pub fn redirections(&self) -> u32 {
        self.redirections
    }

    /// Number of times the invocation was replayed onto a fresh lease after
    /// an expiry or executor loss.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// The invocation's input and output buffers (used by the typed session
    /// layer to return pooled buffers after the wait).
    pub(crate) fn buffers(&self) -> (Buffer, Buffer) {
        (self.spec.input.clone(), self.spec.output.clone())
    }

    /// Non-blocking completion probe: one reactor turn pumps every
    /// registered connection, then this invocation's stash is checked. A
    /// `true` result makes the next [`InvocationFuture::wait`] return without
    /// further polling (modulo transparent redirections).
    pub fn is_complete(&self) -> bool {
        self.invoker.reactor.turn();
        self.connection.has_result(self.invocation_id)
    }

    /// Whether the result is already stashed, without pumping anything.
    /// The completion-set fast path: ready-queue hits resolve through this.
    pub(crate) fn has_stashed_result(&self) -> bool {
        self.connection.has_result(self.invocation_id)
    }

    /// The `(source token, invocation id)` key under which a continuation
    /// for this future registers with the invoker's reactor.
    pub(crate) fn reactor_key(&self) -> (u64, u32) {
        (self.connection.token(), self.invocation_id)
    }

    /// Whether the future's connection is gone (its continuation can never
    /// fire; only a blocking wait — which runs recovery — resolves it).
    pub(crate) fn connection_lost(&self) -> bool {
        !self.connection.qp.is_connected()
    }

    /// Re-allocate through the manager and replay this invocation on the
    /// fresh connections, drawing on the future's remaining recovery budget
    /// (shared with the submission-time recovery path).
    fn recover_and_resubmit(&mut self, cause: RFaasError) -> Result<()> {
        let budget = self.invoker.recovery_budget.saturating_sub(self.recoveries);
        // The replay is not pinned to the dead worker index: the round robin
        // moves it to whatever the fresh allocation offers.
        let mut spec = self.spec.clone();
        spec.worker = None;
        let plan = RecoveryPlan {
            observed_epoch: self.epoch,
            budget,
            cause,
        };
        let (retry, used) = self.invoker.recover_and_resubmit(&spec, plan)?;
        self.recoveries += used;
        self.connection = Arc::clone(&retry.connection);
        self.invocation_id = retry.invocation_id;
        self.epoch = retry.epoch;
        Ok(())
    }

    /// Block (busy-polling) until the result is available; returns the number
    /// of output bytes written into the output buffer.
    ///
    /// Rejected invocations (oversubscribed warm executors) are transparently
    /// redirected to another worker, as in Fig. 6. Invocations refused
    /// because the lease expired — or stranded because the executor node
    /// disappeared — are transparently replayed onto a fresh lease obtained
    /// from the resource manager (Sec. III-B failure handling).
    pub fn wait(mut self) -> Result<usize> {
        loop {
            let (byte_len, status) = match self
                .invoker
                .await_result(&self.connection, self.invocation_id)
            {
                Ok(result) => result,
                Err(e) if connection_is_lost(&e) => {
                    self.recover_and_resubmit(e)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match status {
                ResultStatus::Success => return Ok(byte_len),
                ResultStatus::FunctionFailed => {
                    return Err(RFaasError::Function(
                        sandbox::FunctionError::ExecutionFailed(format!(
                            "function '{}' failed on the executor",
                            self.spec.function
                        )),
                    ))
                }
                ResultStatus::LeaseExpired => {
                    let lease_id = self.invoker.lease().map(|l| l.id).unwrap_or_default();
                    self.recover_and_resubmit(RFaasError::LeaseExpired(lease_id))?;
                }
                ResultStatus::Rejected => {
                    // Redirect to a different worker; give up once every
                    // worker rejected the request.
                    self.redirections += 1;
                    if self.redirections as usize > self.invoker.worker_count() {
                        return Err(RFaasError::AllWorkersBusy);
                    }
                    let next_worker = (self.connection.index + 1) % self.invoker.worker_count();
                    let mut spec = self.spec.clone();
                    spec.worker = Some(next_worker);
                    let retry = self.invoker.submit_spec(spec)?;
                    self.connection = Arc::clone(&retry.connection);
                    self.invocation_id = retry.invocation_id;
                    self.epoch = retry.epoch;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::NodeResources;
    use sandbox::{echo_function, failing_function, CodePackage, FunctionRegistry};

    fn platform(workers: u32) -> (Arc<Fabric>, Arc<ResourceManager>, Invoker) {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(
            CodePackage::minimal("pkg")
                .with_function(echo_function())
                .with_function(failing_function("intentional")),
        );
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let mut invoker = Invoker::new(&fabric, "client-0", &manager, RFaasConfig::default());
        invoker
            .allocate(
                LeaseRequest::single_worker("pkg").with_cores(workers),
                PollingMode::Hot,
            )
            .unwrap();
        (fabric, manager, invoker)
    }

    #[test]
    fn buffers_round_trip_payloads() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        let alloc = invoker.allocator();
        let input = alloc.input(64);
        assert_eq!(input.capacity(), 64);
        assert_eq!(input.payload_offset(), INVOCATION_HEADER_BYTES);
        assert_eq!(input.write_payload(&[1, 2, 3]).unwrap(), 3);
        assert_eq!(input.read_payload(3).unwrap(), vec![1, 2, 3]);
        assert!(input.write_payload(&[0u8; 65]).is_err());

        let output = alloc.output(32);
        assert_eq!(output.payload_offset(), 0);
        let values = [1.5f64, -2.25, 3.0];
        output.write_f64(&values).unwrap();
        assert_eq!(output.read_f64(24).unwrap(), values);
    }

    #[test]
    fn read_payload_rejects_len_past_the_buffer_extent() {
        // Regression: read_payload/read_f64 used to clamp an oversized `len`
        // silently, handing back a short read the caller would misinterpret
        // as the complete result.
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        let alloc = invoker.allocator();
        let buf = alloc.output(32);
        buf.write_payload(&[1u8; 32]).unwrap();
        assert_eq!(buf.read_payload(32).unwrap().len(), 32);
        assert!(matches!(
            buf.read_payload(33),
            Err(RFaasError::PayloadTooLarge {
                payload: 33,
                capacity: 32
            })
        ));
        assert!(matches!(
            buf.read_f64(40),
            Err(RFaasError::PayloadTooLarge { .. })
        ));
        // Input buffers bound against the payload capacity, not the region
        // (which is header_space bytes larger).
        let input = alloc.input(16);
        assert!(input.read_payload(16).is_ok());
        assert!(input.read_payload(17).is_err());
    }

    #[test]
    fn small_invocations_ride_the_inline_path_without_staging_the_header() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(4096);
        let output = alloc.output(4096);
        input.write_payload(&[3u8; 8]).unwrap();
        let (len, _) = invoker.invoke_sync("echo", &input, 8, &output).unwrap();
        assert_eq!(len, 8);
        // Zero-copy check: the inline path never wrote the 24-byte header
        // into the client's input region — it travelled inside the WQE.
        assert_eq!(
            input.region().read(0, INVOCATION_HEADER_BYTES).unwrap(),
            vec![0u8; INVOCATION_HEADER_BYTES]
        );
        // A payload past the inline capacity takes the buffered path and
        // stages the header.
        input.write_payload(&[5u8; 2048]).unwrap();
        let (len, _) = invoker.invoke_sync("echo", &input, 2048, &output).unwrap();
        assert_eq!(len, 2048);
        assert_ne!(
            input.region().read(0, INVOCATION_HEADER_BYTES).unwrap(),
            vec![0u8; INVOCATION_HEADER_BYTES]
        );
    }

    // The demotion behaviour itself (mode switch, capped billing, warm
    // latency, one-shot) is pinned end-to-end in tests/invocation_spectrum.rs;
    // here only the negative case stays, close to the billing arithmetic.
    #[test]
    fn sub_timeout_gaps_do_not_demote() {
        let (_fabric, manager, invoker) = platform(1);
        let timeout = RFaasConfig::default().hot_poll_timeout;
        let alloc = invoker.allocator();
        let input = alloc.input(64);
        let output = alloc.output(64);
        input.write_payload(&[1u8; 8]).unwrap();
        invoker.invoke_sync("echo", &input, 8, &output).unwrap();
        for _ in 0..3 {
            invoker.clock().advance(timeout / 2);
            invoker.invoke_sync("echo", &input, 8, &output).unwrap();
        }
        let executor = manager.executor("exec-0").unwrap();
        let process = executor.allocator().processes().pop().unwrap();
        let process = process.lock();
        assert_eq!(process.workers()[0].mode(), PollingMode::Hot);
        let stats = process.stats();
        assert_eq!(stats.demotions, 0);
        // Every sub-budget spin is billed in full.
        assert!(stats.hot_poll_time >= (timeout / 2).saturating_mul(3));
    }

    #[test]
    fn allocate_invoke_deallocate_round_trip() {
        let (_fabric, manager, mut invoker) = platform(1);
        assert_eq!(invoker.worker_count(), 1);
        assert!(invoker.lease().is_some());
        let cold = invoker.cold_start().unwrap();
        assert!(cold.total().as_millis_f64() > 10.0);

        let alloc = invoker.allocator();
        let input = alloc.input(1024);
        let output = alloc.output(1024);
        let payload: Vec<u8> = (0..100u8).collect();
        input.write_payload(&payload).unwrap();
        let (len, rtt) = invoker
            .invoke_sync("echo", &input, payload.len(), &output)
            .unwrap();
        assert_eq!(len, 100);
        assert_eq!(output.read_payload(100).unwrap(), payload);
        assert!(
            rtt.as_micros_f64() > 1.0 && rtt.as_micros_f64() < 100.0,
            "rtt {rtt}"
        );

        invoker.deallocate().unwrap();
        assert_eq!(invoker.worker_count(), 0);
        assert_eq!(manager.lease_count(), 0);
    }

    #[test]
    fn hot_invocation_latency_matches_paper_range() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(64);
        let output = alloc.output(64);
        input.write_payload(&[7u8; 8]).unwrap();
        // Warm up the executor, then measure.
        invoker.invoke_sync("echo", &input, 8, &output).unwrap();
        let mut samples = Vec::new();
        for _ in 0..50 {
            let (_, rtt) = invoker.invoke_sync("echo", &input, 8, &output).unwrap();
            samples.push(rtt.as_micros_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        // Paper: ~3.96 us hot latency for small payloads.
        assert!((3.0..6.0).contains(&median), "hot median {median} us");
    }

    #[test]
    fn failed_allocation_releases_the_manager_lease() {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 8,
                memory_mib: 32 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let mut invoker = Invoker::new(&fabric, "client", &manager, RFaasConfig::default());

        // The manager grants the lease (it does not validate packages), then
        // the allocator rejects the unknown package. Regression: the granted
        // lease and its reserved resources must be released, not leaked.
        let err = invoker
            .allocate(
                LeaseRequest::single_worker("missing-pkg").with_cores(2),
                PollingMode::Hot,
            )
            .unwrap_err();
        assert!(matches!(err, RFaasError::UnknownPackage(_)));
        assert_eq!(manager.lease_count(), 0);
        assert_eq!(manager.available_resources().cores, 8);

        // Same contract when the executor-side worker spawn fails.
        executor.allocator().inject_spawn_failure(0);
        let err = invoker
            .allocate(
                LeaseRequest::single_worker("pkg").with_cores(2),
                PollingMode::Hot,
            )
            .unwrap_err();
        assert!(matches!(err, RFaasError::Internal(_)));
        assert_eq!(manager.lease_count(), 0);
        assert_eq!(manager.available_resources().cores, 8);
        assert_eq!(executor.allocator().available().cores, 8);
    }

    #[test]
    fn extend_lease_requires_an_allocation() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        assert!(matches!(
            invoker.extend_lease(SimDuration::from_secs(60)),
            Err(RFaasError::NotAllocated)
        ));
    }

    #[test]
    fn extend_lease_pushes_expiry_and_updates_executor_deadline() {
        let (_fabric, manager, invoker) = platform(1);
        let before = invoker.lease().unwrap();
        let new_expiry = invoker.extend_lease(SimDuration::from_secs(3600)).unwrap();
        assert!(new_expiry > before.expires_at);
        let after = invoker.lease().unwrap();
        assert_eq!(after.expires_at, new_expiry);
        assert_eq!(manager.lease(after.id).unwrap().expires_at, new_expiry);
        // The executor-side process deadline moved with the lease.
        let executor = manager.executor(&after.executor_node).unwrap();
        assert_eq!(executor.allocator().reap_expired(before.expires_at), 0);
    }

    #[test]
    fn failing_function_propagates_error() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        input.write_payload(&[1]).unwrap();
        let err = invoker
            .invoke_sync("always-fails", &input, 1, &output)
            .unwrap_err();
        assert!(matches!(err, RFaasError::Function(_)));
    }

    #[test]
    fn unknown_function_is_rejected_client_side() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        let err = invoker.submit("nope", &input, 0, &output).unwrap_err();
        assert!(matches!(err, RFaasError::UnknownFunction(_)));
    }

    #[test]
    fn submit_without_allocation_fails() {
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let invoker = Invoker::new(&fabric, "c", &manager, RFaasConfig::default());
        let alloc = invoker.allocator();
        let input = alloc.input(16);
        let output = alloc.output(16);
        assert!(matches!(
            invoker.submit("echo", &input, 0, &output),
            Err(RFaasError::NotAllocated)
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_transmission() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let huge = RFaasConfig::default().max_payload_bytes + 1024;
        let input = alloc.input(huge);
        let output = alloc.output(64);
        let err = invoker.submit("echo", &input, huge, &output).unwrap_err();
        assert!(matches!(err, RFaasError::PayloadTooLarge { .. }));
    }

    #[test]
    fn parallel_invocations_on_multiple_workers() {
        let (_fabric, _manager, invoker) = platform(4);
        assert_eq!(invoker.worker_count(), 4);
        let alloc = invoker.allocator();
        let inputs: Vec<Buffer> = (0..4).map(|_| alloc.input(1024)).collect();
        let outputs: Vec<Buffer> = (0..4).map(|_| alloc.output(1024)).collect();
        let mut futures = Vec::new();
        for (i, (input, output)) in inputs.iter().zip(outputs.iter()).enumerate() {
            let payload = vec![i as u8; 256];
            input.write_payload(&payload).unwrap();
            futures.push(invoker.submit("echo", input, 256, output).unwrap());
        }
        for (i, future) in futures.into_iter().enumerate() {
            let len = future.wait().unwrap();
            assert_eq!(len, 256);
            assert_eq!(outputs[i].read_payload(4).unwrap(), vec![i as u8; 4]);
        }
    }

    #[test]
    fn results_land_directly_in_output_buffer() {
        let (_fabric, _manager, invoker) = platform(1);
        let alloc = invoker.allocator();
        let input = alloc.input(4096);
        let output = alloc.output(4096);
        let data: Vec<f64> = (0..256).map(|i| i as f64 * 0.5).collect();
        let len = input.write_f64(&data).unwrap();
        let (out_len, _) = invoker.invoke_sync("echo", &input, len, &output).unwrap();
        assert_eq!(out_len, len);
        assert_eq!(output.read_f64(out_len).unwrap(), data);
    }

    #[test]
    fn worker_connect_surfaces_a_typed_timeout() {
        // Regression: the connect deadline was a hardcoded ten seconds; a
        // worker that never accepts must now fail within the configured
        // timeout with a typed error, not hang or panic.
        let fabric = Fabric::with_defaults();
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let config = RFaasConfig {
            connect_timeout: std::time::Duration::from_millis(50),
            ..Default::default()
        };
        let invoker = Invoker::new(&fabric, "client-0", &manager, config);
        // A listener nobody ever accepts on: the client's connect request
        // sits in the accept queue until the client gives up.
        let _silent = rdma_fabric::Listener::bind(&fabric, "rfaas://dead-node/1/1");
        let worker = crate::executor::WorkerEndpointInfo {
            address: "rfaas://dead-node/1/1".to_string(),
            max_payload: 4096,
        };
        let started = std::time::Instant::now();
        let err = match invoker.connect_workers(std::slice::from_ref(&worker), "dead-node") {
            Ok(_) => panic!("connect to a silent worker unexpectedly succeeded"),
            Err(err) => err,
        };
        assert!(
            matches!(
                err,
                RFaasError::Fabric(rdma_fabric::FabricError::Timeout {
                    operation: "connect"
                })
            ),
            "expected typed connect timeout, got {err:?}"
        );
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
    }
}
