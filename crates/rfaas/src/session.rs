//! The typed session API: allocation builder, function handles and batched
//! completion sets.
//!
//! This is the surface client applications are meant to program against
//! (Listing 2 of the paper, minus the transport plumbing). A [`Session`] is
//! one leased allocation, built fluently through an [`AllocationBuilder`];
//! it hands out typed [`FunctionHandle`]s whose [`Codec`]s infer payload
//! lengths and buffer sizes, so callers never thread
//! `(function, buffer, payload_len, buffer)` tuples by hand. Scatter/gather
//! work goes through [`FunctionHandle::map_workers`], which posts each wave
//! of one-invocation-per-worker behind one shared doorbell (the chained-WQE
//! path of [`rdma_fabric::QueuePair::post_send_batch`]) and returns a
//! [`CompletionSet`] with `wait_any`/`wait_all`.
//!
//! The raw buffer API stays reachable through [`Session::raw`] for callers
//! that need explicit zero-copy control (the invocation-spectrum tests, the
//! latency microbenchmarks).
//!
//! Lease-recovery semantics are first-class here: the allocation epoch each
//! submission observed and the transparent re-allocation budget flow through
//! [`TypedFuture`] and [`CompletionSet`] exactly as they do through the raw
//! [`InvocationFuture`], and the budget is a knob on the builder
//! ([`AllocationBuilder::recovery_budget`]).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;

use rdma_fabric::{ConnectionPool, Fabric};
use sandbox::SandboxType;
use sim_core::sync::{ranks, OrderedMutex};
use sim_core::{SimDuration, SimTime, VirtualClock};

use crate::client::{
    BatchStats, Buffer, BufferAllocator, ColdStartBreakdown, ConnectionPlaneStats,
    InvocationFuture, InvocationSpec, Invoker,
};
use crate::codec::Codec;
use crate::config::{PollingMode, RFaasConfig};
use crate::error::{RFaasError, Result};
use crate::executor::{AllocationPolicy, ForkFaultState};
use crate::manager::ResourceManager;
use crate::protocol::{Lease, LeaseRequest};
use crate::reactor::Reactor;
use state_plane::{StateClientStats, StateError, StateKey, StatePlane, StateSpec};

/// Smallest output buffer the typed layer registers when the caller gives no
/// explicit capacity: results at least as large as a small page are common
/// (echo-style functions return the input; most others return less), and a
/// floor keeps tiny inputs from allocating unusably small result buffers.
const MIN_OUTPUT_CAPACITY: usize = 4096;

/// Upper bound on buffer pairs the session's pool retains; beyond it,
/// released buffers are dropped (deregistered) instead of cached.
const MAX_POOLED_PAIRS: usize = 64;

/// Fluent builder for a [`Session`]: lease shape, sandbox, polling mode and
/// recovery policy in one place (the typed replacement for hand-assembling a
/// [`LeaseRequest`] and calling `Invoker::allocate`).
#[derive(Debug, Clone)]
pub struct AllocationBuilder {
    fabric: Arc<Fabric>,
    client_node: String,
    manager: Arc<ResourceManager>,
    config: RFaasConfig,
    package: String,
    cores: u32,
    memory_mib: u64,
    sandbox: SandboxType,
    lease_timeout: Option<SimDuration>,
    mode: PollingMode,
    policy: AllocationPolicy,
    recovery_budget: u32,
    start_at: Option<SimTime>,
    reactor: Option<Reactor>,
    shared_clock: Option<Arc<VirtualClock>>,
    connection_pool: Option<ConnectionPool>,
    connect_timeout: Option<std::time::Duration>,
    state_plane: Option<StatePlane>,
}

impl AllocationBuilder {
    /// Start building a session for `client_node` against `manager`,
    /// requesting the deployed code package `package`. Defaults: one worker,
    /// 512 MiB, bare-metal sandbox, hot polling, the manager's configuration
    /// defaults for lease timeout, and the standard recovery budget.
    pub fn new(
        fabric: &Arc<Fabric>,
        client_node: &str,
        manager: &Arc<ResourceManager>,
        package: &str,
    ) -> AllocationBuilder {
        AllocationBuilder {
            fabric: Arc::clone(fabric),
            client_node: client_node.to_string(),
            manager: Arc::clone(manager),
            config: RFaasConfig::default(),
            package: package.to_string(),
            cores: 1,
            memory_mib: 512,
            sandbox: SandboxType::BareMetal,
            lease_timeout: None,
            mode: PollingMode::Hot,
            policy: AllocationPolicy::Cold,
            recovery_budget: Invoker::DEFAULT_RECOVERY_BUDGET,
            start_at: None,
            reactor: None,
            shared_clock: None,
            connection_pool: None,
            connect_timeout: None,
            state_plane: None,
        }
    }

    /// Use an explicit platform configuration (cost calibration, payload
    /// limits) instead of the default paper calibration.
    pub fn config(mut self, config: RFaasConfig) -> AllocationBuilder {
        self.config = config;
        self
    }

    /// Number of executor workers (= parallel function instances) to lease.
    pub fn workers(mut self, cores: u32) -> AllocationBuilder {
        self.cores = cores;
        self
    }

    /// Memory to lease for the executor process, in MiB.
    pub fn memory_mib(mut self, memory_mib: u64) -> AllocationBuilder {
        self.memory_mib = memory_mib;
        self
    }

    /// Sandbox technology isolating the executor.
    pub fn sandbox(mut self, sandbox: SandboxType) -> AllocationBuilder {
        self.sandbox = sandbox;
        self
    }

    /// Lease lifetime (defaults to the request default of ten minutes).
    pub fn lease_timeout(mut self, timeout: SimDuration) -> AllocationBuilder {
        self.lease_timeout = Some(timeout);
        self
    }

    /// How the leased workers wait for invocations (hot busy-polling, warm
    /// blocking, or adaptive).
    pub fn polling(mut self, mode: PollingMode) -> AllocationBuilder {
        self.mode = mode;
        self
    }

    /// How the allocator provisions the executor sandbox: a full cold spawn
    /// (the default), a remote fork from a parked warm parent's snapshot
    /// ([`AllocationPolicy::Fork`]), or a warm-pool resume
    /// ([`AllocationPolicy::WarmPool`]). Fork and warm-pool silently degrade
    /// to a cold spawn when no suitable parent is parked on the chosen
    /// executor.
    pub fn allocation_policy(mut self, policy: AllocationPolicy) -> AllocationBuilder {
        self.policy = policy;
        self
    }

    /// Maximum transparent lease re-allocations per invocation before the
    /// failure surfaces (see [`Invoker::DEFAULT_RECOVERY_BUDGET`]).
    pub fn recovery_budget(mut self, budget: u32) -> AllocationBuilder {
        self.recovery_budget = budget;
        self
    }

    /// Advance the session's virtual clock to `at` before allocating (for
    /// trace-driven clients whose requests arrive at a known instant).
    pub fn starting_at(mut self, at: SimTime) -> AllocationBuilder {
        self.start_at = Some(at);
        self
    }

    /// Drive this session's completions from a shared [`Reactor`]: sessions
    /// built against the same reactor are pumped by one event loop, so a
    /// single client thread sustains in-flight invocations across all of
    /// them at once.
    pub fn reactor(mut self, reactor: &Reactor) -> AllocationBuilder {
        self.reactor = Some(reactor.clone());
        self
    }

    /// Share a virtual clock with other sessions (they model one client
    /// thread, whose virtual time advances across all of them).
    pub fn clock(mut self, clock: &Arc<VirtualClock>) -> AllocationBuilder {
        self.shared_clock = Some(Arc::clone(clock));
        self
    }

    /// Lease worker connections through a shared [`ConnectionPool`]:
    /// sessions built against the same pool reuse connection warmth left by
    /// earlier leases to the same executor node, so re-allocation after
    /// churn pays the warm setup tier instead of the full handshake.
    pub fn connection_pool(mut self, pool: &ConnectionPool) -> AllocationBuilder {
        self.connection_pool = Some(pool.clone());
        self
    }

    /// Wall-clock deadline for each worker connection (and the hello that
    /// follows). Overrides [`RFaasConfig::connect_timeout`].
    pub fn connect_timeout(mut self, timeout: std::time::Duration) -> AllocationBuilder {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Attach a [`StatePlane`] to the session: [`Session::state`] gains the
    /// zero-copy get/put surface, and function handles may declare key
    /// dependencies via [`FunctionHandle::with_state`]. The executor process
    /// is bound to the same plane at allocation time (and re-bound across
    /// transparent re-allocations).
    pub fn state_plane(mut self, plane: &StatePlane) -> AllocationBuilder {
        self.state_plane = Some(plane.clone());
        self
    }

    /// Acquire the lease, spin up the workers and connect to them (the cold
    /// path of Fig. 5/6), returning the live [`Session`].
    pub fn connect(self) -> Result<Session> {
        let mut config = self.config;
        if let Some(timeout) = self.connect_timeout {
            config.connect_timeout = timeout;
        }
        let mut invoker = Invoker::new(&self.fabric, &self.client_node, &self.manager, config);
        invoker.set_recovery_budget(self.recovery_budget);
        invoker.set_allocation_policy(self.policy);
        if let Some(pool) = self.connection_pool {
            invoker.set_connection_pool(pool);
        }
        if let Some(reactor) = self.reactor {
            invoker.set_reactor(reactor);
        }
        if let Some(clock) = self.shared_clock {
            invoker.set_clock(clock);
        }
        if let Some(plane) = self.state_plane {
            invoker.set_state_plane(&plane);
        }
        if let Some(at) = self.start_at {
            invoker.clock().advance_to(at);
        }
        let mut request = LeaseRequest::single_worker(&self.package)
            .with_cores(self.cores)
            .with_memory_mib(self.memory_mib)
            .with_sandbox(self.sandbox);
        if let Some(timeout) = self.lease_timeout {
            request.timeout = timeout;
        }
        invoker.allocate(request, self.mode)?;
        Ok(Session {
            invoker,
            pool: BufferPool::default(),
        })
    }
}

/// Pool of registered (input, output) buffer pairs reused across typed
/// invocations, so steady-state invocations never re-register memory.
struct BufferPool {
    free: OrderedMutex<Vec<(Buffer, Buffer)>>,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool {
            free: OrderedMutex::new(ranks::SESSION_BUFFER_POOL, Vec::new()),
        }
    }
}

impl BufferPool {
    fn acquire(
        &self,
        allocator: &BufferAllocator,
        input_capacity: usize,
        output_capacity: usize,
    ) -> (Buffer, Buffer) {
        let mut free = self.free.lock();
        if let Some(position) = free
            .iter()
            .position(|(i, o)| i.capacity() >= input_capacity && o.capacity() >= output_capacity)
        {
            return free.swap_remove(position);
        }
        drop(free);
        (
            allocator.input(input_capacity),
            allocator.output(output_capacity),
        )
    }

    fn release(&self, pair: (Buffer, Buffer)) {
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED_PAIRS {
            free.push(pair);
        }
    }
}

/// One leased allocation and the typed invocation surface on top of it.
///
/// A session owns the underlying [`Invoker`] (lease, worker connections,
/// recovery machinery) plus a pool of registered buffers shared by every
/// [`FunctionHandle`] it hands out. Dropping the session releases the lease.
pub struct Session {
    invoker: Invoker,
    pool: BufferPool,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("invoker", &self.invoker)
            .finish()
    }
}

impl Session {
    /// Start building a session (see [`AllocationBuilder`]).
    pub fn builder(
        fabric: &Arc<Fabric>,
        client_node: &str,
        manager: &Arc<ResourceManager>,
        package: &str,
    ) -> AllocationBuilder {
        AllocationBuilder::new(fabric, client_node, manager, package)
    }

    /// Resolve `name` in the session's function registry and return a typed
    /// handle for it. Unknown functions fail here, at handle creation, not at
    /// the first invocation.
    pub fn function<I, O>(&self, name: &str) -> Result<FunctionHandle<'_, I, O>>
    where
        I: Codec + ?Sized,
        O: Codec + ?Sized,
    {
        if !self.invoker.has_function(name) {
            return Err(RFaasError::UnknownFunction(name.to_string()));
        }
        Ok(FunctionHandle {
            session: self,
            name: name.to_string(),
            output_capacity: None,
            _typed: PhantomData,
        })
    }

    /// Names of every function the allocated code package serves.
    pub fn function_names(&self) -> Vec<String> {
        self.invoker.function_names()
    }

    /// The raw buffer-level client underneath the typed surface — the
    /// explicit escape hatch for callers that manage registered buffers and
    /// payload lengths themselves (zero-copy spectrum tests, latency
    /// microbenchmarks).
    pub fn raw(&self) -> &Invoker {
        &self.invoker
    }

    /// The session's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        self.invoker.clock()
    }

    /// Buffer allocator bound to the session's protection domain (for raw
    /// buffer management alongside the typed surface).
    pub fn allocator(&self) -> BufferAllocator {
        self.invoker.allocator()
    }

    /// The active lease, if any.
    pub fn lease(&self) -> Option<Lease> {
        self.invoker.lease()
    }

    /// Cold-start breakdown of the session's allocation.
    pub fn cold_start(&self) -> Option<ColdStartBreakdown> {
        self.invoker.cold_start()
    }

    /// One unified snapshot of the session's runtime counters: the
    /// connection plane, the fork fault state (when provisioned by
    /// [`AllocationPolicy::Fork`]), both sides of the state plane (when one
    /// is attached), worker count and transparent recoveries. This replaces
    /// the per-subsystem accessors that used to accrete on the session.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            connections: self.invoker.connection_stats(),
            fork: self.invoker.fork_state(),
            state_session: self.invoker.state_stats(),
            state_executor: self.invoker.executor_state_stats(),
            workers: self.invoker.worker_count(),
            recoveries: self.invoker.recoveries(),
        }
    }

    /// Typed surface over the session's state-plane attachment (see
    /// [`AllocationBuilder::state_plane`]). Operations fail with
    /// [`RFaasError::StatePlane`] when no plane is attached.
    pub fn state(&self) -> SessionState<'_> {
        SessionState {
            invoker: &self.invoker,
        }
    }

    /// Fault state of the session's forked sandbox.
    #[deprecated(note = "use Session::stats().fork")]
    pub fn fork_state(&self) -> Option<Arc<ForkFaultState>> {
        self.invoker.fork_state()
    }

    /// Connection-plane counters.
    #[deprecated(note = "use Session::stats().connections")]
    pub fn connection_stats(&self) -> ConnectionPlaneStats {
        self.invoker.connection_stats()
    }

    /// Number of connected executor workers.
    pub fn worker_count(&self) -> usize {
        self.invoker.worker_count()
    }

    /// How many times the session transparently re-allocated after a lease
    /// expiry or executor loss.
    pub fn recoveries(&self) -> u32 {
        self.invoker.recoveries()
    }

    /// Renew the lease, pushing its expiry to `now + extension`; returns the
    /// new expiry instant.
    pub fn extend_lease(&self, extension: SimDuration) -> Result<SimTime> {
        self.invoker.extend_lease(extension)
    }

    /// Release the lease and all executor resources.
    pub fn close(mut self) -> Result<()> {
        self.invoker.deallocate()
    }
}

/// Unified runtime counters of one [`Session`] (see [`Session::stats`]).
///
/// Marked `#[non_exhaustive]`: new planes will add fields here instead of
/// adding accessors on the session, so construct it only through
/// [`Session::stats`] and keep a `..` pattern when destructuring.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SessionStats {
    /// Connection-plane counters: physical connects, pool hits/misses and
    /// the executor's shared-receive-queue depth high watermark.
    pub connections: ConnectionPlaneStats,
    /// Fault state of a fork-provisioned sandbox (`None` otherwise).
    pub fork: Option<Arc<ForkFaultState>>,
    /// Session-side state-cache counters (`None` without a state plane).
    pub state_session: Option<StateClientStats>,
    /// Executor-side state-cache counters (`None` without a state plane or
    /// an active allocation).
    pub state_executor: Option<StateClientStats>,
    /// Connected executor workers.
    pub workers: usize,
    /// Transparent re-allocations after lease expiry or executor loss.
    pub recoveries: u32,
}

/// The session's window onto its attached state plane: zero-copy reads out
/// of the pre-registered cache, push-model writes, and typed in-place views
/// through a [`Codec`].
#[derive(Clone, Copy)]
pub struct SessionState<'s> {
    invoker: &'s Invoker,
}

impl std::fmt::Debug for SessionState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("attached", &self.invoker.has_state_plane())
            .finish()
    }
}

impl SessionState<'_> {
    /// Whether `key` currently exists in the plane.
    pub fn contains(&self, key: &str) -> bool {
        self.invoker.state_contains(key)
    }

    /// Store `value` under `key` (push-model RDMA write; the session's own
    /// cache is write-through, so a following `get` is a local hit).
    pub fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.invoker.state_put(key, value)
    }

    /// Encode `value` through its [`Codec`] and store it under `key`.
    pub fn put_encoded<C>(&self, key: &str, value: &C) -> Result<()>
    where
        C: Codec + ?Sized,
    {
        let mut buf = vec![0u8; value.encoded_len()];
        value.encode_into(&mut buf)?;
        self.invoker.state_put(key, &buf)
    }

    /// Read `key` into an owned vector (hot keys come straight out of the
    /// local cache; cold keys pay one one-sided RDMA read).
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.invoker.state_get(key)
    }

    /// Read `key` and decode it *in place* through `C`'s
    /// [`Codec::decode_view`]: `f` runs over a typed view borrowing the
    /// cached bytes where they lie — no staging copy leaves the
    /// pre-registered cache region.
    pub fn view<C, R>(&self, key: &str, f: impl FnOnce(C::View<'_>) -> R) -> Result<R>
    where
        C: Codec + ?Sized,
    {
        self.invoker
            .state_get_with(key, |bytes| C::decode_view(bytes).map(f))?
    }

    /// Delete `key`; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool> {
        self.invoker.state_delete(key)
    }

    /// Session-side cache counters (`None` before the first allocation).
    pub fn stats(&self) -> Option<StateClientStats> {
        self.invoker.state_stats()
    }
}

/// Zero-sized marker tying a handle to its input/output codec types without
/// imposing `Send`/`Sync` or ownership semantics on either.
type HandleTypes<I, O> = PhantomData<(fn(&I), fn() -> O)>;

/// A typed handle on one deployed function: payload sizing, buffer pooling
/// and submission all derive from the input/output [`Codec`]s.
pub struct FunctionHandle<'s, I: ?Sized, O: ?Sized> {
    session: &'s Session,
    name: String,
    output_capacity: Option<usize>,
    _typed: HandleTypes<I, O>,
}

impl<I: ?Sized, O: ?Sized> std::fmt::Debug for FunctionHandle<'_, I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionHandle")
            .field("function", &self.name)
            .finish()
    }
}

impl<I: ?Sized, O: ?Sized> Clone for FunctionHandle<'_, I, O> {
    fn clone(&self) -> Self {
        FunctionHandle {
            session: self.session,
            name: self.name.clone(),
            output_capacity: self.output_capacity,
            _typed: PhantomData,
        }
    }
}

impl<'s, I, O> FunctionHandle<'s, I, O>
where
    I: Codec + ?Sized,
    O: Codec + ?Sized,
{
    /// The function's deployed name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserve result buffers of at least `bytes` for this handle's
    /// invocations. Without this, the result capacity defaults to the encoded
    /// input length (floored at a small page) — right for echo-shaped
    /// functions, too small for functions whose output outgrows their input.
    pub fn with_output_capacity(mut self, bytes: usize) -> Self {
        self.output_capacity = Some(bytes);
        self
    }

    /// Declare the state-plane keys this handle's invocations touch and how
    /// ([`StateKey::read`] / [`StateKey::read_write`]). Validated here, at
    /// bind time: the session must have a plane attached and every declared
    /// key must exist, so a typo'd key fails the bind instead of the Nth
    /// invocation. The executor materialises exactly the declared set before
    /// dispatch and writes dirty read-write keys back after completion; any
    /// access outside the declaration fails the invocation.
    pub fn with_state(self, keys: impl IntoIterator<Item = StateKey>) -> Result<Self> {
        let invoker = &self.session.invoker;
        if !invoker.has_state_plane() {
            return Err(RFaasError::StatePlane(StateError::Protocol(
                "no state plane is attached to this session".into(),
            )));
        }
        let spec = StateSpec::new(keys);
        for key in spec.keys() {
            if !invoker.state_contains(&key.name) {
                return Err(RFaasError::StatePlane(StateError::UnknownKey(
                    key.name.clone(),
                )));
            }
        }
        invoker.bind_state_spec(&self.name, spec)?;
        Ok(self)
    }

    /// Build the invocation spec for `input`: size the buffers from the
    /// codec, draw them from the session pool, and encode the payload.
    fn spec_for(&self, worker: Option<usize>, input: &I) -> Result<InvocationSpec> {
        let payload_len = input.encoded_len();
        let output_capacity = self
            .output_capacity
            .unwrap_or_else(|| payload_len.max(MIN_OUTPUT_CAPACITY));
        let (input_buffer, output_buffer) =
            self.session
                .pool
                .acquire(&self.session.allocator(), payload_len, output_capacity);
        input_buffer.write_encoded(input)?;
        Ok(InvocationSpec {
            worker,
            function: self.name.clone(),
            input: input_buffer,
            payload_len,
            output: output_buffer,
        })
    }

    /// Submit asynchronously; the returned future resolves to the decoded
    /// result.
    pub fn submit(&self, input: &I) -> Result<TypedFuture<'s, O>> {
        let spec = self.spec_for(None, input)?;
        Ok(TypedFuture {
            future: self.session.invoker.submit_spec(spec)?,
            session: self.session,
            _typed: PhantomData,
        })
    }

    /// Submit asynchronously to a specific worker (explicit partitioning).
    pub fn submit_to_worker(&self, worker: usize, input: &I) -> Result<TypedFuture<'s, O>> {
        let spec = self.spec_for(Some(worker), input)?;
        Ok(TypedFuture {
            future: self.session.invoker.submit_spec(spec)?,
            session: self.session,
            _typed: PhantomData,
        })
    }

    /// Invoke synchronously and decode the result.
    pub fn invoke(&self, input: &I) -> Result<O::Owned> {
        self.submit(input)?.wait()
    }

    /// Invoke synchronously, returning the decoded result and the
    /// client-observed round-trip time.
    pub fn invoke_timed(&self, input: &I) -> Result<(O::Owned, SimDuration)> {
        let start = self.session.clock().now();
        let value = self.invoke(input)?;
        Ok((value, self.session.clock().now().saturating_since(start)))
    }

    /// Scatter one invocation per input across the session's workers (input
    /// `i` goes to worker `i mod worker_count`), posting each wave of up to
    /// `worker_count` submissions behind one shared doorbell: the wave's
    /// first WQE pays the full issue cost, the rest ride the chained-WQE
    /// path of [`rdma_fabric::QueuePair::post_send_batch`]. Returns a
    /// [`CompletionSet`] for gathering the results.
    ///
    /// Waves exist because each worker exposes a single registered input
    /// slot (one in-flight invocation per worker, as in the paper's
    /// protocol): a second write to the same worker before the first is
    /// consumed would clobber its header and payload. With more inputs than
    /// workers, the completion set posts the next wave as the previous one
    /// is gathered — callers still see one scatter and one result vector.
    /// Payloads are encoded into registered buffers for the whole scatter up
    /// front (peak registration scales with the input count, bounded by the
    /// session pool's recycling); keep individual scatters to what the
    /// client can afford to register at once.
    pub fn map_workers<'i, It>(&self, inputs: It) -> Result<CompletionSet<'s, O>>
    where
        It: IntoIterator<Item = &'i I>,
        I: 'i,
    {
        let workers = self.session.worker_count();
        if workers == 0 {
            return Err(RFaasError::NotAllocated);
        }
        let mut specs = Vec::new();
        for (index, input) in inputs.into_iter().enumerate() {
            specs.push(self.spec_for(Some(index % workers), input)?);
        }
        let total = specs.len();
        let queued: VecDeque<(usize, InvocationSpec)> = specs.into_iter().enumerate().collect();
        let mut set = CompletionSet {
            entries: (0..total).map(|_| None).collect(),
            queued,
            wave: workers,
            session: self.session,
            stats: BatchStats::default(),
            ready: Arc::new(OrderedMutex::new(ranks::REACTOR_READY, VecDeque::new())),
        };
        set.submit_next_wave()?;
        Ok(set)
    }
}

/// The in-flight result of one typed submission; waiting decodes the output
/// through `O`'s [`Codec`] and recycles the invocation's buffers into the
/// session pool. Transparent redirection and lease recovery behave exactly
/// as on the raw [`InvocationFuture`].
pub struct TypedFuture<'s, O: ?Sized> {
    future: InvocationFuture<'s>,
    session: &'s Session,
    _typed: PhantomData<fn() -> O>,
}

impl<O: ?Sized> std::fmt::Debug for TypedFuture<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.future.fmt(f)
    }
}

impl<O> TypedFuture<'_, O>
where
    O: Codec + ?Sized,
{
    /// The invocation identifier carried in the immediate value.
    pub fn id(&self) -> u32 {
        self.future.id()
    }

    /// Number of transparent lease re-allocations this invocation consumed
    /// so far.
    pub fn recoveries(&self) -> u32 {
        self.future.recoveries()
    }

    /// Non-blocking completion probe (see
    /// [`InvocationFuture::is_complete`]).
    pub fn is_complete(&self) -> bool {
        self.future.is_complete()
    }

    /// Block until the result is available, decode it, and return the
    /// invocation's buffers to the session pool.
    pub fn wait(self) -> Result<O::Owned> {
        let buffers = self.future.buffers();
        let len = self.future.wait()?;
        let value = buffers.1.read_decoded::<O>(len)?;
        self.session.pool.release(buffers);
        Ok(value)
    }
}

/// A set of in-flight typed invocations submitted as doorbell-batched waves
/// ([`FunctionHandle::map_workers`]).
///
/// Results are gathered with [`CompletionSet::wait_all`] (submission order)
/// or drained one at a time with [`CompletionSet::wait_any`]. When the
/// scatter holds more inputs than workers, only one wave (one invocation
/// per worker) is in flight at a time — each worker has a single input
/// slot — and the next wave posts automatically once the current one has
/// been fully gathered.
pub struct CompletionSet<'s, O: ?Sized> {
    /// One slot per input; `Some` while that invocation is in flight,
    /// `None` before its wave posts and after its result is gathered.
    entries: Vec<Option<TypedFuture<'s, O>>>,
    /// Not-yet-posted (index, spec) pairs, in submission order.
    queued: VecDeque<(usize, InvocationSpec)>,
    /// Submissions per wave (= the session's worker count at scatter time).
    wave: usize,
    session: &'s Session,
    stats: BatchStats,
    /// Entry indices whose results the reactor has dispatched, in completion
    /// order. `wait_any` pops this queue instead of rescanning every entry —
    /// the old rescan made gathering an n-entry scatter quadratic. Indices
    /// are hints: a duplicate (from the post-registration stash re-check) is
    /// skipped because its entry slot is already `None`.
    ready: Arc<OrderedMutex<VecDeque<usize>>>,
}

impl<O: ?Sized> std::fmt::Debug for CompletionSet<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSet")
            .field("pending", &self.pending())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<O: ?Sized> CompletionSet<'_, O> {
    /// Number of invocations not yet gathered (in flight or queued for a
    /// later wave).
    pub fn pending(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count() + self.queued.len()
    }

    /// Whether every invocation has been gathered.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Doorbell accounting across every wave posted so far: how many WQEs
    /// shared how many doorbells, and what the posting bursts cost on the
    /// client clock. A scatter of one invocation per worker is a single
    /// wave and therefore a single doorbell.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Post the next wave of queued specs (one per worker at most) behind a
    /// shared doorbell. No-op while the current wave still has in-flight
    /// entries — a worker's single input slot must be free before the next
    /// write to it.
    fn submit_next_wave(&mut self) -> Result<()> {
        if self.queued.is_empty() || self.entries.iter().any(|e| e.is_some()) {
            return Ok(());
        }
        let take = self.wave.min(self.queued.len());
        let batch: Vec<(usize, InvocationSpec)> = self.queued.drain(..take).collect();
        let specs: Vec<InvocationSpec> = batch.iter().map(|(_, s)| s.clone()).collect();
        let (futures, stats) = self.session.invoker.submit_specs(&specs)?;
        let reactor = self.session.invoker.reactor();
        for ((index, _), future) in batch.into_iter().zip(futures) {
            // Arm the continuation, then re-check the stash: a concurrent
            // reactor turn may have pumped this result before the
            // continuation existed, in which case the ready push happens
            // here (a duplicate hint is harmless, a missing one would hang).
            let (token, id) = future.reactor_key();
            reactor.register_continuation(token, id, &self.ready, index);
            if future.has_stashed_result() {
                self.ready.lock().push_back(index);
            }
            self.entries[index] = Some(TypedFuture {
                future,
                session: self.session,
                _typed: PhantomData,
            });
        }
        self.stats.submissions += stats.submissions;
        self.stats.doorbells += stats.doorbells;
        self.stats.chained_wqes += stats.chained_wqes;
        self.stats.post_time += stats.post_time;
        Ok(())
    }
}

impl<O: ?Sized> Drop for CompletionSet<'_, O> {
    fn drop(&mut self) {
        // Continuations of never-gathered entries must not outlive the set:
        // their ready queue dies with it, and the 24-bit invocation ids
        // eventually wrap around onto fresh submissions.
        let reactor = self.session.invoker.reactor();
        for entry in self.entries.iter().flatten() {
            let (token, id) = entry.future.reactor_key();
            reactor.cancel_continuation(token, id);
        }
    }
}

impl<'s, O> CompletionSet<'s, O>
where
    O: Codec + ?Sized,
{
    /// Disarm the entry's continuation (its hint either fired already or is
    /// now moot) and gather its result.
    fn gather(&self, future: TypedFuture<'s, O>) -> Result<O::Owned> {
        let (token, id) = future.future.reactor_key();
        self.session
            .invoker
            .reactor()
            .cancel_continuation(token, id);
        future.wait()
    }

    /// Wait for the next available result, in completion order: the reactor
    /// dispatches each finished invocation's index onto the set's ready
    /// queue, so a gather is O(1) instead of a rescan of every entry (the
    /// old rescan made draining an n-entry scatter quadratic). If nothing is
    /// ready the reactor is driven until something completes. Once a wave is
    /// fully gathered the next queued wave posts. Returns the submission
    /// index with the decoded result, or `None` once everything has been
    /// gathered.
    pub fn wait_any(&mut self) -> Result<Option<(usize, O::Owned)>> {
        self.submit_next_wave()?;
        loop {
            // Completions the reactor already dispatched, oldest first.
            let hint = self.ready.lock().pop_front();
            if let Some(index) = hint {
                if let Some(future) = self.entries[index].take() {
                    return Ok(Some((index, self.gather(future)?)));
                }
                // Stale duplicate hint for an already-gathered entry.
                continue;
            }
            if self.entries.iter().all(|e| e.is_none()) {
                return Ok(None);
            }
            // Nothing dispatched yet: drive the shared event loop. An empty
            // sweep can also mean a connection died (its continuation will
            // never fire) — fall back to a blocking gather on the first such
            // entry, whose wait() runs the transparent recovery path.
            if self.session.invoker.reactor().turn() == 0 {
                let lost = (0..self.entries.len()).find(|&i| {
                    self.entries[i]
                        .as_ref()
                        .is_some_and(|f| f.future.connection_lost())
                });
                if let Some(index) = lost {
                    let future = self.entries[index].take().expect("checked is_some");
                    return Ok(Some((index, self.gather(future)?)));
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Wait for every still-pending result, returned in submission order
    /// (results already gathered through [`CompletionSet::wait_any`] are not
    /// repeated).
    pub fn wait_all(mut self) -> Result<Vec<O::Owned>> {
        let mut slots: Vec<Option<O::Owned>> = (0..self.entries.len()).map(|_| None).collect();
        while let Some((index, value)) = self.wait_any()? {
            slots[index] = Some(value);
        }
        Ok(slots.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SpotExecutor;
    use cluster_sim::NodeResources;
    use sandbox::{echo_function, failing_function, CodePackage, FunctionRegistry};

    fn platform(cores: u32) -> (Arc<Fabric>, Arc<ResourceManager>, Session) {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(
            CodePackage::minimal("pkg")
                .with_function(echo_function())
                .with_function(failing_function("intentional")),
        );
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let session = Session::builder(&fabric, "client-0", &manager, "pkg")
            .workers(cores)
            .connect()
            .unwrap();
        (fabric, manager, session)
    }

    #[test]
    fn typed_invoke_round_trips_bytes_and_f64() {
        let (_f, _m, session) = platform(1);
        let echo_bytes = session.function::<[u8], [u8]>("echo").unwrap();
        assert_eq!(echo_bytes.invoke(&[1u8, 2, 3][..]).unwrap(), vec![1, 2, 3]);

        let echo_f64 = session.function::<[f64], [f64]>("echo").unwrap();
        let values = [1.5f64, -2.25, 4.0];
        let (reply, rtt) = echo_f64.invoke_timed(&values[..]).unwrap();
        assert_eq!(reply, values.to_vec());
        assert!(rtt.as_micros_f64() > 0.0);
    }

    #[test]
    fn unknown_functions_fail_at_handle_creation() {
        let (_f, _m, session) = platform(1);
        assert!(matches!(
            session.function::<[u8], [u8]>("nope"),
            Err(RFaasError::UnknownFunction(_))
        ));
        assert!(session.function_names().contains(&"echo".to_string()));
    }

    #[test]
    fn map_workers_batches_behind_one_doorbell_and_preserves_order() {
        let (_f, _m, session) = platform(4);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let inputs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 256]).collect();
        let set = echo
            .map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap();
        let stats = set.stats();
        assert_eq!(stats.submissions, 4);
        assert_eq!(stats.doorbells, 1);
        assert_eq!(stats.chained_wqes, 3);
        assert_eq!(set.pending(), 4);
        let results = set.wait_all().unwrap();
        assert_eq!(results, inputs);
    }

    #[test]
    fn batched_submission_posts_cheaper_than_sequential() {
        // The whole point of the shared doorbell: N scatter submissions cost
        // the client clock less than N individually posted submissions.
        let (_f, _m, session) = platform(8);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let inputs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 2048]).collect();
        // Warm the buffer pool so both measurements reuse registered memory.
        echo.map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap()
            .wait_all()
            .unwrap();

        let set = echo
            .map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap();
        let batched = set.stats().post_time;
        set.wait_all().unwrap();

        let start = session.clock().now();
        let futures: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(w, v)| echo.submit_to_worker(w, v.as_slice()).unwrap())
            .collect();
        let sequential = session.clock().now().saturating_since(start);
        for f in futures {
            f.wait().unwrap();
        }
        assert!(
            batched < sequential,
            "batched posting {batched} must beat sequential posting {sequential}"
        );
    }

    #[test]
    fn map_workers_accepts_more_inputs_than_workers() {
        // 64 inputs on 4 workers: each worker has ONE input slot, so the
        // scatter proceeds in 16 waves of 4, each wave behind one doorbell,
        // and every input must come back intact and in submission order
        // (regression: a single 64-wide burst used to clobber the workers'
        // input slots, returning the last payload — or nothing — for all
        // but the final wave).
        let (_f, _m, session) = platform(4);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let inputs: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; 32]).collect();
        let set = echo
            .map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap();
        // Only the first wave has posted so far.
        assert_eq!(set.stats().submissions, 4);
        assert_eq!(set.stats().doorbells, 1);
        assert_eq!(set.pending(), 64);
        let results = set.wait_all().unwrap();
        assert_eq!(results, inputs);
    }

    #[test]
    fn wait_any_crosses_wave_boundaries() {
        let (_f, _m, session) = platform(2);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let inputs: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i + 1; 16]).collect();
        let mut set = echo
            .map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap();
        let mut seen = [false; 6];
        while let Some((index, value)) = set.wait_any().unwrap() {
            assert!(!seen[index]);
            seen[index] = true;
            assert_eq!(value, inputs[index]);
        }
        assert!(seen.iter().all(|&s| s));
        // 3 waves of 2 → 3 doorbells, 6 submissions total.
        assert_eq!(set.stats().submissions, 6);
        assert_eq!(set.stats().doorbells, 3);
        assert_eq!(set.stats().chained_wqes, 3);
    }

    #[test]
    fn wait_any_drains_the_set_exactly_once_per_entry() {
        let (_f, _m, session) = platform(3);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let inputs: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i + 1; 64]).collect();
        let mut set = echo
            .map_workers(inputs.iter().map(|v| v.as_slice()))
            .unwrap();
        let mut seen = [false; 3];
        while let Some((index, value)) = set.wait_any().unwrap() {
            assert!(!seen[index], "index {index} returned twice");
            seen[index] = true;
            assert_eq!(value, inputs[index]);
        }
        assert!(seen.iter().all(|&s| s));
        assert!(set.is_empty());
    }

    #[test]
    fn output_capacity_override_allows_results_larger_than_the_input() {
        let (_f, _m, session) = platform(1);
        // Default capacity = max(input len, one page); echo fits trivially,
        // so exercise the override path and the handle clone.
        let echo = session
            .function::<[u8], [u8]>("echo")
            .unwrap()
            .with_output_capacity(1 << 20);
        let big = vec![7u8; 512 * 1024];
        assert_eq!(echo.invoke(&big[..]).unwrap(), big);
        let cloned = echo.clone();
        assert_eq!(cloned.name(), "echo");
    }

    #[test]
    fn typed_futures_recover_from_lease_expiry() {
        let (_f, _m, session) = platform(1);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        echo.invoke(&[9u8; 16][..]).unwrap();
        assert_eq!(session.recoveries(), 0);
        // Jump past the lease expiry: the executor refuses with LeaseExpired
        // and the typed future transparently replays on a fresh lease.
        session.clock().advance(SimDuration::from_secs(3600));
        assert_eq!(echo.invoke(&[9u8; 16][..]).unwrap(), vec![9u8; 16]);
        assert_eq!(session.recoveries(), 1);
    }

    #[test]
    fn builder_knobs_shape_the_lease() {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let start = SimTime::from_secs(42);
        let session = Session::builder(&fabric, "c", &manager, "pkg")
            .workers(2)
            .memory_mib(2048)
            .lease_timeout(SimDuration::from_secs(120))
            .recovery_budget(5)
            .starting_at(start)
            .connect()
            .unwrap();
        assert_eq!(session.worker_count(), 2);
        let lease = session.lease().unwrap();
        assert_eq!(lease.cores, 2);
        assert_eq!(lease.memory_mib, 2048);
        assert!(session.clock().now() >= start);
        assert_eq!(session.raw().recovery_budget(), 5);
        assert!(session.cold_start().is_some());
        session.close().unwrap();
        assert_eq!(manager.lease_count(), 0);
    }

    #[test]
    fn shared_connection_pool_warms_reallocation_to_the_same_executor() {
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        registry.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);

        let pool = ConnectionPool::new();
        let first = Session::builder(&fabric, "c", &manager, "pkg")
            .workers(2)
            .connection_pool(&pool)
            .connect()
            .unwrap();
        let stats = first.stats().connections;
        assert_eq!(stats.connections_opened, 2);
        assert_eq!(stats.pool_hits, 0);
        assert_eq!(stats.pool_misses, 2);
        assert!(stats.srq_depth_high_watermark <= 1, "no invocations yet");
        first.close().unwrap();
        // Teardown returned both connections' warmth to the pool.
        assert_eq!(pool.idle_for("exec-0"), 2);

        // A new session on the same pool re-connects warm.
        let second = Session::builder(&fabric, "c", &manager, "pkg")
            .workers(2)
            .connection_pool(&pool)
            .connect_timeout(std::time::Duration::from_secs(2))
            .connect()
            .unwrap();
        let stats = second.stats().connections;
        assert_eq!(stats.connections_opened, 2);
        // Pool counters are cumulative across the sessions sharing it: the
        // first session's two misses plus the second session's two hits.
        assert_eq!(stats.pool_hits, 2);
        assert_eq!(stats.pool_misses, 2);
        let echo = second.function::<[u8], [u8]>("echo").unwrap();
        assert_eq!(echo.invoke(&[5u8; 8][..]).unwrap(), vec![5u8; 8]);
        assert!(second.stats().connections.srq_depth_high_watermark >= 1);
        second.close().unwrap();
    }

    #[test]
    fn pooled_buffers_are_reused_across_invocations() {
        let (_f, _m, session) = platform(1);
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        echo.invoke(&[1u8; 100][..]).unwrap();
        assert_eq!(session.pool.free.lock().len(), 1);
        // Same-size invocation reuses the pooled pair instead of growing it.
        echo.invoke(&[2u8; 100][..]).unwrap();
        assert_eq!(session.pool.free.lock().len(), 1);
        // A larger invocation allocates a second pair.
        echo.invoke(&vec![3u8; 100_000][..]).unwrap();
        assert_eq!(session.pool.free.lock().len(), 2);
    }

    /// Platform with a state plane attached: the package carries a stateful
    /// counter plus two misbehaving functions used by the rejection tests.
    fn stateful_platform() -> (Arc<Fabric>, Arc<ResourceManager>, StatePlane, Session) {
        use sandbox::SharedFunction;
        let fabric = Fabric::with_defaults();
        let registry = FunctionRegistry::new();
        let counter = SharedFunction::from_stateful_fn("counter", |input, state, output| {
            let mut value = {
                let bytes = state.read("counter")?;
                if bytes.is_empty() {
                    0u64
                } else {
                    u64::from_le_bytes(bytes.try_into().map_err(|_| {
                        sandbox::FunctionError::StateAccess("counter is not 8 bytes".into())
                    })?)
                }
            };
            value += input.len() as u64;
            let slot = state.write("counter")?;
            slot.clear();
            slot.extend_from_slice(&value.to_le_bytes());
            output[..8].copy_from_slice(&value.to_le_bytes());
            Ok(8)
        });
        let rogue_writer = SharedFunction::from_stateful_fn("rogue-writer", |_in, state, _out| {
            state.write("model")?;
            Ok(0)
        });
        let ghost_reader = SharedFunction::from_stateful_fn("ghost-reader", |_in, state, _out| {
            state.read("ghost")?;
            Ok(0)
        });
        registry.deploy(
            CodePackage::minimal("pkg")
                .with_function(echo_function())
                .with_function(counter)
                .with_function(rogue_writer)
                .with_function(ghost_reader),
        );
        let manager = ResourceManager::new(&fabric, RFaasConfig::default());
        let executor = SpotExecutor::new(
            &fabric,
            "exec-0",
            NodeResources {
                cores: 36,
                memory_mib: 128 * 1024,
            },
            registry,
            RFaasConfig::default(),
        );
        manager.register_executor(&executor);
        let plane = StatePlane::new(&fabric, "state-0", 64 * 1024 * 1024);
        let session = Session::builder(&fabric, "client-0", &manager, "pkg")
            .state_plane(&plane)
            .connect()
            .unwrap();
        (fabric, manager, plane, session)
    }

    #[test]
    fn stateful_invocations_round_trip_through_the_plane() {
        let (_f, _m, _plane, session) = stateful_platform();
        session.state().put("counter", &0u64.to_le_bytes()).unwrap();
        let counter = session
            .function::<[u8], [u8]>("counter")
            .unwrap()
            .with_state([StateKey::read_write("counter")])
            .unwrap();

        // Each invocation reads the running total from the plane, adds the
        // payload length, and writes the new total back.
        let reply = counter.invoke(&[0u8; 5][..]).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 5);
        let reply = counter.invoke(&[0u8; 3][..]).unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 8);

        // The committed total is visible from the session side, and both the
        // session-side and executor-side clients show up in unified stats.
        let total = session.state().get("counter").unwrap();
        assert_eq!(u64::from_le_bytes(total.try_into().unwrap()), 8);
        let stats = session.stats();
        assert_eq!(stats.state_session.unwrap().puts, 1);
        let exec = stats.state_executor.unwrap();
        assert_eq!(exec.puts, 2, "one write-back per invocation");
        assert_eq!(exec.gets, 2, "one materialisation per invocation");
        session.close().unwrap();
    }

    #[test]
    fn with_state_requires_a_plane_and_known_keys() {
        // No plane attached to the session: declaring state is rejected.
        let (_f, _m, session) = platform(1);
        let err = session
            .function::<[u8], [u8]>("echo")
            .unwrap()
            .with_state([StateKey::read("counter")])
            .unwrap_err();
        assert!(matches!(
            err,
            RFaasError::StatePlane(StateError::Protocol(_))
        ));

        // Plane attached but the key was never put: rejected at bind time.
        let (_f2, _m2, _plane, stateful) = stateful_platform();
        let err = stateful
            .function::<[u8], [u8]>("counter")
            .unwrap()
            .with_state([StateKey::read_write("missing")])
            .unwrap_err();
        assert!(matches!(
            err,
            RFaasError::StatePlane(StateError::UnknownKey(ref k)) if k == "missing"
        ));
    }

    #[test]
    fn session_state_views_decode_in_place_and_reject_malformed_values() {
        let (_f, _m, _plane, session) = stateful_platform();
        let weights = [0.5f64, -1.25, 3.0];
        let bytes: Vec<u8> = weights.iter().flat_map(|w| w.to_le_bytes()).collect();
        session.state().put("weights", &bytes).unwrap();

        // The typed view decodes straight over the client's cached bytes.
        let sum = session
            .state()
            .view::<[f64], _>("weights", |v| {
                (0..v.len()).map(|i| v.get(i).unwrap()).sum::<f64>()
            })
            .unwrap();
        assert_eq!(sum, 2.25);

        // A value whose shape violates the codec is rejected by the view...
        session.state().put("weights", &[1u8, 2, 3]).unwrap();
        assert!(matches!(
            session.state().view::<[f64], _>("weights", |v| v.len()),
            Err(RFaasError::Codec(_))
        ));
        // ...and a missing key surfaces the state plane's error untouched.
        assert!(matches!(
            session.state().view::<[f64], _>("absent", |v| v.len()),
            Err(RFaasError::StatePlane(StateError::UnknownKey(_)))
        ));
    }

    #[test]
    fn state_misuse_fails_the_invocation() {
        let (_f, _m, _plane, session) = stateful_platform();
        session.state().put("model", &[1u8; 16]).unwrap();

        // Writing through a read-only declaration fails the invocation.
        let rogue = session
            .function::<[u8], [u8]>("rogue-writer")
            .unwrap()
            .with_state([StateKey::read("model")])
            .unwrap();
        assert!(matches!(
            rogue.invoke(&[0u8; 1][..]).unwrap_err(),
            RFaasError::Function(_)
        ));

        // Touching a key that was never declared fails the invocation.
        let ghost = session
            .function::<[u8], [u8]>("ghost-reader")
            .unwrap()
            .with_state([StateKey::read("model")])
            .unwrap();
        assert!(matches!(
            ghost.invoke(&[0u8; 1][..]).unwrap_err(),
            RFaasError::Function(_)
        ));

        // A stateful function dispatched without any declaration also fails
        // (its keys were never bound, so every access is undeclared).
        let undeclared = session.function::<[u8], [u8]>("counter").unwrap();
        assert!(matches!(
            undeclared.invoke(&[0u8; 1][..]).unwrap_err(),
            RFaasError::Function(_)
        ));
    }
}
