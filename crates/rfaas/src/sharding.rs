//! Consistent-hash sharding of the manager plane.
//!
//! The paper's decentralised-allocation argument (Sec. III-D) assumes the
//! resource manager can be replicated horizontally: each replica owns a slice
//! of the executor inventory and a slice of the tenant population, and the
//! control-plane load — allocation, lease churn, billing — scales with the
//! replica count. [`ManagerGroup`] implements that plane: a [`HashRing`]
//! deterministically maps executors and tenants onto shards, every shard is a
//! full [`ResourceManager`], and lease identifiers are namespaced per shard
//! (shard `i` of `S` issues ids congruent to `i` modulo `S`) so any lease can
//! be looked up or released cross-shard in O(1) without a directory.
//!
//! Determinism matters as much as balance here: the same executor and tenant
//! names must land on the same shards in every run, or the virtual-time
//! experiments stop being reproducible. The ring therefore hashes with FNV-1a
//! (fixed constants, no per-process seed) instead of `std`'s randomised
//! `DefaultHasher`.

use std::sync::Arc;

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use sim_core::VirtualClock;

use crate::config::RFaasConfig;
use crate::error::{RFaasError, Result};
use crate::executor::SpotExecutor;
use crate::manager::ResourceManager;
use crate::protocol::{Lease, LeaseRequest};

/// 64-bit FNV-1a with a splitmix64 finalizer: a tiny, seedless,
/// endian-independent hash. Placement only needs uniformity and run-to-run
/// stability, not collision resistance — but raw FNV-1a of short, similar
/// keys ("shard-0#vnode-17", "tenant-00042") clusters badly in the high bits
/// that order a u64 ring, so the finalizer avalanche is load-bearing.
pub fn stable_hash(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= *byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    sim_core::splitmix64_finalize(hash)
}

/// A consistent-hash ring mapping string keys onto `shards` buckets through
/// virtual nodes, so adding or removing a shard only moves ~1/shards of the
/// keyspace (the classic Karger construction).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, shard)` pairs, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring of `shards` buckets with `vnodes` virtual nodes each.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((stable_hash(&format!("shard-{shard}#vnode-{vnode}")), shard));
            }
        }
        // Sorting by (position, shard) makes collision resolution — keep the
        // lowest shard index — deterministic too.
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points, shards }
    }

    /// Number of buckets the ring maps onto.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// position, wrapping around at the top.
    pub fn shard_for(&self, key: &str) -> usize {
        let position = stable_hash(key);
        let idx = self.points.partition_point(|p| p.0 < position);
        self.points[idx % self.points.len()].1
    }
}

/// The sharded manager plane: `shards` full [`ResourceManager`] replicas with
/// consistent-hash placement of executors and tenants (Sec. III-D scaled out;
/// the control-plane bottleneck analysis follows Swift, arXiv:2501.19051).
#[derive(Debug)]
pub struct ManagerGroup {
    managers: Vec<Arc<ResourceManager>>,
    ring: HashRing,
}

impl ManagerGroup {
    /// Virtual nodes per shard on the placement ring. 64 keeps the maximum
    /// shard imbalance under ~20% for realistic fleet sizes while the ring
    /// stays small enough to rebuild per experiment.
    pub const VNODES_PER_SHARD: usize = 64;

    /// Create `shards` manager replicas on the same fabric, each with a
    /// disjoint lease-id namespace (shard `i` issues `i+1, i+1+S, ...`).
    pub fn new(fabric: &Arc<Fabric>, config: RFaasConfig, shards: usize) -> ManagerGroup {
        let shards = shards.max(1);
        let managers = (0..shards)
            .map(|i| {
                ResourceManager::with_lease_namespace(
                    fabric,
                    config.clone(),
                    &format!("manager-{i}"),
                    i as u64 + 1,
                    shards as u64,
                )
            })
            .collect();
        ManagerGroup {
            managers,
            ring: HashRing::new(shards, Self::VNODES_PER_SHARD),
        }
    }

    /// All manager replicas, in shard order.
    pub fn managers(&self) -> &[Arc<ResourceManager>] {
        &self.managers
    }

    /// Number of shards in the plane.
    pub fn shard_count(&self) -> usize {
        self.managers.len()
    }

    /// Shard a tenant's control-plane traffic is pinned to.
    pub fn shard_for_tenant(&self, tenant: &str) -> usize {
        self.ring.shard_for(tenant)
    }

    /// The manager replica serving `tenant`.
    pub fn manager_for_tenant(&self, tenant: &str) -> Arc<ResourceManager> {
        Arc::clone(&self.managers[self.shard_for_tenant(tenant)])
    }

    /// Shard owning the executor named `name`.
    pub fn shard_for_executor(&self, name: &str) -> usize {
        self.ring.shard_for(name)
    }

    /// Register an executor with the shard the ring assigns it to (resources
    /// are partitioned between manager replicas, as the paper describes).
    /// Returns the shard index chosen.
    pub fn register_executor(&self, executor: &Arc<SpotExecutor>) -> usize {
        let shard = self.shard_for_executor(executor.name());
        self.managers[shard].register_executor(executor);
        shard
    }

    /// Request a lease on the tenant's shard. Returns the shard index along
    /// with the grant so callers can attribute latency and billing per shard.
    pub fn request_lease(
        &self,
        tenant: &str,
        request: &LeaseRequest,
        client_clock: &VirtualClock,
    ) -> Result<(usize, Lease, Arc<SpotExecutor>)> {
        let shard = self.shard_for_tenant(tenant);
        let (lease, executor) = self.managers[shard].request_lease(request, client_clock)?;
        Ok((shard, lease, executor))
    }

    /// Shard that issued `lease_id`, recovered from the id's residue class —
    /// no directory lookup, no broadcast.
    pub fn shard_of_lease(&self, lease_id: u64) -> Option<usize> {
        if lease_id == 0 {
            return None;
        }
        Some(((lease_id - 1) % self.managers.len() as u64) as usize)
    }

    /// Cross-shard lease lookup.
    pub fn lease(&self, lease_id: u64) -> Option<Lease> {
        self.shard_of_lease(lease_id)
            .and_then(|shard| self.managers[shard].lease(lease_id))
    }

    /// Cross-shard lease release: routes to the issuing shard.
    pub fn release_lease(&self, lease_id: u64) -> Result<()> {
        let shard = self
            .shard_of_lease(lease_id)
            .ok_or(RFaasError::UnknownLease(lease_id))?;
        self.managers[shard].release_lease(lease_id)
    }

    /// Whether any shard terminated `lease_id` after an executor failure.
    pub fn is_lease_terminated(&self, lease_id: u64) -> bool {
        self.shard_of_lease(lease_id)
            .is_some_and(|shard| self.managers[shard].is_lease_terminated(lease_id))
    }

    /// Active leases across all shards.
    pub fn lease_count(&self) -> usize {
        self.managers.iter().map(|m| m.lease_count()).sum()
    }

    /// Registered executors across all shards.
    pub fn executor_count(&self) -> usize {
        self.managers.iter().map(|m| m.executor_count()).sum()
    }

    /// Aggregate free resources across all shards.
    pub fn available_resources(&self) -> NodeResources {
        self.managers.iter().fold(NodeResources::ZERO, |acc, m| {
            acc.add(&m.available_resources())
        })
    }

    /// Monetary cost accumulated by each shard's billing database, in shard
    /// order (the per-shard aggregation a billing report would render).
    pub fn per_shard_costs(&self) -> Vec<f64> {
        self.managers.iter().map(|m| m.total_cost()).collect()
    }

    /// Total cost across the plane.
    pub fn total_cost(&self) -> f64 {
        self.per_shard_costs().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::{echo_function, CodePackage, FunctionRegistry};

    fn registry() -> FunctionRegistry {
        let r = FunctionRegistry::new();
        r.deploy(CodePackage::minimal("pkg").with_function(echo_function()));
        r
    }

    fn executor(fabric: &Arc<Fabric>, name: &str) -> Arc<SpotExecutor> {
        SpotExecutor::new(
            fabric,
            name,
            NodeResources {
                cores: 16,
                memory_mib: 64 * 1024,
            },
            registry(),
            RFaasConfig::default(),
        )
    }

    fn group_with_executors(shards: usize, executors: usize) -> (Arc<Fabric>, ManagerGroup) {
        let fabric = Fabric::with_defaults();
        let group = ManagerGroup::new(&fabric, RFaasConfig::default(), shards);
        for i in 0..executors {
            group.register_executor(&executor(&fabric, &format!("exec-{i:03}")));
        }
        (fabric, group)
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: any change to the hash silently remaps every
        // executor and tenant, which breaks recorded baselines.
        let empty = stable_hash("");
        assert_eq!(empty, stable_hash(""));
        assert_eq!(stable_hash("tenant-0"), stable_hash("tenant-0"));
        assert_ne!(stable_hash("tenant-0"), stable_hash("tenant-1"));
        // The finalizer must be in place: raw FNV-1a of "" is the offset
        // basis, which the avalanche scrambles.
        assert_ne!(empty, 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(8, 64);
        let b = HashRing::new(8, 64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let key = format!("key-{i}");
            assert_eq!(a.shard_for(&key), b.shard_for(&key));
            seen.insert(a.shard_for(&key));
        }
        assert_eq!(seen.len(), 8, "1000 keys must touch every shard");
    }

    #[test]
    fn ring_balance_is_reasonable() {
        let ring = HashRing::new(4, ManagerGroup::VNODES_PER_SHARD);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.shard_for(&format!("tenant-{i:05}"))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (500..=1800).contains(&count),
                "shard {shard} got {count} of 4000 keys"
            );
        }
    }

    #[test]
    fn ring_reassigns_few_keys_when_a_shard_is_added() {
        let four = HashRing::new(4, ManagerGroup::VNODES_PER_SHARD);
        let five = HashRing::new(5, ManagerGroup::VNODES_PER_SHARD);
        let moved = (0..4000)
            .filter(|i| {
                let key = format!("tenant-{i:05}");
                let before = four.shard_for(&key);
                let after = five.shard_for(&key);
                before != after && after != 4
            })
            .count();
        // Keys either stay put or move to the new shard; cross-movement
        // between surviving shards is the consistent-hashing failure mode.
        assert!(moved < 200, "{moved} of 4000 keys moved between old shards");
    }

    #[test]
    fn executors_are_partitioned_deterministically() {
        let (_fabric_a, a) = group_with_executors(4, 32);
        let (_fabric_b, b) = group_with_executors(4, 32);
        assert_eq!(a.executor_count(), 32);
        for i in 0..32 {
            let name = format!("exec-{i:03}");
            assert_eq!(a.shard_for_executor(&name), b.shard_for_executor(&name));
            // The executor is registered exactly where the ring says.
            assert!(a.managers()[a.shard_for_executor(&name)]
                .executor(&name)
                .is_some());
        }
        // With 32 executors over 4 shards every shard serves some inventory.
        for manager in a.managers() {
            assert!(manager.executor_count() > 0);
        }
    }

    #[test]
    fn lease_ids_are_namespaced_per_shard() {
        let (_fabric, group) = group_with_executors(4, 16);
        let clock = VirtualClock::new();
        let request = LeaseRequest::single_worker("pkg")
            .with_cores(1)
            .with_memory_mib(1024);
        for i in 0..40 {
            let tenant = format!("tenant-{i:04}");
            let (shard, lease, _) = group.request_lease(&tenant, &request, &clock).unwrap();
            assert_eq!(shard, group.shard_for_tenant(&tenant));
            assert_eq!(group.shard_of_lease(lease.id), Some(shard));
            // Cross-shard lookup resolves without knowing the tenant.
            assert_eq!(group.lease(lease.id).unwrap().id, lease.id);
        }
        assert_eq!(group.lease_count(), 40);
    }

    #[test]
    fn cross_shard_release_returns_resources() {
        let (_fabric, group) = group_with_executors(4, 16);
        let clock = VirtualClock::new();
        let before = group.available_resources();
        let request = LeaseRequest::single_worker("pkg")
            .with_cores(2)
            .with_memory_mib(2048);
        let mut ids = Vec::new();
        for i in 0..12 {
            let (_, lease, _) = group
                .request_lease(&format!("tenant-{i:04}"), &request, &clock)
                .unwrap();
            ids.push(lease.id);
        }
        assert_eq!(group.available_resources().cores, before.cores - 24);
        for id in ids {
            group.release_lease(id).unwrap();
        }
        assert_eq!(group.lease_count(), 0);
        assert_eq!(group.available_resources().cores, before.cores);
        assert!(matches!(
            group.release_lease(0),
            Err(RFaasError::UnknownLease(0))
        ));
    }

    #[test]
    fn tenants_stick_to_their_shard() {
        let (_fabric, group) = group_with_executors(8, 32);
        for i in 0..64 {
            let tenant = format!("tenant-{i:04}");
            let first = group.shard_for_tenant(&tenant);
            for _ in 0..3 {
                assert_eq!(group.shard_for_tenant(&tenant), first);
            }
            assert!(Arc::ptr_eq(
                &group.manager_for_tenant(&tenant),
                &group.managers()[first]
            ));
        }
    }

    #[test]
    fn per_shard_costs_sum_to_total() {
        let (_fabric, group) = group_with_executors(4, 8);
        let costs = group.per_shard_costs();
        assert_eq!(costs.len(), 4);
        let sum: f64 = costs.iter().sum();
        assert_eq!(sum, group.total_cost());
    }

    #[test]
    fn single_shard_group_degenerates_to_one_manager() {
        let fabric = Fabric::with_defaults();
        let group = ManagerGroup::new(&fabric, RFaasConfig::default(), 0);
        assert_eq!(group.shard_count(), 1);
        assert_eq!(group.shard_for_tenant("anyone"), 0);
        assert_eq!(group.shard_of_lease(7), Some(0));
    }
}
