//! The committed findings baseline: `simlint-baseline.json`.
//!
//! The baseline exists for findings that are justified but cannot carry an
//! in-source suppression (e.g. cycle reports whose witness line moves as
//! code shifts). Each entry must carry a `reason`. Parsing is a hand-rolled
//! subset of JSON — the linter is dependency-free by design, and the file
//! is machine-written by `simlint -- baseline`, so the subset is enough.

use crate::model::Rule;
use crate::rules::Finding;

/// One accepted finding. `line` is intentionally absent: baselines match on
/// (rule, file, symbol) so routine edits don't invalidate them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: Rule,
    pub file: String,
    pub symbol: String,
    pub reason: String,
}

/// Parse the baseline file. Returns `Err` with a human message on any
/// structural problem (including a missing/empty reason — a baseline entry
/// without a justification is itself a lint violation).
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let objects = split_objects(text)?;
    let mut out = Vec::new();
    for (i, obj) in objects.iter().enumerate() {
        let get = |key: &str| -> Option<String> { field(obj, key) };
        let rule_name =
            get("rule").ok_or_else(|| format!("baseline entry {i}: missing \"rule\""))?;
        let rule = Rule::parse(&rule_name)
            .ok_or_else(|| format!("baseline entry {i}: unknown rule '{rule_name}'"))?;
        let file = get("file").ok_or_else(|| format!("baseline entry {i}: missing \"file\""))?;
        let symbol =
            get("symbol").ok_or_else(|| format!("baseline entry {i}: missing \"symbol\""))?;
        let reason =
            get("reason").ok_or_else(|| format!("baseline entry {i}: missing \"reason\""))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "baseline entry {i} ({file}:{symbol}): empty reason — every baselined \
                 finding must be justified"
            ));
        }
        out.push(BaselineEntry {
            rule,
            file,
            symbol,
            reason,
        });
    }
    Ok(out)
}

/// Serialize entries (pretty, stable order) for `simlint -- baseline`.
pub fn emit(findings: &[Finding]) -> String {
    let mut s = String::from("{\n  \"suppressions\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"rule\": \"{}\",\n", f.rule.name()));
        s.push_str(&format!("      \"file\": \"{}\",\n", escape(&f.file)));
        s.push_str(&format!("      \"symbol\": \"{}\",\n", escape(&f.symbol)));
        s.push_str("      \"reason\": \"TODO: justify or fix\"\n");
        s.push_str("    }");
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Split the `"suppressions": [ {...}, {...} ]` array into raw object
/// strings. Tolerates whitespace and trailing text; rejects non-object
/// array members.
fn split_objects(text: &str) -> Result<Vec<String>, String> {
    let arr_at = text
        .find("\"suppressions\"")
        .ok_or("baseline: missing \"suppressions\" key")?;
    let open = text[arr_at..]
        .find('[')
        .ok_or("baseline: missing suppressions array")?
        + arr_at;
    let mut objects = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = open + 1;
    let mut depth = 0usize;
    let mut start = None;
    let mut in_str = false;
    while i < chars.len() {
        let c = chars[i];
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' => {
                    if depth == 0 {
                        start = Some(i);
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        if let Some(s) = start.take() {
                            objects.push(chars[s..=i].iter().collect());
                        }
                    }
                }
                ']' if depth == 0 => return Ok(objects),
                _ => {}
            }
        }
        i += 1;
    }
    Err(String::from("baseline: unterminated suppressions array"))
}

/// Extract `"key": "value"` from one object body (string values only).
fn field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)?;
    let after = &obj[at + pat.len()..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(e) = chars.next() {
                    out.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                }
            }
            '"' => return Some(out),
            other => out.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_entries() {
        let text = r#"{
            "suppressions": [
                {
                    "rule": "lock_order",
                    "file": "crates/x/src/lib.rs",
                    "symbol": "alpha<->beta",
                    "reason": "ranks enforced at runtime by OrderedMutex"
                }
            ]
        }"#;
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, Rule::LockOrder);
        assert_eq!(entries[0].symbol, "alpha<->beta");
    }

    #[test]
    fn empty_reason_is_rejected() {
        let text = r#"{"suppressions": [{"rule": "wall_clock", "file": "a.rs", "symbol": "f/Instant::now", "reason": "  "}]}"#;
        assert!(parse(text).is_err());
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text =
            r#"{"suppressions": [{"rule": "nope", "file": "a.rs", "symbol": "s", "reason": "x"}]}"#;
        assert!(parse(text).is_err());
    }

    #[test]
    fn empty_array_parses() {
        assert!(parse(r#"{"suppressions": []}"#).unwrap().is_empty());
    }

    #[test]
    fn emit_produces_parseable_output() {
        let findings = vec![Finding {
            rule: Rule::NonExhaustive,
            file: String::from("crates/y/src/lib.rs"),
            line: 10,
            symbol: String::from("FooError"),
            message: String::new(),
        }];
        let emitted = emit(&findings);
        // The emitted reason is a TODO placeholder, which parse() accepts
        // as non-empty (humans must edit it, CI review enforces that).
        let parsed = parse(&emitted).unwrap();
        assert_eq!(parsed[0].symbol, "FooError");
    }
}
