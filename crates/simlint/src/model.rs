//! Per-file source model: the facts the rules consume, extracted in one
//! forward walk over the token stream.
//!
//! The walk tracks brace depth, `#[cfg(test)]` regions, function boundaries,
//! `let`-bound versus temporary lock guards, and attributes preceding items.
//! It is a lexical approximation, not type analysis: lock identity is the
//! last field name before `.lock()`, call edges are identifier-based, and
//! `HashMap`/`HashSet` typing is inferred from declarations in the same
//! file. The rules are tuned so this approximation stays high-signal on the
//! workspace (see DESIGN.md "Determinism & locking invariants").

use crate::lexer::{lex, LineComment, Tok, TokKind};

/// Lint rules, used for suppression matching and baseline keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: wall-clock calls (`Instant::now`, `SystemTime`, `thread::sleep`)
    /// in simulation paths.
    WallClock,
    /// R2: iteration over `HashMap`/`HashSet` in functions reachable from
    /// placement/billing/stats output.
    UnorderedIter,
    /// R3: public error/status enums must be `#[non_exhaustive]`.
    NonExhaustive,
    /// R4: cycles in the static lock-order graph.
    LockOrder,
}

impl Rule {
    /// The name used in `simlint::allow(<name>, ...)` and baseline entries.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall_clock",
            Rule::UnorderedIter => "unordered_iter",
            Rule::NonExhaustive => "non_exhaustive",
            Rule::LockOrder => "lock_order",
        }
    }

    /// Parse a rule name (as written in suppressions and baselines).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "wall_clock" => Some(Rule::WallClock),
            "unordered_iter" => Some(Rule::UnorderedIter),
            "non_exhaustive" => Some(Rule::NonExhaustive),
            "lock_order" => Some(Rule::LockOrder),
            _ => None,
        }
    }
}

/// An in-source suppression: `// simlint::allow(rule, reason = "...")`.
/// Covers findings on its own line and on the next source line.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: Rule,
    pub line: u32,
    pub reason: String,
}

/// A function definition (free function or method).
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    pub name: String,
    pub line: u32,
    /// Inside a `#[cfg(test)]` region or `#[test]`-attributed.
    pub in_test: bool,
}

/// A `pub enum` definition and whether it carries `#[non_exhaustive]`.
#[derive(Debug, Clone)]
pub struct EnumInfo {
    pub name: String,
    pub line: u32,
    pub non_exhaustive: bool,
    pub in_test: bool,
}

/// One wall-clock call site.
#[derive(Debug, Clone)]
pub struct WallClockSite {
    pub pattern: &'static str,
    pub line: u32,
    /// Index into `functions` of the innermost enclosing function, if any.
    pub function: Option<usize>,
    pub in_test: bool,
}

/// One candidate unordered-iteration site (filtered against `hash_names`).
#[derive(Debug, Clone)]
pub struct IterSite {
    /// The receiver identifier (last field/variable component).
    pub name: String,
    pub method: String,
    pub line: u32,
    pub function: Option<usize>,
    pub in_test: bool,
}

/// One `.lock()` acquisition.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Lock identity: last field/variable name before `.lock()`.
    pub name: String,
    pub line: u32,
    pub function: Option<usize>,
    /// Lock names already held (let-bound guards in scope + temporaries of
    /// the current statement) when this acquisition happens.
    pub held: Vec<String>,
    pub in_test: bool,
}

/// One call site (for the call graph and held-lock propagation).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    pub line: u32,
    pub function: Option<usize>,
    pub held: Vec<String>,
    pub in_test: bool,
}

/// Everything the rules need to know about one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// Crate the file belongs to (directory under `crates/`, or the root
    /// package name).
    pub crate_name: String,
    pub functions: Vec<FunctionInfo>,
    pub enums: Vec<EnumInfo>,
    pub suppressions: Vec<Suppression>,
    /// `simlint::allow` comments that failed to parse (unknown rule or
    /// missing/empty reason) — themselves reported as findings.
    pub malformed_suppressions: Vec<(u32, String)>,
    pub wall_clock_sites: Vec<WallClockSite>,
    /// Identifiers declared with a `HashMap`/`HashSet` type in this file.
    pub hash_names: Vec<String>,
    pub iter_sites: Vec<IterSite>,
    pub lock_acquires: Vec<LockAcquire>,
    pub calls: Vec<CallSite>,
}

impl FileModel {
    /// Whether a finding of `rule` at `line` is covered by an in-source
    /// suppression (same line, or the line directly above — like an
    /// attribute). Returns the suppression's reason when covered.
    pub fn suppressed(&self, rule: Rule, line: u32) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "fn", "let", "mut", "pub", "impl",
    "struct", "enum", "trait", "mod", "use", "in", "as", "ref", "move", "where", "unsafe", "const",
    "static", "type", "break", "continue", "crate", "super", "self", "Self", "dyn", "async",
    "await", "true", "false",
];

/// A held lock guard during the walk.
#[derive(Debug)]
struct Held {
    name: String,
    /// `Some(binding)` for `let g = x.lock();` guards (live until `drop(g)`
    /// or their block closes), `None` for temporaries (live to end of
    /// statement).
    binding: Option<String>,
    /// Brace depth the guard was created at (for block-scoped release).
    depth: usize,
    temporary: bool,
}

/// Build the model for one file.
pub fn build(path: &str, crate_name: &str, source: &str) -> FileModel {
    let lexed = lex(source);
    let mut m = FileModel {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        ..FileModel::default()
    };
    parse_suppressions(&lexed.comments, &mut m);

    let toks = &lexed.tokens;
    let mut depth: usize = 0;
    // Stack of (function index, body-open depth): innermost last.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    // Depth at which a #[cfg(test)] (or #[test]) region opened, if any.
    let mut test_depth: Option<usize> = None;
    // Attributes seen since the last item at this position.
    let mut pending_attrs: Vec<String> = Vec::new();
    // Function header pending its body `{` (paren depth must be zero).
    let mut pending_fn: Option<(String, u32)> = None;
    let mut paren_depth: usize = 0;
    // Active `let` binding candidate for guard attribution.
    let mut let_binding: Option<String> = None;
    let mut in_let_lhs = false;
    // `let x = *m.lock();` copies the value out and drops the guard at the
    // semicolon — x is NOT a guard binding. Set when the RHS starts with `*`.
    let mut let_rhs_deref = false;
    let mut held: Vec<Held> = Vec::new();
    // Tokens of a `for ... in <expr> {` header being collected.
    let mut for_header: Option<Vec<String>> = None;
    let mut for_header_line: u32 = 0;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let in_test = test_depth.is_some();
        let cur_fn = fn_stack.last().map(|&(f, _)| f);

        match t.kind {
            TokKind::Punct
                if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) =>
            {
                // Attribute: capture its flattened text.
                let mut j = i + 2;
                let mut bracket = 1usize;
                let mut text = String::new();
                while j < toks.len() && bracket > 0 {
                    if toks[j].is_punct('[') {
                        bracket += 1;
                    } else if toks[j].is_punct(']') {
                        bracket -= 1;
                        if bracket == 0 {
                            break;
                        }
                    }
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&toks[j].text);
                    j += 1;
                }
                pending_attrs.push(text);
                i = j + 1;
                continue;
            }
            TokKind::Punct if t.is_punct('{') => {
                depth += 1;
                if let Some((name, line)) = pending_fn.take() {
                    let is_test_fn = pending_attrs.iter().any(|a| {
                        a == "test" || a.contains("cfg ( test )") || a.contains("cfg(test)")
                    });
                    m.functions.push(FunctionInfo {
                        name,
                        line,
                        in_test: in_test || is_test_fn,
                    });
                    fn_stack.push((m.functions.len() - 1, depth));
                    if is_test_fn && test_depth.is_none() {
                        test_depth = Some(depth);
                    }
                    pending_attrs.clear();
                }
                if let Some(header) = for_header.take() {
                    record_for_iteration(&mut m, header, for_header_line, cur_fn, in_test);
                }
            }
            TokKind::Punct if t.is_punct('}') => {
                depth = depth.saturating_sub(1);
                while fn_stack.last().is_some_and(|&(_, d)| d > depth) {
                    fn_stack.pop();
                }
                if test_depth.is_some_and(|d| d > depth) {
                    test_depth = None;
                }
                held.retain(|h| h.depth <= depth);
            }
            TokKind::Punct if t.is_punct('(') => paren_depth += 1,
            TokKind::Punct if t.is_punct(')') => paren_depth = paren_depth.saturating_sub(1),
            TokKind::Punct if t.is_punct(';') => {
                held.retain(|h| !h.temporary);
                let_binding = None;
                in_let_lhs = false;
                let_rhs_deref = false;
            }
            TokKind::Punct if t.is_punct('=') && in_let_lhs => {
                in_let_lhs = false;
                let_rhs_deref = toks.get(i + 1).is_some_and(|n| n.is_punct('*'));
            }
            TokKind::Ident => {
                match t.text.as_str() {
                    "mod" => {
                        // `#[cfg(test)] mod tests {` opens a test region at
                        // the depth of its body.
                        let is_test_mod = pending_attrs
                            .iter()
                            .any(|a| a.contains("cfg ( test )") || a.contains("cfg(test)"));
                        if is_test_mod && test_depth.is_none() {
                            // Body opens at depth+1 when we hit `{`.
                            test_depth = Some(depth + 1);
                        }
                        pending_attrs.clear();
                    }
                    "fn" => {
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokKind::Ident {
                                pending_fn = Some((name_tok.text.clone(), name_tok.line));
                            }
                        }
                    }
                    "enum" => {
                        let is_pub = prev_nonattr_is_pub(toks, i);
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokKind::Ident && is_pub {
                                let non_exhaustive =
                                    pending_attrs.iter().any(|a| a.contains("non_exhaustive"));
                                m.enums.push(EnumInfo {
                                    name: name_tok.text.clone(),
                                    line: name_tok.line,
                                    non_exhaustive,
                                    in_test,
                                });
                            }
                        }
                        pending_attrs.clear();
                    }
                    "struct" | "trait" | "impl" | "use" | "type" | "static" | "const" => {
                        pending_attrs.clear();
                    }
                    "let" => {
                        in_let_lhs = true;
                        let_binding = None;
                        let_rhs_deref = false;
                        let mut j = i + 1;
                        while toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                            j += 1;
                        }
                        if let Some(n) = toks.get(j) {
                            if n.kind == TokKind::Ident && !KEYWORDS.contains(&n.text.as_str()) {
                                let_binding = Some(n.text.clone());
                            }
                        }
                    }
                    "for" => {
                        // Collect the `for <pat> in <expr>` header up to the
                        // body `{`; `for` in generics (`for<'a>`) has no
                        // following `in`, so require one before the brace.
                        let mut j = i + 1;
                        let mut saw_in = false;
                        let mut header: Vec<String> = Vec::new();
                        let mut guard = 0usize;
                        while let Some(n) = toks.get(j) {
                            guard += 1;
                            if guard > 256 || n.is_punct('{') || n.is_punct(';') {
                                break;
                            }
                            if n.is_ident("in") {
                                saw_in = true;
                            } else if saw_in && n.kind == TokKind::Ident {
                                header.push(n.text.clone());
                            }
                            j += 1;
                        }
                        if saw_in {
                            for_header = Some(header);
                            for_header_line = t.line;
                        }
                    }
                    // `drop(guard)` releases a let-bound guard.
                    "drop" if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                        if let Some(arg) = toks.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                            held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
                        }
                    }
                    "Instant" if matches_path(toks, i + 1, &["::", "now"]) => {
                        m.wall_clock_sites.push(WallClockSite {
                            pattern: "Instant::now",
                            line: t.line,
                            function: cur_fn,
                            in_test,
                        });
                    }
                    "SystemTime" => {
                        m.wall_clock_sites.push(WallClockSite {
                            pattern: "SystemTime",
                            line: t.line,
                            function: cur_fn,
                            in_test,
                        });
                    }
                    "thread" if matches_path(toks, i + 1, &["::", "sleep"]) => {
                        m.wall_clock_sites.push(WallClockSite {
                            pattern: "thread::sleep",
                            line: t.line,
                            function: cur_fn,
                            in_test,
                        });
                    }
                    "HashMap" | "HashSet" => {
                        if let Some(name) = declared_name_before(toks, i) {
                            if !m.hash_names.contains(&name) {
                                m.hash_names.push(name);
                            }
                        }
                    }
                    _ => {}
                }

                // Method calls and free-function calls.
                let is_method = i > 0 && toks[i - 1].is_punct('.');
                let next_is_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if next_is_paren && !KEYWORDS.contains(&t.text.as_str()) {
                    if is_method && t.text == "lock" {
                        let name =
                            receiver_name(toks, i - 1).unwrap_or_else(|| String::from("<unknown>"));
                        let held_names: Vec<String> = held.iter().map(|h| h.name.clone()).collect();
                        m.lock_acquires.push(LockAcquire {
                            name: name.clone(),
                            line: t.line,
                            function: cur_fn,
                            held: held_names,
                            in_test,
                        });
                        // Guard-bound iff the statement is exactly
                        // `let g = <recv>.lock();` — i.e. the token after
                        // the call's `()` is `;` and a binding is active.
                        let after = toks.get(i + 2).map(|n| n.is_punct(')')).unwrap_or(false);
                        let closes_stmt = after && toks.get(i + 3).is_some_and(|n| n.is_punct(';'));
                        let binding = if closes_stmt && !let_rhs_deref {
                            let_binding.clone()
                        } else {
                            None
                        };
                        held.push(Held {
                            name,
                            temporary: binding.is_none(),
                            binding,
                            depth,
                        });
                    } else if is_method && ITER_METHODS.contains(&t.text.as_str()) {
                        if let Some(name) = receiver_name(toks, i - 1) {
                            m.iter_sites.push(IterSite {
                                name,
                                method: t.text.clone(),
                                line: t.line,
                                function: cur_fn,
                                in_test,
                            });
                        }
                    }
                    // Call edge (both free and method calls; name-based).
                    if t.text != "lock" {
                        m.calls.push(CallSite {
                            callee: t.text.clone(),
                            line: t.line,
                            function: cur_fn,
                            held: held.iter().map(|h| h.name.clone()).collect(),
                            in_test,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    m
}

/// Parse `simlint::allow(rule, reason = "...")` directives out of the line
/// comments. A directive with an unknown rule or a missing/empty reason is
/// recorded as malformed.
fn parse_suppressions(comments: &[LineComment], m: &mut FileModel) {
    for c in comments {
        let Some(at) = c.text.find("simlint::allow") else {
            continue;
        };
        let rest = &c.text[at + "simlint::allow".len()..];
        let parsed = parse_allow_args(rest);
        match parsed {
            Some((rule_name, reason)) => match (Rule::parse(&rule_name), reason) {
                (Some(rule), Some(reason)) if !reason.trim().is_empty() => {
                    m.suppressions.push(Suppression {
                        rule,
                        line: c.line,
                        reason,
                    });
                }
                (None, _) => m
                    .malformed_suppressions
                    .push((c.line, format!("unknown rule '{rule_name}'"))),
                (Some(_), _) => m
                    .malformed_suppressions
                    .push((c.line, String::from("missing or empty reason"))),
            },
            None => m
                .malformed_suppressions
                .push((c.line, String::from("malformed simlint::allow directive"))),
        }
    }
}

/// Parse `(rule, reason = "...")` → (rule, Some(reason)) or (rule, None).
fn parse_allow_args(s: &str) -> Option<(String, Option<String>)> {
    let s = s.trim_start();
    let s = s.strip_prefix('(')?;
    let close = s.rfind(')')?;
    let body = &s[..close];
    let mut parts = body.splitn(2, ',');
    let rule = parts.next()?.trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let reason = parts.next().and_then(|kv| {
        let kv = kv.trim();
        let kv = kv.strip_prefix("reason")?.trim_start();
        let kv = kv.strip_prefix('=')?.trim_start();
        let kv = kv.strip_prefix('"')?;
        let end = kv.rfind('"')?;
        Some(kv[..end].to_string())
    });
    Some((rule, reason))
}

/// Does `toks[start..]` begin with the given path pieces, where `"::"`
/// means two consecutive `:` puncts?
fn matches_path(toks: &[Tok], start: usize, pieces: &[&str]) -> bool {
    let mut i = start;
    for piece in pieces {
        if *piece == "::" {
            if !(toks.get(i).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            i += 2;
        } else {
            if !toks.get(i).is_some_and(|t| t.is_ident(piece)) {
                return false;
            }
            i += 1;
        }
    }
    true
}

/// Is the token before `enum_idx` (skipping nothing — attributes were
/// consumed separately) the `pub` keyword, possibly with a `( crate )`
/// restriction? Lexically: `pub enum`, `pub ( crate ) enum`.
fn prev_nonattr_is_pub(toks: &[Tok], enum_idx: usize) -> bool {
    if enum_idx == 0 {
        return false;
    }
    let p = &toks[enum_idx - 1];
    if p.is_ident("pub") {
        return true;
    }
    // `pub(crate) enum`: `) enum` with `pub (` before the group.
    if p.is_punct(')') {
        let mut j = enum_idx - 1;
        while j > 0 && !toks[j].is_punct('(') {
            j -= 1;
        }
        return j > 0 && toks[j - 1].is_ident("pub");
    }
    false
}

/// The receiver identifier of a method call: for `a.b.c.lock()` the `.` at
/// `dot_idx` is preceded by `c`; return the last path component (`c`), or
/// the bare variable name for `x.lock()`.
fn receiver_name(toks: &[Tok], dot_idx: usize) -> Option<String> {
    if dot_idx == 0 {
        return None;
    }
    let prev = &toks[dot_idx - 1];
    if prev.kind == TokKind::Ident {
        // Method-call chains like `pool().lock()`: the ident before `.` is
        // the final field; chains ending in `)` fall through below.
        return Some(prev.text.clone());
    }
    if prev.is_punct(')') {
        // `self.warm_pool().lock()` or `guard().lock()`: use the method
        // name before the call's `(`.
        let mut j = dot_idx - 1;
        let mut depth = 0usize;
        while j > 0 {
            if toks[j].is_punct(')') {
                depth += 1;
            } else if toks[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j -= 1;
        }
        if j > 0 && toks[j - 1].kind == TokKind::Ident {
            return Some(toks[j - 1].text.clone());
        }
    }
    None
}

/// The declared name a `HashMap`/`HashSet` type annotation belongs to:
/// scan back a bounded window for the nearest single `:` (field/variable
/// annotation) or `=` (initializer) and take the identifier before it.
fn declared_name_before(toks: &[Tok], hash_idx: usize) -> Option<String> {
    let window = 16usize;
    let start = hash_idx.saturating_sub(window);
    let mut j = hash_idx;
    while j > start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(':') {
            // Skip `::` path separators.
            if j > 0 && toks[j - 1].is_punct(':') {
                j -= 1;
                continue;
            }
            if toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                continue;
            }
            let mut k = j;
            while k > 0 {
                k -= 1;
                let c = &toks[k];
                if c.kind == TokKind::Ident && !KEYWORDS.contains(&c.text.as_str()) {
                    return Some(c.text.clone());
                }
                if !(c.is_ident("mut") || c.is_ident("ref")) {
                    break;
                }
            }
            return None;
        }
        if t.is_punct('=') {
            let mut k = j;
            while k > 0 {
                k -= 1;
                let c = &toks[k];
                if c.is_ident("mut") {
                    continue;
                }
                if c.kind == TokKind::Ident && !KEYWORDS.contains(&c.text.as_str()) {
                    return Some(c.text.clone());
                }
                break;
            }
            return None;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
    }
    None
}

/// Record iteration of a hash-typed name from a `for ... in <expr>` header.
fn record_for_iteration(
    m: &mut FileModel,
    header: Vec<String>,
    line: u32,
    function: Option<usize>,
    in_test: bool,
) {
    for name in header {
        // Names are filtered against `hash_names` by the rule (the set may
        // not be complete yet mid-walk), so record all candidates. Dedupe
        // against method-call sites on the same line.
        if m.iter_sites
            .iter()
            .any(|s| s.line == line && s.name == name)
        {
            continue;
        }
        m.iter_sites.push(IterSite {
            name,
            method: String::from("for-in"),
            line,
            function,
            in_test,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        build("test.rs", "testcrate", src)
    }

    #[test]
    fn functions_and_test_regions_are_tracked() {
        let src = r#"
            pub fn alpha() { beta(); }
            fn beta() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn in_test_mod() { std::thread::sleep(d); }
            }
        "#;
        let m = model(src);
        let names: Vec<(&str, bool)> = m
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f.in_test))
            .collect();
        assert_eq!(
            names,
            vec![("alpha", false), ("beta", false), ("in_test_mod", true)]
        );
        assert_eq!(m.wall_clock_sites.len(), 1);
        assert!(m.wall_clock_sites[0].in_test);
    }

    #[test]
    fn wall_clock_patterns_are_found() {
        let m = model(
            "fn f() { let t = std::time::Instant::now(); std::thread::sleep(d); let s = SystemTime::now(); }",
        );
        let pats: Vec<&str> = m.wall_clock_sites.iter().map(|s| s.pattern).collect();
        assert_eq!(pats, vec!["Instant::now", "thread::sleep", "SystemTime"]);
    }

    #[test]
    fn hash_names_and_iteration_sites() {
        let src = r#"
            struct S { executors: Mutex<HashMap<String, u64>>, names: Vec<String> }
            fn place(s: &S) {
                for (k, v) in s.executors.lock().iter() {}
                for n in &s.names {}
                let m: HashSet<u32> = HashSet::new();
                let v: Vec<u32> = m.iter().collect();
            }
        "#;
        let m = model(src);
        assert!(m.hash_names.contains(&"executors".to_string()));
        assert!(m.hash_names.contains(&"m".to_string()));
        assert!(!m.hash_names.contains(&"names".to_string()));
        let hash_iters: Vec<&str> = m
            .iter_sites
            .iter()
            .filter(|s| m.hash_names.contains(&s.name))
            .map(|s| s.name.as_str())
            .collect();
        assert!(hash_iters.contains(&"executors"));
        assert!(hash_iters.contains(&"m"));
    }

    #[test]
    fn lock_nesting_and_drop_release() {
        let src = r#"
            fn f(a: &S, b: &S) {
                let ga = a.first.lock();
                let gb = b.second.lock();
                drop(ga);
                let gc = b.third.lock();
            }
        "#;
        let m = model(src);
        assert_eq!(m.lock_acquires.len(), 3);
        assert!(m.lock_acquires[0].held.is_empty());
        assert_eq!(m.lock_acquires[1].held, vec!["first"]);
        // After drop(ga) only `second` is held.
        assert_eq!(m.lock_acquires[2].held, vec!["second"]);
    }

    #[test]
    fn temporary_guards_release_at_statement_end() {
        let src = r#"
            fn f(a: &S) {
                let v = a.first.lock().remove(&1);
                let g = a.second.lock();
            }
        "#;
        let m = model(src);
        // `first` is a temporary (consumed by .remove), so `second` sees
        // nothing held.
        assert_eq!(m.lock_acquires[1].held, Vec::<String>::new());
    }

    #[test]
    fn block_scope_releases_let_guards() {
        let src = r#"
            fn f(a: &S) {
                {
                    let g = a.first.lock();
                }
                let h = a.second.lock();
            }
        "#;
        let m = model(src);
        assert_eq!(m.lock_acquires[1].held, Vec::<String>::new());
    }

    #[test]
    fn calls_record_held_locks() {
        let src = r#"
            fn f(a: &S) {
                let g = a.first.lock();
                helper(g.value);
            }
        "#;
        let m = model(src);
        let call = m.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(call.held, vec!["first"]);
    }

    #[test]
    fn pub_enums_and_non_exhaustive_attr() {
        let src = r#"
            #[derive(Debug)]
            #[non_exhaustive]
            pub enum GoodError { A }
            pub enum BadStatus { B }
            enum PrivateError { C }
            pub(crate) enum CrateError { D }
        "#;
        let m = model(src);
        let summary: Vec<(&str, bool)> = m
            .enums
            .iter()
            .map(|e| (e.name.as_str(), e.non_exhaustive))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("GoodError", true),
                ("BadStatus", false),
                ("CrateError", false)
            ]
        );
    }

    #[test]
    fn suppressions_parse_and_malformed_is_flagged() {
        let src = r#"
            // simlint::allow(wall_clock, reason = "bounds test wall time")
            fn f() { let t = Instant::now(); }
            // simlint::allow(wall_clock)
            fn g() {}
            // simlint::allow(bogus_rule, reason = "x")
            fn h() {}
        "#;
        let m = model(src);
        assert_eq!(m.suppressions.len(), 1);
        assert_eq!(m.suppressions[0].rule, Rule::WallClock);
        assert_eq!(m.suppressions[0].reason, "bounds test wall time");
        assert_eq!(m.malformed_suppressions.len(), 2);
        // The suppression on line 2 covers the finding on line 3.
        assert!(m.suppressed(Rule::WallClock, 3).is_some());
    }

    #[test]
    fn deref_copy_is_not_a_held_guard() {
        let src = r#"
            fn f(s: &S) {
                let mode = *s.mode.lock();
                let g = s.other.lock();
            }
        "#;
        let m = model(src);
        // `mode` was copied out, its guard dropped at the semicolon: the
        // second acquisition holds nothing.
        assert_eq!(m.lock_acquires[1].held, Vec::<String>::new());
    }

    #[test]
    fn receiver_through_method_call_chain() {
        let src = "fn f(e: &E) { let g = e.allocator().lock(); }";
        let m = model(src);
        assert_eq!(m.lock_acquires[0].name, "allocator");
    }
}
