//! simlint — the workspace determinism & concurrency analyzer.
//!
//! A dependency-free static-analysis pass over the rFaaS-reproduction
//! sources. Four rules guard the repo's core guarantee (byte-identical
//! virtual-time runs) and its locking discipline:
//!
//! | rule            | what it catches                                        |
//! |-----------------|--------------------------------------------------------|
//! | `wall_clock`    | `Instant::now` / `SystemTime` / `thread::sleep` in sim paths |
//! | `unordered_iter`| `HashMap`/`HashSet` iteration reachable from placement/billing/stats |
//! | `non_exhaustive`| public `*Error`/`*Status` enums missing `#[non_exhaustive]` |
//! | `lock_order`    | cycles in the inter-procedural lock-acquisition graph  |
//!
//! Suppress an individual finding in-source with
//! `// simlint::allow(<rule>, reason = "...")` on the same or preceding
//! line; park findings that cannot carry a comment in
//! `simlint-baseline.json`. See DESIGN.md "Determinism & locking
//! invariants" for the full contract, and `sim_core::sync::OrderedMutex`
//! for the runtime half of the lock-order story.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use model::FileModel;

/// Directories under `crates/<name>/` that are scanned (only library
/// sources; `benches/`, `tests/` and `examples/` are exempt — shims,
/// integration tests, and examples deliberately stay out of scope, since
/// shims emulate host APIs, wall clocks included, and test/example code is
/// exempt from every rule anyway).
const CRATE_SUBDIR: &str = "src";

/// Collect all `.rs` files in scope, returning workspace-relative paths.
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            // The linter does not lint itself: its fixtures seed
            // violations on purpose.
            if dir.file_name().is_some_and(|n| n == "simlint") {
                continue;
            }
            walk_rs(&dir.join(CRATE_SUBDIR), &mut out);
        }
    }
    walk_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Build models for every in-scope file under `root`.
pub fn build_models(root: &Path) -> Vec<FileModel> {
    let mut models = Vec::new();
    for path in collect_sources(root) {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("workspace-root")
            .to_string();
        models.push(model::build(&rel, &crate_name, &source));
    }
    models
}

/// `check` outcome: findings partitioned against the baseline.
pub struct CheckReport {
    /// Findings not covered by the baseline — these fail the build.
    pub unbaselined: Vec<rules::Finding>,
    /// Baseline entries that matched nothing — stale, reported as warnings.
    pub stale_baseline: Vec<baseline::BaselineEntry>,
    /// Total findings before baseline filtering.
    pub total: usize,
}

/// Run all rules and reconcile with an optional baseline.
pub fn check(root: &Path, baseline_text: Option<&str>) -> Result<CheckReport, String> {
    let models = build_models(root);
    let findings = rules::run_all(&models);
    let entries = match baseline_text {
        Some(text) => baseline::parse(text)?,
        None => Vec::new(),
    };
    let mut used = vec![false; entries.len()];
    let mut unbaselined = Vec::new();
    for f in &findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.file == f.file && e.symbol == f.symbol);
        match hit {
            Some(i) => used[i] = true,
            None => unbaselined.push(f.clone()),
        }
    }
    let stale_baseline = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(CheckReport {
        unbaselined,
        stale_baseline,
        total: findings.len(),
    })
}
