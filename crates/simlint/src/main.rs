//! simlint CLI.
//!
//! ```text
//! cargo run -p simlint -- check [--root DIR] [--baseline FILE]
//! cargo run -p simlint -- locks [--root DIR]
//! cargo run -p simlint -- baseline [--root DIR]
//! ```
//!
//! `check` is the CI gate: exit 0 iff every finding is suppressed in-source
//! or baselined. `locks` dumps the deduplicated lock graph (used to derive
//! the rank table in `sim_core::sync::ranks`). `baseline` prints a fresh
//! baseline skeleton for the current findings to stdout.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;

    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "locks" | "baseline" if cmd.is_none() => cmd = Some(args[i].clone()),
            "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("simlint: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("simlint: --baseline needs a value");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(v));
            }
            other => {
                eprintln!("simlint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    // Default to the workspace the binary was built from, so
    // `cargo run -p simlint -- check` works from any directory.
    if root.as_os_str() == "." {
        if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
            if let Some(ws) = PathBuf::from(dir).parent().and_then(|p| p.parent()) {
                root = ws.to_path_buf();
            }
        }
    }

    match cmd.as_deref() {
        Some("check") => {
            let baseline_file = baseline_path.unwrap_or_else(|| root.join("simlint-baseline.json"));
            let baseline_text = std::fs::read_to_string(&baseline_file).ok();
            let report = match simlint::check(&root, baseline_text.as_deref()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("simlint: {e}");
                    return ExitCode::from(2);
                }
            };
            for e in &report.stale_baseline {
                eprintln!(
                    "simlint: warning: stale baseline entry {} {} ({}) matched nothing",
                    e.rule.name(),
                    e.file,
                    e.symbol
                );
            }
            if report.unbaselined.is_empty() {
                println!(
                    "simlint: clean ({} finding(s) total, all suppressed or baselined)",
                    report.total
                );
                ExitCode::SUCCESS
            } else {
                for f in &report.unbaselined {
                    println!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message);
                }
                eprintln!(
                    "simlint: {} unbaselined finding(s); fix them, add an in-source \
                     `// simlint::allow(...)` with a reason, or (last resort) baseline \
                     them in simlint-baseline.json",
                    report.unbaselined.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("locks") => {
            let models = simlint::build_models(&root);
            print!("{}", simlint::rules::lock_graph_report(&models));
            ExitCode::SUCCESS
        }
        Some("baseline") => {
            let models = simlint::build_models(&root);
            let findings = simlint::rules::run_all(&models);
            print!("{}", simlint::baseline::emit(&findings));
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: simlint <check|locks|baseline> [--root DIR] [--baseline FILE]");
            ExitCode::from(2)
        }
    }
}
