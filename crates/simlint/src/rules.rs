//! The four simlint rules, evaluated over a set of [`FileModel`]s.
//!
//! R1 wall-clock-in-sim — wall-clock calls outside test code must carry an
//!     in-source `simlint::allow(wall_clock, ...)` justification.
//! R2 unordered-iteration — `HashMap`/`HashSet` iteration in functions
//!     reachable from placement/billing/stats output leaks hasher order
//!     into deterministic results.
//! R3 non-exhaustive-audit — public error/status enums must be
//!     `#[non_exhaustive]` so downstream matches stay source-compatible.
//! R4 static lock-order — the inter-procedural lock graph must be acyclic.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{FileModel, Rule};

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    /// Stable identity for baseline matching (function or enum name, lock
    /// pair, or wall-clock pattern).
    pub symbol: String,
    pub message: String,
}

/// Function-name markers whose reachable set R2 treats as order-sensitive:
/// placement decisions, billing, and stats/report output.
const SENSITIVE_MARKERS: &[&str] = &[
    "place", "bill", "charge", "stats", "report", "summary", "snapshot", "export", "settle",
];

/// Run every rule and return findings not covered by in-source suppressions.
/// Malformed suppression directives are appended as wall-clock-class
/// findings so they can never silently mask anything.
pub fn run_all(models: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(wall_clock(models));
    findings.extend(unordered_iteration(models));
    findings.extend(non_exhaustive(models));
    findings.extend(lock_order(models));
    for m in models {
        for (line, why) in &m.malformed_suppressions {
            findings.push(Finding {
                rule: Rule::WallClock,
                file: m.path.clone(),
                line: *line,
                symbol: String::from("simlint::allow"),
                message: format!("malformed suppression: {why}"),
            });
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// R1: every wall-clock call outside test code needs a justification.
fn wall_clock(models: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in models {
        for site in &m.wall_clock_sites {
            if site.in_test {
                continue;
            }
            if m.suppressed(Rule::WallClock, site.line).is_some() {
                continue;
            }
            let func = site
                .function
                .map(|f| m.functions[f].name.clone())
                .unwrap_or_else(|| String::from("<module>"));
            out.push(Finding {
                rule: Rule::WallClock,
                file: m.path.clone(),
                line: site.line,
                symbol: format!("{func}/{}", site.pattern),
                message: format!(
                    "wall-clock call `{}` in `{func}`: simulation paths must use \
                     VirtualClock/SimTime; if this is a genuine host-side wait, add \
                     `// simlint::allow(wall_clock, reason = \"...\")`",
                    site.pattern
                ),
            });
        }
    }
    out
}

/// R2: hash-order iteration in functions reachable from order-sensitive
/// roots. Reachability is a forward closure over the name-based call graph
/// from functions whose names contain a sensitive marker.
fn unordered_iteration(models: &[FileModel]) -> Vec<Finding> {
    // callee name -> called-from set is not needed; we need forward edges:
    // caller -> callees, keyed by function name (workspace-global).
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut all_fns: BTreeSet<&str> = BTreeSet::new();
    for m in models {
        for f in &m.functions {
            if !f.in_test {
                all_fns.insert(f.name.as_str());
            }
        }
        for c in &m.calls {
            if c.in_test {
                continue;
            }
            if let Some(fi) = c.function {
                edges
                    .entry(m.functions[fi].name.as_str())
                    .or_default()
                    .insert(c.callee.as_str());
            }
        }
    }

    // Roots: non-test functions whose name carries a sensitive marker.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut stack: Vec<&str> = all_fns
        .iter()
        .copied()
        .filter(|n| {
            let lower = n.to_ascii_lowercase();
            SENSITIVE_MARKERS.iter().any(|mk| lower.contains(mk))
        })
        .collect();
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        if let Some(callees) = edges.get(n) {
            for c in callees {
                if all_fns.contains(c) && !reachable.contains(c) {
                    stack.push(c);
                }
            }
        }
    }

    let mut out = Vec::new();
    for m in models {
        for site in &m.iter_sites {
            if site.in_test {
                continue;
            }
            if !m.hash_names.contains(&site.name) {
                continue;
            }
            let Some(fi) = site.function else { continue };
            let fname = m.functions[fi].name.as_str();
            if !reachable.contains(fname) {
                continue;
            }
            if m.suppressed(Rule::UnorderedIter, site.line).is_some() {
                continue;
            }
            out.push(Finding {
                rule: Rule::UnorderedIter,
                file: m.path.clone(),
                line: site.line,
                symbol: format!("{fname}/{}", site.name),
                message: format!(
                    "iteration over hash-ordered `{}` (via `{}`) in `{fname}`, which is \
                     reachable from placement/billing/stats output; use BTreeMap/BTreeSet \
                     or collect-and-sort",
                    site.name, site.method
                ),
            });
        }
    }
    out
}

/// R3: public enums whose names mark them as error/status surfaces must be
/// `#[non_exhaustive]`.
fn non_exhaustive(models: &[FileModel]) -> Vec<Finding> {
    const AUDIT_SUFFIXES: &[&str] = &["Error", "Status"];
    let mut out = Vec::new();
    for m in models {
        for e in &m.enums {
            if e.in_test || e.non_exhaustive {
                continue;
            }
            if !AUDIT_SUFFIXES.iter().any(|s| e.name.ends_with(s)) {
                continue;
            }
            if m.suppressed(Rule::NonExhaustive, e.line).is_some() {
                continue;
            }
            out.push(Finding {
                rule: Rule::NonExhaustive,
                file: m.path.clone(),
                line: e.line,
                symbol: e.name.clone(),
                message: format!(
                    "public enum `{}` looks like an error/status surface but is not \
                     `#[non_exhaustive]`; adding a variant would be a breaking change",
                    e.name
                ),
            });
        }
    }
    out
}

/// One directed edge in the lock graph with a witness site.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: u32,
    /// Function the witness acquisition happens in.
    via: String,
}

/// R4: build the lock-order graph (direct nested acquisitions plus
/// inter-procedural edges through calls made while holding a lock) and
/// report every cycle, keyed by its smallest edge.
fn lock_order(models: &[FileModel]) -> Vec<Finding> {
    let mut edges: Vec<LockEdge> = Vec::new();

    // Locks each function acquires (transitively), for inter-procedural
    // edges. Functions are keyed by (file, name) and calls only resolve
    // within the caller's file: the call graph is identifier-based, and
    // broader resolution makes common names (`invoke`, `state()`,
    // `allocator()`) collide across subsystems that never share a thread
    // (client vs executor), welding every lock into one false mega-cycle.
    // Files here map 1:1 to subsystems, so same-file resolution keeps the
    // signal; cross-file nesting still surfaces through direct edges.
    type FnKey<'a> = (&'a str, &'a str);
    let mut fn_locks: BTreeMap<FnKey, BTreeSet<&str>> = BTreeMap::new();
    let mut fn_calls: BTreeMap<FnKey, BTreeSet<&str>> = BTreeMap::new();
    for m in models {
        for a in &m.lock_acquires {
            if a.in_test {
                continue;
            }
            if let Some(fi) = a.function {
                fn_locks
                    .entry((m.path.as_str(), m.functions[fi].name.as_str()))
                    .or_default()
                    .insert(a.name.as_str());
            }
        }
        for c in &m.calls {
            if c.in_test {
                continue;
            }
            if let Some(fi) = c.function {
                fn_calls
                    .entry((m.path.as_str(), m.functions[fi].name.as_str()))
                    .or_default()
                    .insert(c.callee.as_str());
            }
        }
    }
    // Transitive lock closure per function (bounded fixed point).
    let mut closure: BTreeMap<FnKey, BTreeSet<&str>> = fn_locks.clone();
    loop {
        let mut changed = false;
        let names: Vec<FnKey> = fn_calls.keys().copied().collect();
        for f in names {
            let callees: Vec<&str> = fn_calls[&f].iter().copied().collect();
            let mut add: BTreeSet<&str> = BTreeSet::new();
            for c in callees {
                if let Some(locks) = closure.get(&(f.0, c)) {
                    for l in locks {
                        add.insert(l);
                    }
                }
            }
            let entry = closure.entry(f).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for m in models {
        // Direct edges: acquisition while holding.
        for a in &m.lock_acquires {
            if a.in_test || a.name == "<unknown>" {
                continue;
            }
            let via = a
                .function
                .map(|f| m.functions[f].name.clone())
                .unwrap_or_else(|| String::from("<module>"));
            for h in &a.held {
                if h == &a.name {
                    // Self-edge: re-acquiring the same lock name — real
                    // deadlock risk but usually a different instance
                    // (e.g. two nodes' `state`); too noisy lexically.
                    continue;
                }
                edges.push(LockEdge {
                    from: h.clone(),
                    to: a.name.clone(),
                    file: m.path.clone(),
                    line: a.line,
                    via: via.clone(),
                });
            }
        }
        // Inter-procedural: calling `f` while holding L adds L -> each lock
        // in f's closure.
        for c in &m.calls {
            if c.in_test || c.held.is_empty() {
                continue;
            }
            let via = c
                .function
                .map(|f| m.functions[f].name.clone())
                .unwrap_or_else(|| String::from("<module>"));
            // Self-recursive calls (callee name == enclosing function) add
            // no ordering beyond the direct edges already captured, and a
            // server method calling an inner struct's same-named method
            // (`ExecutorServer::srq_stats` -> `ExecutorProcess::srq_stats`)
            // would otherwise merge both closures into a false cycle.
            if via == c.callee {
                continue;
            }
            let Some(locks) = closure.get(&(m.path.as_str(), c.callee.as_str())) else {
                continue;
            };
            for h in &c.held {
                for l in locks {
                    if *l == h.as_str() {
                        continue;
                    }
                    edges.push(LockEdge {
                        from: h.clone(),
                        to: (*l).to_string(),
                        file: m.path.clone(),
                        line: c.line,
                        via: format!("{via} -> {}", c.callee),
                    });
                }
            }
        }
    }

    // Collapse to unique directed pairs, keeping the first witness.
    let mut uniq: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for e in edges {
        uniq.entry((e.from.clone(), e.to.clone())).or_insert(e);
    }

    // Tarjan SCC over the lock nodes; any SCC with >1 node (or a self loop,
    // excluded above) is a cycle.
    let nodes: Vec<String> = {
        let mut s: BTreeSet<String> = BTreeSet::new();
        for (f, t) in uniq.keys() {
            s.insert(f.clone());
            s.insert(t.clone());
        }
        s.into_iter().collect()
    };
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (f, t) in uniq.keys() {
        adj[index_of[f.as_str()]].push(index_of[t.as_str()]);
    }
    let sccs = tarjan(&adj);

    let mut out = Vec::new();
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let mut members: Vec<&str> = scc.iter().map(|&i| nodes[i].as_str()).collect();
        members.sort_unstable();
        let member_set: BTreeSet<&str> = members.iter().copied().collect();
        // Witness: the lexically-smallest intra-SCC edge.
        let witness = uniq
            .iter()
            .find(|((f, t), _)| member_set.contains(f.as_str()) && member_set.contains(t.as_str()))
            .map(|(_, e)| e);
        let (file, line, via) = witness
            .map(|e| (e.file.clone(), e.line, e.via.clone()))
            .unwrap_or_else(|| (String::from("<workspace>"), 0, String::new()));
        let suppressed = models
            .iter()
            .filter(|m| m.path == file)
            .any(|m| m.suppressed(Rule::LockOrder, line).is_some());
        if suppressed {
            continue;
        }
        out.push(Finding {
            rule: Rule::LockOrder,
            file,
            line,
            symbol: members.join("<->"),
            message: format!(
                "lock-order cycle between {{{}}} (witness in `{via}`); pick a global \
                 rank order (see sim_core::sync::ranks) and acquire in rank order",
                members.join(", ")
            ),
        });
    }
    out
}

/// Print the deduplicated lock graph (for deriving the rank table).
pub fn lock_graph_report(models: &[FileModel]) -> String {
    let mut pairs: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for m in models {
        for a in &m.lock_acquires {
            if a.in_test || a.name == "<unknown>" {
                continue;
            }
            let via = a
                .function
                .map(|f| m.functions[f].name.clone())
                .unwrap_or_else(|| String::from("<module>"));
            for h in &a.held {
                if h == &a.name {
                    continue;
                }
                pairs.entry((h.clone(), a.name.clone())).or_insert((
                    m.path.clone(),
                    a.line,
                    via.clone(),
                ));
            }
        }
    }
    let mut s = String::new();
    for ((f, t), (file, line, via)) in &pairs {
        s.push_str(&format!("{f} -> {t}    [{file}:{line} in {via}]\n"));
    }
    s
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Explicit DFS stack: (node, next child index).
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                dfs.pop();
                if let Some(&mut (u, _)) = dfs.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;

    fn models(srcs: &[(&str, &str)]) -> Vec<FileModel> {
        srcs.iter()
            .map(|(path, src)| build(path, "fixture", src))
            .collect()
    }

    #[test]
    fn r1_flags_wall_clock_and_honours_suppression() {
        let ms = models(&[(
            "a.rs",
            r#"
                fn serve() { let t = std::time::Instant::now(); }
                // simlint::allow(wall_clock, reason = "bounds a host-side cv wait")
                fn wait_host() { let t = std::time::Instant::now(); }
            "#,
        )]);
        let f = run_all(&ms);
        let r1: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::WallClock).collect();
        assert_eq!(r1.len(), 1);
        assert!(r1[0].symbol.contains("serve"));
    }

    #[test]
    fn r2_flags_reachable_hash_iteration_only() {
        let ms = models(&[(
            "b.rs",
            r#"
                struct S { executors: Mutex<HashMap<String, u64>>, cache: HashMap<u32, u32> }
                fn place_request(s: &S) { pick(s); }
                fn pick(s: &S) { for (k, v) in s.executors.lock().iter() {} }
                fn unrelated(s: &S) { for (k, v) in s.cache.iter() {} }
            "#,
        )]);
        let f = run_all(&ms);
        let r2: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::UnorderedIter).collect();
        assert_eq!(r2.len(), 1);
        assert!(r2[0].symbol.contains("pick"));
    }

    #[test]
    fn r3_flags_missing_non_exhaustive() {
        let ms = models(&[(
            "c.rs",
            r#"
                #[non_exhaustive]
                pub enum GoodError { A }
                pub enum BadError { B }
                pub enum Widget { C }
            "#,
        )]);
        let f = run_all(&ms);
        let r3: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::NonExhaustive).collect();
        assert_eq!(r3.len(), 1);
        assert_eq!(r3[0].symbol, "BadError");
    }

    #[test]
    fn r4_reports_direct_cycle() {
        let ms = models(&[(
            "d.rs",
            r#"
                fn one(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
                fn two(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }
            "#,
        )]);
        let f = run_all(&ms);
        let r4: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::LockOrder).collect();
        assert_eq!(r4.len(), 1);
        assert_eq!(r4[0].symbol, "alpha<->beta");
    }

    #[test]
    fn r4_reports_interprocedural_cycle() {
        let ms = models(&[(
            "e.rs",
            r#"
                fn outer(s: &S) { let a = s.alpha.lock(); helper(s); }
                fn helper(s: &S) { let b = s.beta.lock(); }
                fn reversed(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }
            "#,
        )]);
        let f = run_all(&ms);
        let r4: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::LockOrder).collect();
        assert_eq!(r4.len(), 1);
    }

    #[test]
    fn r4_no_cycle_when_order_is_consistent() {
        let ms = models(&[(
            "f.rs",
            r#"
                fn one(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
                fn two(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }
            "#,
        )]);
        let f = run_all(&ms);
        assert!(f.iter().all(|f| f.rule != Rule::LockOrder));
    }

    #[test]
    fn malformed_suppression_is_a_finding() {
        let ms = models(&[("g.rs", "// simlint::allow(wall_clock)\nfn ok() {}\n")]);
        let f = run_all(&ms);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("malformed"));
    }

    #[test]
    fn test_code_is_exempt() {
        let ms = models(&[(
            "h.rs",
            r#"
                #[cfg(test)]
                mod tests {
                    fn helper() { std::thread::sleep(d); }
                    pub enum TestError { A }
                }
            "#,
        )]);
        let f = run_all(&ms);
        assert!(f.is_empty());
    }
}
