//! A small hand-rolled Rust lexer: just enough token structure for the
//! simlint rules — identifiers, punctuation, literals — with line numbers,
//! plus the line comments (where `simlint::allow(...)` suppressions live).
//!
//! The lexer is deliberately not a parser: it never builds an AST. String
//! and char literals are consumed as opaque tokens (so `".lock()"` inside a
//! string can never look like a lock acquisition), block comments nest the
//! way Rust's do, and raw strings honour their `#` fences.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules distinguish keywords by text).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String/char/number literal, consumed opaquely.
    Literal,
    /// Lifetime (`'a`); kept distinct so `'a` never parses as a char.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A captured `//` comment (suppressions are line comments only).
#[derive(Debug, Clone)]
pub struct LineComment {
    pub line: u32,
    /// Comment body without the leading `//` (or `///`, `//!`).
    pub text: String,
}

/// Lexer output: the token stream (comments stripped) and the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<LineComment>,
}

/// Tokenize `source`. Unterminated literals are consumed to end-of-input
/// rather than reported: the linter runs over code rustc already accepted.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != '\n' {
                    end += 1;
                }
                let body: String = bytes[start..end]
                    .iter()
                    .collect::<String>()
                    .trim_start_matches(['/', '!'])
                    .to_string();
                out.comments.push(LineComment { line, text: body });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (consumed, newlines) = consume_string(&bytes[i..]);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"…\""),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                let (consumed, newlines) = consume_raw_or_byte(&bytes, i);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"…\""),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal. `'a` (ident char, no closing
                // quote right after) is a lifetime; everything else is a
                // char literal with escapes.
                if is_lifetime(&bytes, i) {
                    let mut end = i + 1;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: bytes[i..end].iter().collect(),
                        line,
                    });
                    i = end;
                } else {
                    let mut end = i + 1;
                    if end < bytes.len() && bytes[end] == '\\' {
                        end += 2; // skip the escaped char
                                  // \u{...} escapes run to the closing brace.
                        while end < bytes.len() && bytes[end] != '\'' {
                            end += 1;
                        }
                    } else if end < bytes.len() {
                        end += 1;
                    }
                    while end < bytes.len() && bytes[end] != '\'' {
                        end += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: String::from("'…'"),
                        line,
                    });
                    i = (end + 1).min(bytes.len());
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = i + 1;
                while end < bytes.len()
                    && (is_ident_continue(bytes[end]) || bytes[end] == '.')
                    && !(bytes[end] == '.' && bytes.get(end + 1) == Some(&'.'))
                {
                    end += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: bytes[i..end].iter().collect(),
                    line,
                });
                i = end;
            }
            c if is_ident_start(c) => {
                let mut end = i + 1;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: bytes[i..end].iter().collect(),
                    line,
                });
                i = end;
            }
            _ => {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_lifetime(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&c) if is_ident_start(c) => bytes.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

/// `r"`, `r#"`, `br"`, `b"`, `rb…` starting at `i`?
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
    }
    bytes.get(j) == Some(&'"') && j > i
}

/// Consume a plain `"..."` with escapes. Returns (chars consumed, newlines).
fn consume_string(rest: &[char]) -> (usize, u32) {
    let mut i = 1usize;
    let mut newlines = 0u32;
    while i < rest.len() {
        match rest[i] {
            '\\' => i += 2,
            '"' => return (i + 1, newlines),
            '\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (rest.len(), newlines)
}

/// Consume a raw/byte string starting at `i`. Returns (consumed, newlines).
fn consume_raw_or_byte(bytes: &[char], i: usize) -> (usize, u32) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&'"'));
    j += 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k - i, newlines);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (bytes.len() - i, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        // A `.lock()` inside a string literal must not produce tokens.
        let toks = lex(r#"let s = "a.lock()"; x.lock();"#).tokens;
        let lock_idents = toks.iter().filter(|t| t.is_ident("lock")).count();
        assert_eq!(lock_idents, 1);
    }

    #[test]
    fn raw_strings_honour_hash_fences() {
        let src = "let s = r#\"embedded \" quote Instant::now()\"#; done";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "let a = 1;\n// simlint::allow(wall_clock, reason = \"x\")\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("simlint::allow"));
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let src = "a /* x /* y\n */ z\n */ b";
        let lexed = lex(src);
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn escaped_chars_lex_as_single_literals() {
        let toks = lex(r"let c = '\n'; let u = '\u{1F600}'; end").tokens;
        assert!(toks.iter().any(|t| t.is_ident("end")));
        let chars = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .count();
        assert_eq!(chars, 2);
    }
}
