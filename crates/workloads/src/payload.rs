//! Payload generators and the evaluation input sizes.

use sim_core::DeterministicRng;

/// Input sizes used throughout Sec. V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSizes;

impl InputSizes {
    /// Small thumbnailer image (97 kB).
    pub const THUMBNAIL_SMALL: usize = 97 * 1024;
    /// Large thumbnailer image (3.6 MB).
    pub const THUMBNAIL_LARGE: usize = 3_600 * 1024;
    /// Small image-recognition input (53 kB).
    pub const INFERENCE_SMALL: usize = 53 * 1024;
    /// Large image-recognition input (230 kB).
    pub const INFERENCE_LARGE: usize = 230 * 1024;
    /// Black-Scholes batch input (~229 MB).
    pub const BLACKSCHOLES_INPUT: usize = 229 * 1024 * 1024;
    /// Black-Scholes batch output (~38 MB).
    pub const BLACKSCHOLES_OUTPUT: usize = 38 * 1024 * 1024;
}

/// Generate `size` bytes of deterministic pseudo-random payload.
pub fn generate_payload(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DeterministicRng::new(seed);
    let mut data = Vec::with_capacity(size);
    while data.len() + 8 <= size {
        data.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    while data.len() < size {
        data.push(rng.next_u64() as u8);
    }
    data
}

/// Encode a `f64` slice into little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decode little-endian bytes into a `f64` vector.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_has_exact_size_and_is_deterministic() {
        for size in [0, 1, 7, 8, 1024, 4097] {
            let a = generate_payload(size, 42);
            let b = generate_payload(size, 42);
            assert_eq!(a.len(), size);
            assert_eq!(a, b);
        }
        assert_ne!(generate_payload(64, 1), generate_payload(64, 2));
    }

    #[test]
    fn input_sizes_match_paper() {
        assert_eq!(InputSizes::THUMBNAIL_SMALL, 99_328);
        assert_eq!(InputSizes::THUMBNAIL_LARGE, 3_686_400);
        const { assert!(InputSizes::BLACKSCHOLES_INPUT > 200 * 1024 * 1024) }
        const { assert!(InputSizes::BLACKSCHOLES_OUTPUT > 30 * 1024 * 1024) }
    }

    #[test]
    fn f64_bytes_round_trip() {
        let values = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&values)), values);
    }

    proptest::proptest! {
        #[test]
        fn prop_f64_round_trip(values: Vec<f64>) {
            let filtered: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
            proptest::prop_assert_eq!(bytes_to_f64s(&f64s_to_bytes(&filtered)), filtered);
        }
    }
}
