//! Payload generators, the evaluation input sizes, and the [`Codec`]
//! implementations that plug the workload wire formats into the typed
//! session API (`rfaas::Session` / `rfaas::FunctionHandle`).

use rfaas::{check_capacity, Codec, RFaasError};
use sim_core::DeterministicRng;

use crate::blackscholes::{options_from_bytes, OptionContract};
use crate::thumbnailer::Image;

/// Input sizes used throughout Sec. V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSizes;

impl InputSizes {
    /// Small thumbnailer image (97 kB).
    pub const THUMBNAIL_SMALL: usize = 97 * 1024;
    /// Large thumbnailer image (3.6 MB).
    pub const THUMBNAIL_LARGE: usize = 3_600 * 1024;
    /// Small image-recognition input (53 kB).
    pub const INFERENCE_SMALL: usize = 53 * 1024;
    /// Large image-recognition input (230 kB).
    pub const INFERENCE_LARGE: usize = 230 * 1024;
    /// Black-Scholes batch input (~229 MB).
    pub const BLACKSCHOLES_INPUT: usize = 229 * 1024 * 1024;
    /// Black-Scholes batch output (~38 MB).
    pub const BLACKSCHOLES_OUTPUT: usize = 38 * 1024 * 1024;
}

/// Generate `size` bytes of deterministic pseudo-random payload.
pub fn generate_payload(size: usize, seed: u64) -> Vec<u8> {
    let mut rng = DeterministicRng::new(seed);
    let mut data = Vec::with_capacity(size);
    while data.len() + 8 <= size {
        data.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    while data.len() < size {
        data.push(rng.next_u64() as u8);
    }
    data
}

/// Encode a `f64` slice into little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// Decode little-endian bytes into a `f64` vector.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Bytes one [`OptionContract`] occupies on the wire (six little-endian
/// `f64` words: spot, strike, rate, volatility, time, is_put).
pub const OPTION_WIRE_BYTES: usize = 48;

/// An owned batch of [`OptionContract`]s, newtyped so the workload crate
/// can implement the foreign [`Codec`] trait for it (orphan rule).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OptionBatch(pub Vec<OptionContract>);

impl From<Vec<OptionContract>> for OptionBatch {
    fn from(options: Vec<OptionContract>) -> OptionBatch {
        OptionBatch(options)
    }
}

impl std::ops::Deref for OptionBatch {
    type Target = [OptionContract];

    fn deref(&self) -> &[OptionContract] {
        &self.0
    }
}

/// Borrowed view over an option-batch payload: contracts are decoded on
/// access, the record bytes stay in place. Produced by
/// `<OptionBatch>::decode_view`.
#[derive(Debug, Clone, Copy)]
pub struct OptionBatchView<'a> {
    bytes: &'a [u8],
}

impl<'a> OptionBatchView<'a> {
    /// Number of contracts in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / OPTION_WIRE_BYTES
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Contract `i`, decoded from its wire record.
    pub fn get(&self, i: usize) -> Option<OptionContract> {
        let record = self
            .bytes
            .get(i * OPTION_WIRE_BYTES..(i + 1) * OPTION_WIRE_BYTES)?;
        let word = |j: usize| {
            f64::from_le_bytes(record[j * 8..(j + 1) * 8].try_into().expect("8-byte word"))
        };
        Some(OptionContract {
            spot: word(0),
            strike: word(1),
            rate: word(2),
            volatility: word(3),
            time: word(4),
            is_put: word(5) > 0.5,
        })
    }

    /// Iterate the contracts in order.
    pub fn iter(&self) -> impl Iterator<Item = OptionContract> + '_ {
        (0..self.len()).map(|i| self.get(i).expect("index in bounds"))
    }
}

impl Codec for OptionBatch {
    type Owned = OptionBatch;
    type View<'a> = OptionBatchView<'a>;

    fn encoded_len(&self) -> usize {
        self.0.len() * OPTION_WIRE_BYTES
    }

    fn encode_into(&self, buf: &mut [u8]) -> rfaas::Result<usize> {
        let len = self.encoded_len();
        if len > buf.len() {
            return Err(RFaasError::PayloadTooLarge {
                payload: len,
                capacity: buf.len(),
            });
        }
        for (record, option) in buf[..len]
            .chunks_exact_mut(OPTION_WIRE_BYTES)
            .zip(self.0.iter())
        {
            let words = [
                option.spot,
                option.strike,
                option.rate,
                option.volatility,
                option.time,
                if option.is_put { 1.0 } else { 0.0 },
            ];
            for (slot, word) in record.chunks_exact_mut(8).zip(words) {
                slot.copy_from_slice(&word.to_le_bytes());
            }
        }
        Ok(len)
    }

    fn decode(bytes: &[u8]) -> rfaas::Result<OptionBatch> {
        if !bytes.len().is_multiple_of(OPTION_WIRE_BYTES) {
            return Err(RFaasError::Codec(format!(
                "option batch length {} is not a multiple of the {OPTION_WIRE_BYTES}-byte record",
                bytes.len()
            )));
        }
        Ok(OptionBatch(options_from_bytes(bytes)))
    }

    fn decode_view(bytes: &[u8]) -> rfaas::Result<OptionBatchView<'_>> {
        if !bytes.len().is_multiple_of(OPTION_WIRE_BYTES) {
            return Err(RFaasError::Codec(format!(
                "option batch length {} is not a multiple of the {OPTION_WIRE_BYTES}-byte record",
                bytes.len()
            )));
        }
        Ok(OptionBatchView { bytes })
    }
}

/// Borrowed view over an image payload: header decoded, pixel bytes left in
/// place. Produced by `<Image>::decode_view`.
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a> {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// `width * height * 3` bytes of RGB data, borrowed from the payload.
    pub pixels: &'a [u8],
}

impl Codec for Image {
    type Owned = Image;
    type View<'a> = ImageView<'a>;

    fn encoded_len(&self) -> usize {
        8 + self.pixels.len()
    }

    fn encode_into(&self, buf: &mut [u8]) -> rfaas::Result<usize> {
        let len = self.encoded_len();
        check_capacity(len, buf.len())?;
        buf[0..4].copy_from_slice(&self.width.to_le_bytes());
        buf[4..8].copy_from_slice(&self.height.to_le_bytes());
        buf[8..len].copy_from_slice(&self.pixels);
        Ok(len)
    }

    fn decode(bytes: &[u8]) -> rfaas::Result<Image> {
        Image::decode(bytes).map_err(|e| RFaasError::Codec(e.to_string()))
    }

    fn decode_view(bytes: &[u8]) -> rfaas::Result<ImageView<'_>> {
        if bytes.len() < 8 {
            return Err(RFaasError::Codec("image header missing".into()));
        }
        let width = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let height = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let expected = (width as usize) * (height as usize) * 3;
        if bytes.len() < 8 + expected || width == 0 || height == 0 {
            return Err(RFaasError::Codec(format!(
                "truncated image: {width}x{height} needs {expected} bytes, got {}",
                bytes.len().saturating_sub(8)
            )));
        }
        Ok(ImageView {
            width,
            height,
            pixels: &bytes[8..8 + expected],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackscholes::{generate_options, options_to_bytes};

    #[test]
    fn payload_has_exact_size_and_is_deterministic() {
        for size in [0, 1, 7, 8, 1024, 4097] {
            let a = generate_payload(size, 42);
            let b = generate_payload(size, 42);
            assert_eq!(a.len(), size);
            assert_eq!(a, b);
        }
        assert_ne!(generate_payload(64, 1), generate_payload(64, 2));
    }

    #[test]
    fn input_sizes_match_paper() {
        assert_eq!(InputSizes::THUMBNAIL_SMALL, 99_328);
        assert_eq!(InputSizes::THUMBNAIL_LARGE, 3_686_400);
        const { assert!(InputSizes::BLACKSCHOLES_INPUT > 200 * 1024 * 1024) }
        const { assert!(InputSizes::BLACKSCHOLES_OUTPUT > 30 * 1024 * 1024) }
    }

    #[test]
    fn f64_bytes_round_trip() {
        let values = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&values)), values);
    }

    #[test]
    fn option_codec_matches_the_legacy_wire_format() {
        let options = OptionBatch(generate_options(64, 9));
        let mut buf = vec![0u8; options.encoded_len()];
        assert_eq!(options.encode_into(&mut buf).unwrap(), 64 * 48);
        // The codec must emit byte-identical wire data to options_to_bytes,
        // or remote pricing would diverge between the typed and raw APIs.
        assert_eq!(buf, options_to_bytes(&options));
        assert_eq!(<OptionBatch as Codec>::decode(&buf).unwrap(), options);
        // Ragged lengths and short buffers are rejected.
        assert!(matches!(
            <OptionBatch as Codec>::decode(&buf[..47]),
            Err(RFaasError::Codec(_))
        ));
        let mut short = vec![0u8; 47];
        assert!(matches!(
            options.encode_into(&mut short),
            Err(RFaasError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn image_codec_matches_image_encode() {
        let image = Image::synthetic(20_000, 5);
        let mut buf = vec![0u8; image.encoded_len()];
        image.encode_into(&mut buf).unwrap();
        assert_eq!(buf, image.encode());
        assert_eq!(<Image as Codec>::decode(&buf).unwrap(), image);
        assert!(matches!(
            <Image as Codec>::decode(&buf[..10]),
            Err(RFaasError::Codec(_))
        ));
        let mut short = vec![0u8; 16];
        assert!(image.encode_into(&mut short).is_err());
    }

    #[test]
    fn option_view_decodes_records_in_place() {
        let options = OptionBatch(generate_options(16, 3));
        let mut buf = vec![0u8; options.encoded_len()];
        options.encode_into(&mut buf).unwrap();
        let view = <OptionBatch as Codec>::decode_view(&buf).unwrap();
        assert_eq!(view.len(), 16);
        assert_eq!(view.get(16), None);
        assert_eq!(view.iter().collect::<Vec<_>>(), options.0);
        assert!(matches!(
            <OptionBatch as Codec>::decode_view(&buf[..47]),
            Err(RFaasError::Codec(_))
        ));
    }

    #[test]
    fn image_view_borrows_the_pixel_bytes() {
        let image = Image::synthetic(5_000, 11);
        let mut buf = vec![0u8; image.encoded_len()];
        image.encode_into(&mut buf).unwrap();
        let view = <Image as Codec>::decode_view(&buf).unwrap();
        assert_eq!((view.width, view.height), (image.width, image.height));
        assert_eq!(view.pixels, &image.pixels[..]);
        // In-place: the pixel view borrows the payload, no staging copy.
        assert!(std::ptr::eq(view.pixels.as_ptr(), buf[8..].as_ptr()));
        assert!(matches!(
            <Image as Codec>::decode_view(&buf[..10]),
            Err(RFaasError::Codec(_))
        ));
    }

    proptest::proptest! {
        #[test]
        fn prop_f64_round_trip(values: Vec<f64>) {
            let filtered: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
            proptest::prop_assert_eq!(bytes_to_f64s(&f64s_to_bytes(&filtered)), filtered);
        }

        #[test]
        fn prop_option_codec_round_trip(n in 0usize..64, seed: u64) {
            let options = OptionBatch(generate_options(n, seed));
            let mut buf = vec![0u8; options.encoded_len()];
            options.encode_into(&mut buf).unwrap();
            proptest::prop_assert_eq!(<OptionBatch as Codec>::decode(&buf).unwrap(), options);
        }

        #[test]
        fn prop_image_codec_round_trip(target in 9usize..40_000, seed: u64) {
            let image = Image::synthetic(target, seed);
            let mut buf = vec![0u8; image.encoded_len()];
            image.encode_into(&mut buf).unwrap();
            proptest::prop_assert_eq!(<Image as Codec>::decode(&buf).unwrap(), image);
        }

        #[test]
        fn prop_codecs_reject_short_buffers(n in 1usize..32, seed: u64, cut in 1usize..48) {
            let options = OptionBatch(generate_options(n, seed));
            let needed = options.encoded_len();
            if needed >= cut {
                let mut short = vec![0u8; needed - cut];
                proptest::prop_assert!(options.encode_into(&mut short).is_err());
            }
        }
    }
}
