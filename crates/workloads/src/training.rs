//! Iterative model training with the model resident in the state plane.
//!
//! Linear regression by minibatch gradient descent: the weight vector lives
//! under [`MODEL_KEY`] in the state plane instead of shuttling with every
//! invocation. Each leased invocation carries only a minibatch; the worker
//! materialises the current weights through its state window, takes one
//! gradient step, writes the updated weights back, and returns the batch
//! loss. Across invocations — and across re-allocations, since the plane
//! outlives any lease — training progresses without the client ever copying
//! the model.

use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

use crate::payload::{bytes_to_f64s, f64s_to_bytes};

/// State-plane key holding the weight vector (bias last).
pub const MODEL_KEY: &str = "model";

/// Cost per (row, feature) multiply-accumulate of the gradient step.
pub const COST_PER_MAC: SimDuration = SimDuration::from_nanos(2);

/// A synthetic regression problem with known ground-truth weights.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    /// Feature dimensionality (excluding the bias term).
    pub dim: usize,
    /// Row-major `rows × dim` feature matrix.
    pub features: Vec<f64>,
    /// One target per row.
    pub targets: Vec<f64>,
    /// The weights (dim + 1, bias last) that generated the targets.
    pub truth: Vec<f64>,
}

impl TrainingSet {
    /// Generate `rows` noisy samples of a random linear model.
    pub fn generate(rows: usize, dim: usize, seed: u64) -> TrainingSet {
        let mut rng = DeterministicRng::new(seed);
        let truth: Vec<f64> = (0..=dim).map(|_| rng.range_f64(-2.0, 2.0)).collect();
        let mut features = Vec::with_capacity(rows * dim);
        let mut targets = Vec::with_capacity(rows);
        for _ in 0..rows {
            let row: Vec<f64> = (0..dim).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let mut y = truth[dim]; // bias
            for (x, w) in row.iter().zip(&truth) {
                y += x * w;
            }
            y += rng.range_f64(-0.01, 0.01); // observation noise
            features.extend_from_slice(&row);
            targets.push(y);
        }
        TrainingSet {
            dim,
            features,
            targets,
            truth,
        }
    }

    /// The minibatch covering rows `[begin, end)`, encoded for
    /// [`training_step_function`]: `[lr, dim, rows, row-major features...,
    /// targets...]` as little-endian `f64`s.
    pub fn minibatch(&self, begin: usize, end: usize, learning_rate: f64) -> Vec<u8> {
        assert!(begin <= end && end <= self.targets.len());
        let rows = end - begin;
        let mut frame = Vec::with_capacity(3 + rows * (self.dim + 1));
        frame.push(learning_rate);
        frame.push(self.dim as f64);
        frame.push(rows as f64);
        frame.extend_from_slice(&self.features[begin * self.dim..end * self.dim]);
        frame.extend_from_slice(&self.targets[begin..end]);
        f64s_to_bytes(&frame)
    }
}

/// One minibatch gradient step on mean-squared-error loss. Returns the
/// pre-step batch loss; `weights` (dim + 1, bias last) is updated in place.
pub fn sgd_step(
    weights: &mut [f64],
    dim: usize,
    features: &[f64],
    targets: &[f64],
    learning_rate: f64,
) -> f64 {
    let rows = targets.len();
    assert_eq!(weights.len(), dim + 1);
    assert_eq!(features.len(), rows * dim);
    let mut grad = vec![0.0f64; dim + 1];
    let mut loss = 0.0;
    for (r, &y) in targets.iter().enumerate() {
        let row = &features[r * dim..(r + 1) * dim];
        let mut pred = weights[dim];
        for (x, w) in row.iter().zip(weights.iter()) {
            pred += x * w;
        }
        let err = pred - y;
        loss += err * err;
        for (g, x) in grad.iter_mut().zip(row) {
            *g += err * x;
        }
        grad[dim] += err;
    }
    let scale = 2.0 / rows.max(1) as f64;
    for (w, g) in weights.iter_mut().zip(&grad) {
        *w -= learning_rate * scale * g;
    }
    loss / rows.max(1) as f64
}

/// The offloadable training-step function. Declare
/// `StateKey::read_write(MODEL_KEY)` when binding it. Input is a
/// [`TrainingSet::minibatch`] frame; a fresh (empty) model key initialises to
/// zero weights. Output is the pre-step batch loss as one `f64`.
pub fn training_step_function() -> SharedFunction {
    SharedFunction::from_stateful_fn("train-step", |input, state, output| {
        let values = bytes_to_f64s(input);
        if values.len() < 3 {
            return Err(FunctionError::InvalidInput(
                "minibatch header missing".into(),
            ));
        }
        let learning_rate = values[0];
        let dim = values[1] as usize;
        let rows = values[2] as usize;
        if values.len() != 3 + rows * (dim + 1) {
            return Err(FunctionError::InvalidInput("truncated minibatch".into()));
        }
        let features = &values[3..3 + rows * dim];
        let targets = &values[3 + rows * dim..];

        let model_bytes = state.read(MODEL_KEY)?;
        let mut weights = if model_bytes.is_empty() {
            vec![0.0f64; dim + 1]
        } else {
            bytes_to_f64s(model_bytes)
        };
        if weights.len() != dim + 1 {
            return Err(FunctionError::StateAccess(format!(
                "model has {} weights, minibatch expects {}",
                weights.len(),
                dim + 1
            )));
        }
        let loss = sgd_step(&mut weights, dim, features, targets, learning_rate);
        let encoded = f64s_to_bytes(&weights);
        let slot = state.write(MODEL_KEY)?;
        slot.clear();
        slot.extend_from_slice(&encoded);
        if output.len() < 8 {
            return Err(FunctionError::OutputTooLarge {
                required: 8,
                capacity: output.len(),
            });
        }
        output[..8].copy_from_slice(&loss.to_le_bytes());
        Ok(8)
    })
    // One forward + one backward pass: ~2 MACs per (row, feature) pair. The
    // frame is rows * (dim + 1) + 3 values; treating every value as one MAC
    // pair keeps the model linear in minibatch size.
    .with_cost_model(|input_len| COST_PER_MAC * 2 * (input_len / 8) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::StateAccess;
    use std::collections::BTreeMap;

    struct MapState(BTreeMap<String, Vec<u8>>);
    impl StateAccess for MapState {
        fn read(&self, key: &str) -> Result<&[u8], FunctionError> {
            self.0
                .get(key)
                .map(|v| v.as_slice())
                .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
        }
        fn write(&mut self, key: &str) -> Result<&mut Vec<u8>, FunctionError> {
            self.0
                .get_mut(key)
                .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
        }
    }

    #[test]
    fn sgd_converges_towards_the_generating_weights() {
        let set = TrainingSet::generate(256, 4, 11);
        let mut weights = vec![0.0f64; 5];
        let mut last = f64::INFINITY;
        for epoch in 0..200 {
            let loss = sgd_step(&mut weights, 4, &set.features, &set.targets, 0.1);
            if epoch % 50 == 0 {
                assert!(loss <= last, "loss must not increase: {loss} > {last}");
                last = loss;
            }
        }
        for (w, t) in weights.iter().zip(&set.truth) {
            assert!((w - t).abs() < 0.05, "weight {w} far from truth {t}");
        }
    }

    #[test]
    fn offloaded_steps_match_the_local_loop() {
        let set = TrainingSet::generate(64, 3, 42);
        let f = training_step_function();
        assert!(f.is_stateful());

        // Drive the stateful function over 16-row minibatches.
        let mut state = MapState(BTreeMap::from([(MODEL_KEY.to_string(), Vec::new())]));
        let mut out = vec![0u8; 8];
        let mut offloaded_losses = Vec::new();
        for begin in (0..64).step_by(16) {
            let frame = set.minibatch(begin, begin + 16, 0.05);
            f.invoke_stateful(&frame, &mut state, &mut out).unwrap();
            offloaded_losses.push(f64::from_le_bytes(out[..8].try_into().unwrap()));
        }

        // The local loop over the same minibatches produces the same model
        // and the same losses, bit for bit.
        let mut weights = vec![0.0f64; 4];
        for (i, begin) in (0..64).step_by(16).enumerate() {
            let loss = sgd_step(
                &mut weights,
                3,
                &set.features[begin * 3..(begin + 16) * 3],
                &set.targets[begin..begin + 16],
                0.05,
            );
            assert_eq!(loss, offloaded_losses[i]);
        }
        assert_eq!(bytes_to_f64s(&state.0[MODEL_KEY]), weights);
    }

    #[test]
    fn malformed_frames_and_models_are_rejected() {
        let f = training_step_function();
        let mut state = MapState(BTreeMap::from([(MODEL_KEY.to_string(), Vec::new())]));
        let mut out = vec![0u8; 8];
        assert!(matches!(
            f.invoke_stateful(&[0u8; 8], &mut state, &mut out),
            Err(FunctionError::InvalidInput(_))
        ));
        // A model whose dimensionality disagrees with the minibatch is a
        // state violation, not a silent reshape.
        state
            .0
            .insert(MODEL_KEY.to_string(), f64s_to_bytes(&[1.0, 2.0]));
        let set = TrainingSet::generate(8, 3, 1);
        let frame = set.minibatch(0, 8, 0.1);
        assert!(matches!(
            f.invoke_stateful(&frame, &mut state, &mut out),
            Err(FunctionError::StateAccess(_))
        ));
    }
}
