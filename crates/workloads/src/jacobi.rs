//! Jacobi linear solver, the bulk-synchronous workload of Fig. 13b.
//!
//! The MPI + rFaaS variant offloads half of every iteration to a leased
//! function and exploits the classic serverless optimisation of caching the
//! (immutable) system matrix in the warm executor: only the updated solution
//! vector travels after the first invocation.

use parking_lot::Mutex;
use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

use crate::payload::{bytes_to_f64s, f64s_to_bytes};

/// Cost of one Jacobi update of one unknown (one row dot product element
/// pair), calibrated so a 2 500-unknown iteration lands in the
/// millisecond-per-iteration regime reported in Sec. V-G.
pub const COST_PER_ELEMENT: f64 = 1.6; // nanoseconds per (i, j) pair

/// A diagonally dominant dense linear system `A x = b`.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiSystem {
    /// Number of unknowns.
    pub n: usize,
    /// Row-major `n × n` matrix.
    pub a: Vec<f64>,
    /// Right-hand side.
    pub b: Vec<f64>,
}

impl JacobiSystem {
    /// Generate a well-conditioned, diagonally dominant system.
    pub fn generate(n: usize, seed: u64) -> JacobiSystem {
        let mut rng = DeterministicRng::new(seed);
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rng.range_f64(-1.0, 1.0);
                    a[i * n + j] = v;
                    row_sum += v.abs();
                }
            }
            // Strict diagonal dominance guarantees Jacobi convergence.
            a[i * n + i] = row_sum + rng.range_f64(1.0, 2.0);
        }
        let b = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
        JacobiSystem { n, a, b }
    }

    /// Residual norm `‖A x − b‖₂`.
    pub fn residual(&self, x: &[f64]) -> f64 {
        let n = self.n;
        assert_eq!(x.len(), n, "solution vector must have {n} entries");
        let mut norm = 0.0;
        for i in 0..n {
            let mut acc = -self.b[i];
            for (aij, xj) in self.a[i * n..(i + 1) * n].iter().zip(x) {
                acc += aij * xj;
            }
            norm += acc * acc;
        }
        norm.sqrt()
    }
}

/// One Jacobi sweep over the row range `[row_begin, row_end)`; returns the
/// updated values for those rows.
pub fn jacobi_sweep_rows(
    system: &JacobiSystem,
    x: &[f64],
    row_begin: usize,
    row_end: usize,
) -> Vec<f64> {
    let n = system.n;
    assert!(row_begin <= row_end && row_end <= n);
    assert_eq!(x.len(), n, "solution vector must have {n} entries");
    let mut out = Vec::with_capacity(row_end - row_begin);
    for i in row_begin..row_end {
        let mut sigma = 0.0;
        for (j, (aij, xj)) in system.a[i * n..(i + 1) * n].iter().zip(x).enumerate() {
            if j != i {
                sigma += aij * xj;
            }
        }
        out.push((system.b[i] - sigma) / system.a[i * n + i]);
    }
    out
}

/// Solve the system with `iterations` Jacobi sweeps starting from zero.
pub fn jacobi_solve(system: &JacobiSystem, iterations: usize) -> Vec<f64> {
    let mut x = vec![0.0; system.n];
    for _ in 0..iterations {
        x = jacobi_sweep_rows(system, &x, 0, system.n);
    }
    x
}

/// Virtual compute cost of sweeping `rows` rows of an `n`-unknown system.
pub fn sweep_cost(rows: usize, n: usize) -> SimDuration {
    SimDuration::from_nanos((rows as f64 * n as f64 * COST_PER_ELEMENT) as u64)
}

/// Message kinds accepted by [`jacobi_function`].
const MSG_INSTALL_SYSTEM: f64 = 0.0;
const MSG_ITERATE: f64 = 1.0;

/// Encode the first invocation: install the system and run one half-sweep
/// with the provided solution vector.
pub fn encode_install(
    system: &JacobiSystem,
    x: &[f64],
    row_begin: usize,
    row_end: usize,
) -> Vec<u8> {
    let mut values = vec![
        MSG_INSTALL_SYSTEM,
        system.n as f64,
        row_begin as f64,
        row_end as f64,
    ];
    values.extend_from_slice(&system.a);
    values.extend_from_slice(&system.b);
    values.extend_from_slice(x);
    f64s_to_bytes(&values)
}

/// Encode a subsequent iteration: only the updated solution vector travels.
pub fn encode_iterate(x: &[f64], row_begin: usize, row_end: usize) -> Vec<u8> {
    let mut values = vec![
        MSG_ITERATE,
        x.len() as f64,
        row_begin as f64,
        row_end as f64,
    ];
    values.extend_from_slice(x);
    f64s_to_bytes(&values)
}

/// The rFaaS Jacobi function: caches the system matrix in executor memory on
/// the first invocation and afterwards only needs the solution vector, the
/// optimisation described in Sec. V-G(b).
pub fn jacobi_function() -> SharedFunction {
    let cached: Mutex<Option<JacobiSystem>> = Mutex::new(None);
    SharedFunction::from_fn("jacobi", move |input, output| {
        let values = bytes_to_f64s(input);
        if values.len() < 4 {
            return Err(FunctionError::InvalidInput("jacobi header missing".into()));
        }
        let kind = values[0];
        let n = values[1] as usize;
        let row_begin = values[2] as usize;
        let row_end = values[3] as usize;
        let (system_storage, x): (Option<JacobiSystem>, Vec<f64>) = if kind == MSG_INSTALL_SYSTEM {
            if values.len() < 4 + n * n + 2 * n {
                return Err(FunctionError::InvalidInput(
                    "truncated jacobi system".into(),
                ));
            }
            let a = values[4..4 + n * n].to_vec();
            let b = values[4 + n * n..4 + n * n + n].to_vec();
            let x = values[4 + n * n + n..4 + n * n + 2 * n].to_vec();
            (Some(JacobiSystem { n, a, b }), x)
        } else {
            if values.len() < 4 + n {
                return Err(FunctionError::InvalidInput(
                    "truncated solution vector".into(),
                ));
            }
            (None, values[4..4 + n].to_vec())
        };
        if let Some(system) = system_storage {
            *cached.lock() = Some(system);
        }
        let guard = cached.lock();
        let system = guard.as_ref().ok_or_else(|| {
            FunctionError::InvalidInput("no cached system; send install first".into())
        })?;
        if system.n != n || row_end > n || row_begin > row_end {
            return Err(FunctionError::InvalidInput("row range mismatch".into()));
        }
        let updated = jacobi_sweep_rows(system, &x, row_begin, row_end);
        let bytes = f64s_to_bytes(&updated);
        if output.len() < bytes.len() {
            return Err(FunctionError::OutputTooLarge {
                required: bytes.len(),
                capacity: output.len(),
            });
        }
        output[..bytes.len()].copy_from_slice(&bytes);
        Ok(bytes.len())
    })
    .with_cost_model(|input_len| {
        // Iterate messages carry ~n solution words; install messages carry
        // n² + 2n words. Either way the executed half-sweep costs ~n²/2.
        let words = (input_len / 8).saturating_sub(4);
        let n = if words > 4096 {
            // install message: words ≈ n² + 2n
            (words as f64).sqrt()
        } else {
            words as f64
        };
        SimDuration::from_nanos((0.5 * n * n * COST_PER_ELEMENT) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_systems_are_diagonally_dominant() {
        let s = JacobiSystem::generate(64, 5);
        for i in 0..s.n {
            let diag = s.a[i * s.n + i].abs();
            let off: f64 = (0..s.n)
                .filter(|&j| j != i)
                .map(|j| s.a[i * s.n + j].abs())
                .sum();
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn solver_converges() {
        let system = JacobiSystem::generate(80, 9);
        let x0 = vec![0.0; system.n];
        let x = jacobi_solve(&system, 100);
        assert!(system.residual(&x) < 1e-6 * system.residual(&x0).max(1.0));
    }

    #[test]
    fn split_sweep_equals_full_sweep() {
        let system = JacobiSystem::generate(50, 2);
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let full = jacobi_sweep_rows(&system, &x, 0, 50);
        let mut split = jacobi_sweep_rows(&system, &x, 0, 25);
        split.extend(jacobi_sweep_rows(&system, &x, 25, 50));
        assert_eq!(full, split);
    }

    #[test]
    fn function_caches_system_between_invocations() {
        let system = JacobiSystem::generate(40, 3);
        let f = jacobi_function();
        let mut x = vec![0.0; system.n];
        let mut output = vec![0u8; system.n * 8];

        // First invocation installs the system and sweeps the upper half.
        let install = encode_install(&system, &x, 0, 20);
        let len = f.invoke(&install, &mut output).unwrap();
        let local = jacobi_sweep_rows(&system, &x, 0, 20);
        assert_eq!(bytes_to_f64s(&output[..len]), local);
        x[..20].copy_from_slice(&local);

        // Subsequent invocations only send the solution vector.
        let iterate = encode_iterate(&x, 0, 20);
        assert!(iterate.len() < install.len() / 10);
        let len = f.invoke(&iterate, &mut output).unwrap();
        assert_eq!(
            bytes_to_f64s(&output[..len]),
            jacobi_sweep_rows(&system, &x, 0, 20)
        );
    }

    #[test]
    fn iterate_without_install_fails() {
        let f = jacobi_function();
        let mut output = vec![0u8; 64];
        let err = f
            .invoke(&encode_iterate(&[1.0, 2.0], 0, 1), &mut output)
            .unwrap_err();
        assert!(matches!(err, FunctionError::InvalidInput(_)));
    }

    #[test]
    fn cost_model_tracks_problem_size() {
        assert!(sweep_cost(1250, 2500) > sweep_cost(250, 500) * 20);
        // A full 2 500-unknown sweep sits in the millisecond range (Sec. V-G).
        let per_iter = sweep_cost(2500, 2500).as_millis_f64();
        assert!((1.0..20.0).contains(&per_iter), "sweep cost {per_iter} ms");
    }

    #[test]
    fn solver_handles_trivial_system() {
        let system = JacobiSystem {
            n: 1,
            a: vec![2.0],
            b: vec![4.0],
        };
        let x = jacobi_solve(&system, 10);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }
}
