//! Black-Scholes option pricing (PARSEC), the parallel-offloading workload of
//! Fig. 12.
//!
//! Every option is priced with the closed-form Black-Scholes formula; the
//! batch pricer is embarrassingly parallel, which is why the paper uses it to
//! compare OpenMP threading, full rFaaS offloading and the hybrid
//! OpenMP + rFaaS configuration.

use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

use crate::payload::{bytes_to_f64s, f64s_to_bytes};

/// Virtual compute cost of pricing one option on one core of the evaluation
/// node (calibrated so the full 5-million-option batch takes ~0.4 s serial,
/// matching the single-thread point of Fig. 12).
pub const COST_PER_OPTION: SimDuration = SimDuration::from_nanos(80);

/// One option contract (the PARSEC input record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionContract {
    /// Spot price of the underlying.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free interest rate.
    pub rate: f64,
    /// Volatility of the underlying.
    pub volatility: f64,
    /// Time to maturity in years.
    pub time: f64,
    /// `true` for a put, `false` for a call.
    pub is_put: bool,
}

/// Cumulative distribution function of the standard normal distribution
/// (Abramowitz & Stegun 7.1.26 polynomial approximation, as in PARSEC).
fn normal_cdf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs() / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    0.5 * (1.0 + sign * y)
}

/// Price a single option with the Black-Scholes closed form.
pub fn price_option(option: &OptionContract) -> f64 {
    let OptionContract {
        spot,
        strike,
        rate,
        volatility,
        time,
        is_put,
    } = *option;
    let sqrt_t = time.sqrt();
    let d1 = ((spot / strike).ln() + (rate + 0.5 * volatility * volatility) * time)
        / (volatility * sqrt_t);
    let d2 = d1 - volatility * sqrt_t;
    let discounted_strike = strike * (-rate * time).exp();
    if is_put {
        discounted_strike * normal_cdf(-d2) - spot * normal_cdf(-d1)
    } else {
        spot * normal_cdf(d1) - discounted_strike * normal_cdf(d2)
    }
}

/// Price a batch of options.
pub fn price_batch(options: &[OptionContract]) -> Vec<f64> {
    options.iter().map(price_option).collect()
}

/// Generate a deterministic batch of `n` option contracts.
pub fn generate_options(n: usize, seed: u64) -> Vec<OptionContract> {
    let mut rng = DeterministicRng::new(seed);
    (0..n)
        .map(|_| OptionContract {
            spot: rng.range_f64(20.0, 120.0),
            strike: rng.range_f64(20.0, 120.0),
            rate: rng.range_f64(0.01, 0.08),
            volatility: rng.range_f64(0.1, 0.6),
            time: rng.range_f64(0.1, 2.0),
            is_put: rng.chance(0.5),
        })
        .collect()
}

/// Serialise option contracts into the invocation payload layout
/// (6 `f64` words per option, `is_put` encoded as 0.0/1.0).
pub fn options_to_bytes(options: &[OptionContract]) -> Vec<u8> {
    let mut values = Vec::with_capacity(options.len() * 6);
    for o in options {
        values.extend_from_slice(&[
            o.spot,
            o.strike,
            o.rate,
            o.volatility,
            o.time,
            if o.is_put { 1.0 } else { 0.0 },
        ]);
    }
    f64s_to_bytes(&values)
}

/// Deserialise the invocation payload layout back into option contracts.
pub fn options_from_bytes(bytes: &[u8]) -> Vec<OptionContract> {
    bytes_to_f64s(bytes)
        .chunks_exact(6)
        .map(|c| OptionContract {
            spot: c[0],
            strike: c[1],
            rate: c[2],
            volatility: c[3],
            time: c[4],
            is_put: c[5] > 0.5,
        })
        .collect()
}

/// The rFaaS function: prices the options in the payload and returns one
/// `f64` price per option.
pub fn blackscholes_function() -> SharedFunction {
    SharedFunction::from_fn("blackscholes", |input, output| {
        let options = options_from_bytes(input);
        let prices = price_batch(&options);
        let bytes = f64s_to_bytes(&prices);
        if output.len() < bytes.len() {
            return Err(FunctionError::OutputTooLarge {
                required: bytes.len(),
                capacity: output.len(),
            });
        }
        output[..bytes.len()].copy_from_slice(&bytes);
        Ok(bytes.len())
    })
    .with_cost_model(|input_len| {
        let options = input_len / 48;
        COST_PER_OPTION * options as u64
    })
}

/// Virtual execution time of pricing `n` options over `threads` local
/// (OpenMP-style) threads: the makespan of an even static partition.
pub fn local_parallel_cost(n: usize, threads: usize) -> SimDuration {
    let threads = threads.max(1);
    COST_PER_OPTION * n.div_ceil(threads) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(5.0) > 0.999_99);
        assert!(normal_cdf(-5.0) < 1e-5);
        // Symmetry.
        assert!((normal_cdf(1.3) + normal_cdf(-1.3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn known_call_price() {
        // Classic textbook case: S=100, K=100, r=5%, sigma=20%, T=1 year.
        let call = OptionContract {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            volatility: 0.2,
            time: 1.0,
            is_put: false,
        };
        let price = price_option(&call);
        assert!((price - 10.45).abs() < 0.1, "call price {price}");
    }

    #[test]
    fn known_put_price_via_parity() {
        let put = OptionContract {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            volatility: 0.2,
            time: 1.0,
            is_put: true,
        };
        let call = OptionContract {
            is_put: false,
            ..put
        };
        // Put-call parity: C - P = S - K e^{-rT}.
        let parity = price_option(&call) - price_option(&put);
        let expected = 100.0 - 100.0 * (-0.05f64).exp();
        assert!(
            (parity - expected).abs() < 0.05,
            "parity gap {}",
            parity - expected
        );
    }

    #[test]
    fn prices_are_nonnegative_and_bounded() {
        for o in generate_options(2_000, 7) {
            let p = price_option(&o);
            assert!(p >= -1e-9, "negative price {p} for {o:?}");
            assert!(p <= o.spot.max(o.strike), "price {p} above bound for {o:?}");
        }
    }

    #[test]
    fn serialization_round_trip() {
        let options = generate_options(128, 3);
        let bytes = options_to_bytes(&options);
        assert_eq!(bytes.len(), 128 * 48);
        assert_eq!(options_from_bytes(&bytes), options);
    }

    #[test]
    fn function_prices_match_local_execution() {
        let options = generate_options(64, 11);
        let f = blackscholes_function();
        let input = options_to_bytes(&options);
        let mut output = vec![0u8; 64 * 8];
        let n = f.invoke(&input, &mut output).unwrap();
        assert_eq!(n, 64 * 8);
        let remote = bytes_to_f64s(&output[..n]);
        let local = price_batch(&options);
        for (r, l) in remote.iter().zip(local.iter()) {
            assert_eq!(r, l);
        }
        // Cost model scales with the number of options.
        assert_eq!(f.compute_cost(48 * 1_000), COST_PER_OPTION * 1_000);
    }

    #[test]
    fn function_rejects_small_output_buffer() {
        let options = generate_options(16, 1);
        let f = blackscholes_function();
        let mut output = vec![0u8; 8];
        assert!(f.invoke(&options_to_bytes(&options), &mut output).is_err());
    }

    #[test]
    fn local_parallel_cost_scales_down_with_threads() {
        let serial = local_parallel_cost(1_000_000, 1);
        let parallel = local_parallel_cost(1_000_000, 32);
        assert_eq!(serial, COST_PER_OPTION * 1_000_000);
        assert!(parallel <= serial / 31);
        assert_eq!(local_parallel_cost(10, 0), local_parallel_cost(10, 1));
    }
}
