//! Dense matrix-matrix multiplication, the per-rank kernel of Fig. 13a.
//!
//! In the paper, every MPI rank multiplies its own `n × n` matrices and the
//! MPI + rFaaS variant offloads half of the result rows to a leased function.
//! The kernel here is a cache-blocked triple loop over row-major `f64`
//! matrices; the attached cost model charges `2·rows·n²` floating-point
//! operations at the effective per-core rate of the evaluation nodes.

use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

use crate::payload::{bytes_to_f64s, f64s_to_bytes};

/// Effective per-core cost of one fused multiply-add pair (2 flops) for the
/// naive kernel on the evaluation CPU. Calibrated so an 800×800 multiply
/// takes ~1 s, matching the largest size of Fig. 13a.
pub const COST_PER_FLOP_PAIR: f64 = 1.0; // nanoseconds

const BLOCK: usize = 64;

/// Multiply row-major `a` (n×n) by `b` (n×n) producing the full result.
pub fn multiply(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    multiply_rows(a, b, n, 0, n)
}

/// Multiply rows `[row_begin, row_end)` of `a` by `b`, producing
/// `(row_end - row_begin) × n` output rows.
pub fn multiply_rows(a: &[f64], b: &[f64], n: usize, row_begin: usize, row_end: usize) -> Vec<f64> {
    assert!(
        a.len() >= n * n && b.len() >= n * n,
        "matrix buffers too small"
    );
    assert!(
        row_begin <= row_end && row_end <= n,
        "row range out of bounds"
    );
    let rows = row_end - row_begin;
    let mut c = vec![0.0f64; rows * n];
    for ii in (row_begin..row_end).step_by(BLOCK) {
        for kk in (0..n).step_by(BLOCK) {
            for jj in (0..n).step_by(BLOCK) {
                let i_max = (ii + BLOCK).min(row_end);
                let k_max = (kk + BLOCK).min(n);
                let j_max = (jj + BLOCK).min(n);
                for i in ii..i_max {
                    for k in kk..k_max {
                        let a_ik = a[i * n + k];
                        let c_row = &mut c[(i - row_begin) * n..(i - row_begin) * n + n];
                        let b_row = &b[k * n..k * n + n];
                        for j in jj..j_max {
                            c_row[j] += a_ik * b_row[j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Virtual compute cost of multiplying `rows` rows of an `n × n` system.
pub fn compute_cost(rows: usize, n: usize) -> SimDuration {
    SimDuration::from_nanos((rows as f64 * n as f64 * n as f64 * COST_PER_FLOP_PAIR) as u64)
}

/// Generate a deterministic `n × n` matrix with entries in `[-1, 1]`.
pub fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DeterministicRng::new(seed);
    (0..n * n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

/// Payload layout of the offloaded half-multiply: `[n, row_begin, row_end]`
/// as `f64` words followed by `A` (n²) and `B` (n²).
pub fn encode_matmul_request(
    a: &[f64],
    b: &[f64],
    n: usize,
    row_begin: usize,
    row_end: usize,
) -> Vec<u8> {
    let mut values = Vec::with_capacity(3 + 2 * n * n);
    values.push(n as f64);
    values.push(row_begin as f64);
    values.push(row_end as f64);
    values.extend_from_slice(&a[..n * n]);
    values.extend_from_slice(&b[..n * n]);
    f64s_to_bytes(&values)
}

/// The rFaaS function computing the requested row range of `A × B`.
pub fn matmul_function() -> SharedFunction {
    SharedFunction::from_fn("matmul", |input, output| {
        let values = bytes_to_f64s(input);
        if values.len() < 3 {
            return Err(FunctionError::InvalidInput("matmul header missing".into()));
        }
        let n = values[0] as usize;
        let row_begin = values[1] as usize;
        let row_end = values[2] as usize;
        if values.len() < 3 + 2 * n * n || row_end > n || row_begin > row_end {
            return Err(FunctionError::InvalidInput(format!(
                "inconsistent matmul request: n={n}, rows={row_begin}..{row_end}, words={}",
                values.len()
            )));
        }
        let a = &values[3..3 + n * n];
        let b = &values[3 + n * n..3 + 2 * n * n];
        let c = multiply_rows(a, b, n, row_begin, row_end);
        let bytes = f64s_to_bytes(&c);
        if output.len() < bytes.len() {
            return Err(FunctionError::OutputTooLarge {
                required: bytes.len(),
                capacity: output.len(),
            });
        }
        output[..bytes.len()].copy_from_slice(&bytes);
        Ok(bytes.len())
    })
    .with_cost_model(|input_len| {
        // words = 3 + 2 n²  →  n = sqrt((words - 3) / 2); the offloaded part
        // covers roughly half the rows.
        let words = input_len / 8;
        let n = (((words.saturating_sub(3)) / 2) as f64).sqrt();
        SimDuration::from_nanos((0.5 * n * n * n * COST_PER_FLOP_PAIR) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_multiply(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = sum;
            }
        }
        c
    }

    #[test]
    fn identity_multiplication() {
        let n = 17;
        let a = random_matrix(n, 1);
        let mut identity = vec![0.0; n * n];
        for i in 0..n {
            identity[i * n + i] = 1.0;
        }
        let c = multiply(&a, &identity, n);
        for (x, y) in c.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn blocked_kernel_matches_reference() {
        let n = 70; // not a multiple of the block size
        let a = random_matrix(n, 2);
        let b = random_matrix(n, 3);
        let blocked = multiply(&a, &b, n);
        let reference = reference_multiply(&a, &b, n);
        for (x, y) in blocked.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn row_range_multiplication_matches_full() {
        let n = 48;
        let a = random_matrix(n, 4);
        let b = random_matrix(n, 5);
        let full = multiply(&a, &b, n);
        let lower = multiply_rows(&a, &b, n, n / 2, n);
        assert_eq!(lower.len(), (n / 2) * n);
        for (i, value) in lower.iter().enumerate() {
            assert!((value - full[n * n / 2 + i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_row_range_panics() {
        let a = random_matrix(8, 1);
        let b = random_matrix(8, 2);
        multiply_rows(&a, &b, 8, 6, 10);
    }

    #[test]
    fn cost_model_is_cubic() {
        let small = compute_cost(400, 400);
        let large = compute_cost(800, 800);
        assert!((large.as_nanos() as f64 / small.as_nanos() as f64 - 8.0).abs() < 0.01);
        // 800×800 full multiply ≈ 1.0 s wall time on one core (Fig. 13a).
        assert!((0.4..1.5).contains(&large.as_secs_f64()));
    }

    #[test]
    fn function_computes_requested_rows() {
        let n = 32;
        let a = random_matrix(n, 6);
        let b = random_matrix(n, 7);
        let request = encode_matmul_request(&a, &b, n, n / 2, n);
        let f = matmul_function();
        let mut output = vec![0u8; (n / 2) * n * 8];
        let len = f.invoke(&request, &mut output).unwrap();
        assert_eq!(len, (n / 2) * n * 8);
        let remote = bytes_to_f64s(&output[..len]);
        let local = multiply_rows(&a, &b, n, n / 2, n);
        for (r, l) in remote.iter().zip(local.iter()) {
            assert!((r - l).abs() < 1e-12);
        }
        // Cost model corresponds to roughly half the cubic work.
        let cost = f.compute_cost(request.len());
        let expected = compute_cost(n / 2, n);
        let ratio = cost.as_nanos() as f64 / expected.as_nanos() as f64;
        assert!((0.8..1.2).contains(&ratio), "cost ratio {ratio}");
    }

    #[test]
    fn function_rejects_malformed_requests() {
        let f = matmul_function();
        let mut output = vec![0u8; 64];
        assert!(f.invoke(&[0u8; 8], &mut output).is_err());
        // Header claims a larger matrix than the payload carries.
        let bogus = f64s_to_bytes(&[100.0, 0.0, 100.0, 1.0, 2.0]);
        assert!(f.invoke(&bogus, &mut output).is_err());
    }
}
