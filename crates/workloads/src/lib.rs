//! Evaluation workloads of the rFaaS paper.
//!
//! Every kernel is implemented for real (the numbers that come back from an
//! offloaded invocation are the correct numbers), and each exposes a
//! `*_function()` constructor returning a [`sandbox::SharedFunction`] whose
//! attached cost model charges realistic execution time on the executing
//! worker's virtual clock.
//!
//! * [`blackscholes`] — the PARSEC Black-Scholes option-pricing kernel used
//!   for the parallel-offloading study (Fig. 12),
//! * [`matmul`] — per-rank matrix-matrix multiplication for the MPI + rFaaS
//!   experiment (Fig. 13a),
//! * [`jacobi`] — the Jacobi linear solver with executor-side caching of the
//!   system matrix (Fig. 13b),
//! * [`thumbnailer`] — SeBS-style thumbnail generation over synthetic RGB
//!   images (Fig. 11a),
//! * [`inference`] — a ResNet-50-scale CNN inference kernel (Fig. 11b),
//! * [`payload`] — payload generators and the input sizes used in Sec. V,
//! * [`streaming`] — stateful streaming aggregation with the running
//!   aggregate resident in the RDMA state plane,
//! * [`training`] — iterative minibatch SGD with the model weights resident
//!   in the RDMA state plane.

pub mod blackscholes;
pub mod inference;
pub mod jacobi;
pub mod matmul;
pub mod payload;
pub mod streaming;
pub mod thumbnailer;
pub mod training;

pub use blackscholes::{
    blackscholes_function, generate_options, price_batch, price_option, OptionContract,
};
pub use inference::{image_recognition_function, InferenceModel};
pub use jacobi::{jacobi_function, jacobi_solve, JacobiSystem};
pub use matmul::{matmul_function, multiply, multiply_rows};
pub use payload::{
    generate_payload, ImageView, InputSizes, OptionBatch, OptionBatchView, OPTION_WIRE_BYTES,
};
pub use streaming::{
    aggregate_batches, streaming_aggregation_function, StreamAggregate, AGGREGATE_KEY,
};
pub use thumbnailer::{thumbnailer_function, Image};
pub use training::{sgd_step, training_step_function, TrainingSet, MODEL_KEY};
