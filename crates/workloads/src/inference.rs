//! Image-recognition inference (the SeBS `image-recognition` benchmark,
//! Fig. 11b).
//!
//! The paper runs ResNet-50 through the PyTorch C++ API. Shipping a real
//! 25-million-parameter network is neither possible nor necessary here: what
//! the experiment measures is the end-to-end cost of moving a 53 kB / 230 kB
//! image to a function whose compute takes ~110 ms and whose model weights
//! stay cached in the warm executor. This module implements a *real* (small)
//! convolutional network — convolution, ReLU, average pooling and a dense
//! classifier over deterministic weights — and attaches the ResNet-50-scale
//! cost model.

use parking_lot::Mutex;
use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

use crate::payload::f64s_to_bytes;
use crate::thumbnailer::Image;

/// Number of output classes (ImageNet-1k, as for ResNet-50).
pub const NUM_CLASSES: usize = 1000;
/// Input resolution the network operates on.
const INPUT_SIDE: u32 = 64;
/// Number of convolution filters.
const FILTERS: usize = 8;
/// Pooled feature-map side length.
const POOLED_SIDE: usize = 16;

/// A small convolutional classifier with deterministic weights.
#[derive(Debug, Clone)]
pub struct InferenceModel {
    conv_kernels: Vec<f64>,  // FILTERS × 3 × 3 × 3
    dense_weights: Vec<f64>, // NUM_CLASSES × (FILTERS × POOLED_SIDE²)
    dense_bias: Vec<f64>,    // NUM_CLASSES
}

impl InferenceModel {
    /// Deterministically initialised model (stands in for the TorchScript
    /// ResNet-50 checkpoint the paper ships in the Docker image).
    pub fn pretrained(seed: u64) -> InferenceModel {
        let mut rng = DeterministicRng::new(seed);
        let features = FILTERS * POOLED_SIDE * POOLED_SIDE;
        InferenceModel {
            conv_kernels: (0..FILTERS * 3 * 3 * 3)
                .map(|_| rng.range_f64(-0.5, 0.5))
                .collect(),
            dense_weights: (0..NUM_CLASSES * features)
                .map(|_| rng.range_f64(-0.05, 0.05))
                .collect(),
            dense_bias: (0..NUM_CLASSES).map(|_| rng.range_f64(-0.1, 0.1)).collect(),
        }
    }

    /// Run the network over an image, returning `NUM_CLASSES` logits.
    pub fn forward(&self, image: &Image) -> Vec<f64> {
        // Downscale to the fixed input resolution (preprocessing step).
        let input = image.resize(INPUT_SIDE, INPUT_SIDE);
        let side = INPUT_SIDE as usize;

        // 3×3 convolution + ReLU for every filter.
        let mut maps = vec![0.0f64; FILTERS * side * side];
        for f in 0..FILTERS {
            for y in 1..side - 1 {
                for x in 1..side - 1 {
                    let mut acc = 0.0;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let px = ((y + ky - 1) * side + (x + kx - 1)) * 3;
                            for c in 0..3 {
                                let w = self.conv_kernels[((f * 3 + ky) * 3 + kx) * 3 + c];
                                acc += w * input.pixels[px + c] as f64 / 255.0;
                            }
                        }
                    }
                    maps[f * side * side + y * side + x] = acc.max(0.0);
                }
            }
        }

        // Average pooling down to POOLED_SIDE × POOLED_SIDE.
        let stride = side / POOLED_SIDE;
        let mut pooled = vec![0.0f64; FILTERS * POOLED_SIDE * POOLED_SIDE];
        for f in 0..FILTERS {
            for py in 0..POOLED_SIDE {
                for px in 0..POOLED_SIDE {
                    let mut acc = 0.0;
                    for y in 0..stride {
                        for x in 0..stride {
                            acc +=
                                maps[f * side * side + (py * stride + y) * side + px * stride + x];
                        }
                    }
                    pooled[f * POOLED_SIDE * POOLED_SIDE + py * POOLED_SIDE + px] =
                        acc / (stride * stride) as f64;
                }
            }
        }

        // Dense classifier.
        let features = pooled.len();
        let mut logits = self.dense_bias.clone();
        for (class, logit) in logits.iter_mut().enumerate() {
            let weights = &self.dense_weights[class * features..(class + 1) * features];
            *logit += weights
                .iter()
                .zip(pooled.iter())
                .map(|(w, v)| w * v)
                .sum::<f64>();
        }
        logits
    }

    /// Index of the most likely class.
    pub fn classify(&self, image: &Image) -> usize {
        let logits = self.forward(image);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

/// The rFaaS image-recognition function. The model is loaded lazily on the
/// first invocation and cached in the executor's memory afterwards, exactly
/// like the TorchScript model in the paper (Sec. V-E(b)).
pub fn image_recognition_function() -> SharedFunction {
    let model: Mutex<Option<InferenceModel>> = Mutex::new(None);
    SharedFunction::from_fn("image-recognition", move |input, output| {
        let image = Image::decode(input)?;
        let mut guard = model.lock();
        let model = guard.get_or_insert_with(|| InferenceModel::pretrained(50));
        let logits = model.forward(&image);
        let bytes = f64s_to_bytes(&logits);
        if output.len() < bytes.len() {
            return Err(FunctionError::OutputTooLarge {
                required: bytes.len(),
                capacity: output.len(),
            });
        }
        output[..bytes.len()].copy_from_slice(&bytes);
        Ok(bytes.len())
    })
    .with_cost_model(|input_len| {
        // ResNet-50 inference on one CPU core: ~110 ms (Fig. 11b shows
        // 112-118 ms end to end), plus JPEG-decode-style per-byte cost.
        SimDuration::from_millis(110) + SimDuration::from_nanos((8.0 * input_len as f64) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{bytes_to_f64s, InputSizes};

    #[test]
    fn forward_produces_one_logit_per_class() {
        let model = InferenceModel::pretrained(1);
        let image = Image::synthetic(InputSizes::INFERENCE_SMALL, 2);
        let logits = model.forward(&image);
        assert_eq!(logits.len(), NUM_CLASSES);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn inference_is_deterministic() {
        let model = InferenceModel::pretrained(1);
        let image = Image::synthetic(InputSizes::INFERENCE_LARGE, 3);
        assert_eq!(model.forward(&image), model.forward(&image));
        assert_eq!(model.classify(&image), model.classify(&image));
    }

    #[test]
    fn different_images_give_different_predictions() {
        let model = InferenceModel::pretrained(1);
        let a = Image::synthetic(InputSizes::INFERENCE_SMALL, 10);
        let b = Image::synthetic(InputSizes::INFERENCE_SMALL, 11);
        assert_ne!(model.forward(&a), model.forward(&b));
    }

    #[test]
    fn function_returns_logits_and_caches_model() {
        let f = image_recognition_function();
        let image = Image::synthetic(InputSizes::INFERENCE_SMALL, 4);
        let input = image.encode();
        let mut output = vec![0u8; NUM_CLASSES * 8];
        let len = f.invoke(&input, &mut output).unwrap();
        assert_eq!(len, NUM_CLASSES * 8);
        let logits = bytes_to_f64s(&output[..len]);
        // A second invocation (warm model) must agree with the first.
        let len2 = f.invoke(&input, &mut output).unwrap();
        assert_eq!(bytes_to_f64s(&output[..len2]), logits);
    }

    #[test]
    fn function_rejects_bad_inputs() {
        let f = image_recognition_function();
        let mut output = vec![0u8; NUM_CLASSES * 8];
        assert!(f.invoke(&[0u8; 4], &mut output).is_err());
        let image = Image::synthetic(InputSizes::INFERENCE_SMALL, 4);
        let mut small_output = vec![0u8; 128];
        assert!(f.invoke(&image.encode(), &mut small_output).is_err());
    }

    #[test]
    fn cost_model_matches_figure_11b() {
        let f = image_recognition_function();
        let small = f.compute_cost(InputSizes::INFERENCE_SMALL).as_millis_f64();
        let large = f.compute_cost(InputSizes::INFERENCE_LARGE).as_millis_f64();
        assert!(
            (105.0..125.0).contains(&small),
            "small input cost {small} ms"
        );
        assert!(
            (105.0..125.0).contains(&large),
            "large input cost {large} ms"
        );
        assert!(large > small);
    }
}
