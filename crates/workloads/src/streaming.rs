//! Stateful streaming aggregation over the RDMA state plane.
//!
//! A sensor stream arrives in batches of `f64` readings; the running
//! aggregate (count, sum, min, max) lives in the state plane under
//! [`AGGREGATE_KEY`] rather than travelling with every invocation. Each
//! invocation materialises the aggregate into the worker's state window,
//! folds the batch in, and writes the updated aggregate back — the classic
//! "keyed state" shape of streaming engines, expressed as a leased rFaaS
//! function with a `with_state` declaration.

use sandbox::{FunctionError, SharedFunction};
use sim_core::SimDuration;

use crate::payload::{bytes_to_f64s, f64s_to_bytes};

/// State-plane key holding the running aggregate.
pub const AGGREGATE_KEY: &str = "stream-aggregate";

/// Cost of folding one reading into the aggregate: a handful of compares and
/// adds, far below the per-option Black-Scholes cost.
pub const COST_PER_READING: SimDuration = SimDuration::from_nanos(6);

/// Running aggregate of a stream of readings. Serialised as four `f64`s
/// (count, sum, min, max) so it round-trips through the byte-oriented state
/// plane with [`encode`](StreamAggregate::encode) /
/// [`decode`](StreamAggregate::decode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAggregate {
    /// Readings folded in so far.
    pub count: u64,
    /// Sum of all readings.
    pub sum: f64,
    /// Smallest reading observed.
    pub min: f64,
    /// Largest reading observed.
    pub max: f64,
}

impl Default for StreamAggregate {
    fn default() -> StreamAggregate {
        StreamAggregate {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamAggregate {
    /// Fold a batch of readings into the aggregate.
    pub fn update(&mut self, readings: &[f64]) {
        for &r in readings {
            self.count += 1;
            self.sum += r;
            self.min = self.min.min(r);
            self.max = self.max.max(r);
        }
    }

    /// Mean of the readings folded in so far (0 for an empty aggregate).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Serialise as four little-endian `f64`s.
    pub fn encode(&self) -> Vec<u8> {
        f64s_to_bytes(&[self.count as f64, self.sum, self.min, self.max])
    }

    /// Deserialise from [`encode`](StreamAggregate::encode) output; an empty
    /// slice decodes to the identity aggregate (a fresh state-plane key).
    pub fn decode(bytes: &[u8]) -> Result<StreamAggregate, FunctionError> {
        if bytes.is_empty() {
            return Ok(StreamAggregate::default());
        }
        let values = bytes_to_f64s(bytes);
        if values.len() != 4 {
            return Err(FunctionError::StateAccess(format!(
                "aggregate state is {} bytes, expected 32 or 0",
                bytes.len()
            )));
        }
        Ok(StreamAggregate {
            count: values[0] as u64,
            sum: values[1],
            min: values[2],
            max: values[3],
        })
    }
}

/// Reference implementation: fold every batch locally.
pub fn aggregate_batches<'a>(batches: impl IntoIterator<Item = &'a [f64]>) -> StreamAggregate {
    let mut agg = StreamAggregate::default();
    for batch in batches {
        agg.update(batch);
    }
    agg
}

/// The offloadable streaming-aggregation function. Declare
/// `StateKey::read_write(AGGREGATE_KEY)` when binding it; the input is a
/// batch of `f64` readings and the output echoes the updated aggregate
/// (count, sum, min, max) so the client can observe progress without a
/// separate state read.
pub fn streaming_aggregation_function() -> SharedFunction {
    SharedFunction::from_stateful_fn("stream-aggregate", |input, state, output| {
        let readings = bytes_to_f64s(input);
        let mut agg = StreamAggregate::decode(state.read(AGGREGATE_KEY)?)?;
        agg.update(&readings);
        let encoded = agg.encode();
        let slot = state.write(AGGREGATE_KEY)?;
        slot.clear();
        slot.extend_from_slice(&encoded);
        if output.len() < encoded.len() {
            return Err(FunctionError::OutputTooLarge {
                required: encoded.len(),
                capacity: output.len(),
            });
        }
        output[..encoded.len()].copy_from_slice(&encoded);
        Ok(encoded.len())
    })
    .with_cost_model(|input_len| COST_PER_READING * (input_len / 8) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sandbox::StateAccess;
    use sim_core::DeterministicRng;
    use std::collections::BTreeMap;

    struct MapState(BTreeMap<String, Vec<u8>>);
    impl StateAccess for MapState {
        fn read(&self, key: &str) -> Result<&[u8], FunctionError> {
            self.0
                .get(key)
                .map(|v| v.as_slice())
                .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
        }
        fn write(&mut self, key: &str) -> Result<&mut Vec<u8>, FunctionError> {
            self.0
                .get_mut(key)
                .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
        }
    }

    #[test]
    fn aggregate_round_trips_and_folds_correctly() {
        let mut agg = StreamAggregate::default();
        agg.update(&[2.0, -1.0, 5.0]);
        assert_eq!(agg.count, 3);
        assert_eq!(agg.sum, 6.0);
        assert_eq!(agg.min, -1.0);
        assert_eq!(agg.max, 5.0);
        assert_eq!(agg.mean(), 2.0);
        assert_eq!(StreamAggregate::decode(&agg.encode()).unwrap(), agg);
        // A fresh (empty) key is the identity aggregate.
        assert_eq!(
            StreamAggregate::decode(&[]).unwrap(),
            StreamAggregate::default()
        );
        assert!(StreamAggregate::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn offloaded_batches_match_the_local_fold() {
        let f = streaming_aggregation_function();
        assert!(f.is_stateful());
        let mut rng = DeterministicRng::new(7);
        let batches: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..64).map(|_| rng.range_f64(-100.0, 100.0)).collect())
            .collect();

        let mut state = MapState(BTreeMap::from([(AGGREGATE_KEY.to_string(), Vec::new())]));
        let mut out = vec![0u8; 64];
        for batch in &batches {
            let n = f
                .invoke_stateful(&f64s_to_bytes(batch), &mut state, &mut out)
                .unwrap();
            assert_eq!(n, 32);
        }
        let streamed = StreamAggregate::decode(&state.0[AGGREGATE_KEY]).unwrap();
        let local = aggregate_batches(batches.iter().map(|b| b.as_slice()));
        assert_eq!(streamed, local);
        // The final output frame echoes the committed aggregate.
        assert_eq!(StreamAggregate::decode(&out[..32]).unwrap(), local);
        // Cost scales with readings, not with accumulated state.
        assert_eq!(f.compute_cost(64 * 8), COST_PER_READING * 64);
    }
}
