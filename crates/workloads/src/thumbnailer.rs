//! Thumbnail generation (the SeBS `thumbnailer` benchmark, Fig. 11a).
//!
//! The original benchmark resizes a user-supplied JPEG with OpenCV; here a
//! synthetic RGB image of the same byte size is generated, transmitted as the
//! invocation payload, and resized with a real bilinear filter. The cost
//! model charges the decode + resize + encode time measured for OpenCV-class
//! implementations on the evaluation CPU.

use sandbox::{FunctionError, SharedFunction};
use sim_core::{DeterministicRng, SimDuration};

/// Side length of the generated thumbnail.
pub const THUMBNAIL_SIZE: u32 = 256;

/// A simple packed RGB image (8 bits per channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// `width * height * 3` bytes of RGB data, row-major.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Generate a deterministic synthetic image whose encoded size is
    /// approximately `target_bytes`.
    pub fn synthetic(target_bytes: usize, seed: u64) -> Image {
        // Encoded size = 8-byte header + w*h*3; pick a square-ish shape.
        let pixels_needed = target_bytes.saturating_sub(8) / 3;
        let side = (pixels_needed as f64).sqrt().floor().max(1.0) as u32;
        let mut rng = DeterministicRng::new(seed);
        let mut pixels = Vec::with_capacity((side * side * 3) as usize);
        for y in 0..side {
            for x in 0..side {
                // A smooth gradient plus noise, so resizing is non-trivial.
                let base = ((x * 255 / side) as u8, (y * 255 / side) as u8);
                pixels.push(base.0.wrapping_add((rng.next_u64() % 16) as u8));
                pixels.push(base.1.wrapping_add((rng.next_u64() % 16) as u8));
                pixels.push(((x ^ y) as u8).wrapping_add((rng.next_u64() % 16) as u8));
            }
        }
        Image {
            width: side,
            height: side,
            pixels,
        }
    }

    /// Encode into the invocation payload layout: `[width u32 | height u32 |
    /// RGB bytes]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(8 + self.pixels.len());
        bytes.extend_from_slice(&self.width.to_le_bytes());
        bytes.extend_from_slice(&self.height.to_le_bytes());
        bytes.extend_from_slice(&self.pixels);
        bytes
    }

    /// Decode the invocation payload layout.
    pub fn decode(bytes: &[u8]) -> Result<Image, FunctionError> {
        if bytes.len() < 8 {
            return Err(FunctionError::InvalidInput("image header missing".into()));
        }
        let width = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let height = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let expected = (width as usize) * (height as usize) * 3;
        if bytes.len() < 8 + expected || width == 0 || height == 0 {
            return Err(FunctionError::InvalidInput(format!(
                "truncated image: {}x{} needs {} bytes, got {}",
                width,
                height,
                expected,
                bytes.len().saturating_sub(8)
            )));
        }
        Ok(Image {
            width,
            height,
            pixels: bytes[8..8 + expected].to_vec(),
        })
    }

    fn pixel(&self, x: u32, y: u32) -> [f64; 3] {
        let idx = ((y * self.width + x) * 3) as usize;
        [
            self.pixels[idx] as f64,
            self.pixels[idx + 1] as f64,
            self.pixels[idx + 2] as f64,
        ]
    }

    /// Bilinear resize to `dst_width × dst_height`.
    pub fn resize(&self, dst_width: u32, dst_height: u32) -> Image {
        assert!(dst_width > 0 && dst_height > 0);
        let mut pixels = Vec::with_capacity((dst_width * dst_height * 3) as usize);
        let x_ratio = self.width as f64 / dst_width as f64;
        let y_ratio = self.height as f64 / dst_height as f64;
        for dy in 0..dst_height {
            for dx in 0..dst_width {
                let sx = (dx as f64 + 0.5) * x_ratio - 0.5;
                let sy = (dy as f64 + 0.5) * y_ratio - 0.5;
                let x0 = sx.floor().max(0.0) as u32;
                let y0 = sy.floor().max(0.0) as u32;
                let x1 = (x0 + 1).min(self.width - 1);
                let y1 = (y0 + 1).min(self.height - 1);
                let fx = (sx - x0 as f64).clamp(0.0, 1.0);
                let fy = (sy - y0 as f64).clamp(0.0, 1.0);
                let p00 = self.pixel(x0, y0);
                let p10 = self.pixel(x1, y0);
                let p01 = self.pixel(x0, y1);
                let p11 = self.pixel(x1, y1);
                for c in 0..3 {
                    let top = p00[c] * (1.0 - fx) + p10[c] * fx;
                    let bottom = p01[c] * (1.0 - fx) + p11[c] * fx;
                    pixels.push((top * (1.0 - fy) + bottom * fy).round().clamp(0.0, 255.0) as u8);
                }
            }
        }
        Image {
            width: dst_width,
            height: dst_height,
            pixels,
        }
    }
}

/// The rFaaS thumbnailer function: decodes the payload image and returns an
/// encoded 256×256 thumbnail.
pub fn thumbnailer_function() -> SharedFunction {
    SharedFunction::from_fn("thumbnailer", |input, output| {
        let image = Image::decode(input)?;
        let target_w = THUMBNAIL_SIZE.min(image.width);
        let target_h = THUMBNAIL_SIZE.min(image.height);
        let thumbnail = image.resize(target_w, target_h);
        let bytes = thumbnail.encode();
        if output.len() < bytes.len() {
            return Err(FunctionError::OutputTooLarge {
                required: bytes.len(),
                capacity: output.len(),
            });
        }
        output[..bytes.len()].copy_from_slice(&bytes);
        Ok(bytes.len())
    })
    .with_cost_model(|input_len| {
        // OpenCV-class decode + resize + encode: ~1 ms fixed plus ~31 ns per
        // input byte (Fig. 11a: 4.4 ms for the 97 kB image, ~115 ms for the
        // 3.6 MB image).
        SimDuration::from_micros(1_000) + SimDuration::from_nanos((31.0 * input_len as f64) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::InputSizes;

    #[test]
    fn synthetic_image_hits_target_size() {
        for target in [InputSizes::THUMBNAIL_SMALL, InputSizes::THUMBNAIL_LARGE] {
            let image = Image::synthetic(target, 1);
            let encoded = image.encode();
            let error = (encoded.len() as f64 - target as f64).abs() / target as f64;
            assert!(
                error < 0.05,
                "encoded {} vs target {}",
                encoded.len(),
                target
            );
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let image = Image::synthetic(50_000, 3);
        let decoded = Image::decode(&image.encode()).unwrap();
        assert_eq!(decoded, image);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Image::decode(&[1, 2, 3]).is_err());
        let mut bytes = Image::synthetic(10_000, 1).encode();
        bytes.truncate(bytes.len() - 100);
        assert!(Image::decode(&bytes).is_err());
    }

    #[test]
    fn resize_produces_expected_dimensions_and_range() {
        let image = Image::synthetic(200_000, 5);
        let thumb = image.resize(64, 32);
        assert_eq!(thumb.width, 64);
        assert_eq!(thumb.height, 32);
        assert_eq!(thumb.pixels.len(), 64 * 32 * 3);
    }

    #[test]
    fn resize_of_uniform_image_is_uniform() {
        let image = Image {
            width: 100,
            height: 100,
            pixels: vec![200u8; 100 * 100 * 3],
        };
        let thumb = image.resize(10, 10);
        assert!(thumb.pixels.iter().all(|&p| p == 200));
    }

    #[test]
    fn function_returns_thumbnail() {
        let image = Image::synthetic(InputSizes::THUMBNAIL_LARGE, 7);
        let f = thumbnailer_function();
        let input = image.encode();
        let mut output = vec![0u8; (THUMBNAIL_SIZE * THUMBNAIL_SIZE * 3 + 8) as usize];
        let len = f.invoke(&input, &mut output).unwrap();
        let thumb = Image::decode(&output[..len]).unwrap();
        assert_eq!(thumb.width, THUMBNAIL_SIZE.min(image.width));
        assert!(thumb.pixels.len() < image.pixels.len());
    }

    #[test]
    fn cost_model_matches_figure_11a() {
        let f = thumbnailer_function();
        let small = f.compute_cost(InputSizes::THUMBNAIL_SMALL).as_millis_f64();
        let large = f.compute_cost(InputSizes::THUMBNAIL_LARGE).as_millis_f64();
        assert!((2.5..6.5).contains(&small), "small image cost {small} ms");
        assert!(
            (90.0..140.0).contains(&large),
            "large image cost {large} ms"
        );
    }
}
