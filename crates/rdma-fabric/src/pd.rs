//! Protection domains.
//!
//! A protection domain (PD) groups memory registrations and queue pairs: a QP
//! may only expose regions registered in its own PD to remote peers, and a
//! remote key is only valid within the PD it was issued by. rFaaS allocates
//! one PD per executor process and one per client invoker.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{FabricError, Result};
use crate::memory::{AccessFlags, MemoryRegion};

static NEXT_PD_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct PdInner {
    id: u64,
    regions: RwLock<HashMap<u64, MemoryRegion>>,
}

/// A protection domain: a namespace of memory registrations.
#[derive(Debug, Clone)]
pub struct ProtectionDomain {
    inner: Arc<PdInner>,
}

impl Default for ProtectionDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl ProtectionDomain {
    /// Allocate a fresh protection domain.
    pub fn new() -> ProtectionDomain {
        ProtectionDomain {
            inner: Arc::new(PdInner {
                id: NEXT_PD_ID.fetch_add(1, Ordering::Relaxed),
                regions: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Numeric identifier of the domain.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Register a zero-initialised region of `len` bytes in this domain.
    pub fn register(&self, len: usize, access: AccessFlags) -> MemoryRegion {
        let mr = MemoryRegion::zeroed(len, access);
        self.inner.regions.write().insert(mr.rkey(), mr.clone());
        mr
    }

    /// Register a region initialised from `data`.
    pub fn register_from(&self, data: Vec<u8>, access: AccessFlags) -> MemoryRegion {
        let mr = MemoryRegion::from_vec(data, access);
        self.inner.regions.write().insert(mr.rkey(), mr.clone());
        mr
    }

    /// Deregister a region. Remote handles pointing at it become invalid.
    pub fn deregister(&self, mr: &MemoryRegion) -> bool {
        self.inner.regions.write().remove(&mr.rkey()).is_some()
    }

    /// Resolve a remote key issued by this domain.
    pub fn lookup(&self, rkey: u64) -> Result<MemoryRegion> {
        self.inner
            .regions
            .read()
            .get(&rkey)
            .cloned()
            .ok_or(FabricError::InvalidRemoteKey(rkey))
    }

    /// Number of live registrations (used by accounting and tests).
    pub fn region_count(&self) -> usize {
        self.inner.regions.read().len()
    }

    /// Total registered bytes; rFaaS bills lease memory from this.
    pub fn registered_bytes(&self) -> usize {
        self.inner.regions.read().values().map(|r| r.len()).sum()
    }

    /// Whether two handles refer to the same domain.
    pub fn same_domain(&self, other: &ProtectionDomain) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(64, AccessFlags::REMOTE_ALL);
        let found = pd.lookup(mr.rkey()).unwrap();
        assert!(found.same_region(&mr));
        assert_eq!(pd.region_count(), 1);
        assert_eq!(pd.registered_bytes(), 64);
    }

    #[test]
    fn unknown_rkey_is_rejected() {
        let pd = ProtectionDomain::new();
        assert!(matches!(
            pd.lookup(12345),
            Err(FabricError::InvalidRemoteKey(12345))
        ));
    }

    #[test]
    fn rkeys_do_not_cross_domains() {
        let pd1 = ProtectionDomain::new();
        let pd2 = ProtectionDomain::new();
        let mr = pd1.register(16, AccessFlags::REMOTE_ALL);
        assert!(pd2.lookup(mr.rkey()).is_err());
        assert!(!pd1.same_domain(&pd2));
        assert!(pd1.same_domain(&pd1.clone()));
    }

    #[test]
    fn deregister_removes_region() {
        let pd = ProtectionDomain::new();
        let mr = pd.register(16, AccessFlags::REMOTE_ALL);
        assert!(pd.deregister(&mr));
        assert!(!pd.deregister(&mr));
        assert!(pd.lookup(mr.rkey()).is_err());
        assert_eq!(pd.registered_bytes(), 0);
    }

    #[test]
    fn register_from_preserves_data() {
        let pd = ProtectionDomain::new();
        let mr = pd.register_from(vec![9, 8, 7], AccessFlags::LOCAL_ONLY);
        assert_eq!(mr.read_all(), vec![9, 8, 7]);
        assert_eq!(pd.registered_bytes(), 3);
    }

    #[test]
    fn domains_have_unique_ids() {
        let a = ProtectionDomain::new();
        let b = ProtectionDomain::new();
        assert_ne!(a.id(), b.id());
    }
}
