//! Connection management, the `rdma_cm` analogue.
//!
//! Servers bind a [`Listener`] at a string address ("host:service"); clients
//! call [`connect`] with an [`Endpoint`] describing where they run. The
//! handshake produces a connected [`QueuePair`] on both sides and charges the
//! reliable-connection establishment cost from the NIC profile — the cost
//! rFaaS clients amortise by caching connections inside leases (Sec. III-B).

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use sim_core::SimTime;

use crate::error::{FabricError, Result};
use crate::fabric::Fabric;
use crate::pool::ConnectionPool;
use crate::qp::{Endpoint, QueuePair};

/// Private message describing a pending connection request.
pub(crate) struct ConnectRequest {
    client_qp: QueuePair,
    client_time: SimTime,
    /// Whether the client redeemed a pool warmth token for this remote: both
    /// sides then charge the (much cheaper) warm re-establishment tier.
    warm: bool,
    reply: Sender<()>,
}

/// Cloneable handle stored in the fabric's listener table.
#[derive(Clone)]
pub(crate) struct ListenerHandle {
    tx: Sender<ConnectRequest>,
    token: u64,
}

impl std::fmt::Debug for ListenerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListenerHandle")
            .field("token", &self.token)
            .finish()
    }
}

/// A listening endpoint accepting RDMA connection requests.
pub struct Listener {
    fabric: Arc<Fabric>,
    address: String,
    rx: Receiver<ConnectRequest>,
    token: u64,
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Listener")
            .field("address", &self.address)
            .finish()
    }
}

impl Listener {
    /// Bind a listener at `address`. Rebinding an address replaces the
    /// previous listener, like restarting a daemon on the same port.
    pub fn bind(fabric: &Arc<Fabric>, address: &str) -> Listener {
        let (tx, rx) = unbounded();
        let token = Fabric::next_listener_token();
        fabric.register_listener(address, ListenerHandle { tx, token });
        Listener {
            fabric: Arc::clone(fabric),
            address: address.to_string(),
            rx,
            token,
        }
    }

    /// The address this listener is bound to.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Accept the next pending connection, blocking until one arrives.
    ///
    /// `endpoint` describes the accepting actor (its node, clock, protection
    /// domain and device function); the returned queue pair is connected to
    /// the requesting client.
    pub fn accept(&self, endpoint: &Endpoint) -> Result<QueuePair> {
        let request = self.rx.recv().map_err(|_| FabricError::ConnectionLost)?;
        self.finish_accept(endpoint, request)
    }

    /// Accept with a wall-clock timeout, returning `Ok(None)` on timeout.
    pub fn accept_timeout(
        &self,
        endpoint: &Endpoint,
        timeout: Duration,
    ) -> Result<Option<QueuePair>> {
        match self.rx.recv_timeout(timeout) {
            Ok(request) => self.finish_accept(endpoint, request).map(Some),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(FabricError::ConnectionLost)
            }
        }
    }

    /// Non-blocking accept: returns `Ok(None)` when no request is pending.
    pub fn try_accept(&self, endpoint: &Endpoint) -> Result<Option<QueuePair>> {
        match self.rx.try_recv() {
            Ok(request) => self.finish_accept(endpoint, request).map(Some),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(FabricError::ConnectionLost),
        }
    }

    /// Number of connection requests waiting to be accepted.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    fn finish_accept(&self, endpoint: &Endpoint, request: ConnectRequest) -> Result<QueuePair> {
        let profile = self.fabric.profile().clone();
        let server_qp = QueuePair::new(endpoint);
        QueuePair::connect_pair(&request.client_qp, &server_qp)?;
        // The server observes the request one propagation delay after the
        // client issued it and spends half the handshake processing it; a
        // warm re-establishment only pays the cheap tier.
        let setup = if request.warm {
            profile.warm_connection_setup
        } else {
            profile.connection_setup
        };
        endpoint
            .clock
            .advance_to_then(request.client_time + profile.one_way_latency, setup / 2);
        // Wake the connecting client; it may have given up (dropped receiver).
        let _ = request.reply.send(());
        Ok(server_qp)
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        // Only unregister if the table still points at this listener (it may
        // have been replaced by a rebind).
        if let Some(handle) = self.fabric.listener(&self.address) {
            if handle.token == self.token {
                self.fabric.unregister_listener(&self.address);
            }
        }
    }
}

/// Connect to a listener bound at `address`, blocking until the server
/// accepts. The returned queue pair is connected and ready for verbs.
pub fn connect(endpoint: &Endpoint, address: &str) -> Result<QueuePair> {
    connect_with_timeout(endpoint, address, Duration::from_secs(30))
}

/// Connect with an explicit wall-clock timeout (bounds test execution time).
pub fn connect_with_timeout(
    endpoint: &Endpoint,
    address: &str,
    timeout: Duration,
) -> Result<QueuePair> {
    connect_inner(endpoint, address, timeout, false)
}

/// Connect through a [`ConnectionPool`]: when the pool holds a warmth token
/// for `key` (usually the remote node's name), both sides charge only the
/// warm re-establishment tier of the NIC profile instead of the full RC
/// handshake. Returns the connected queue pair and whether it was warm.
///
/// The token is consumed either way — a failed warm connect loses it, the
/// safe direction (the next attempt pays full price).
pub fn connect_pooled(
    endpoint: &Endpoint,
    address: &str,
    pool: &ConnectionPool,
    key: &str,
    timeout: Duration,
) -> Result<(QueuePair, bool)> {
    let warm = pool.lease(key);
    let qp = connect_inner(endpoint, address, timeout, warm)?;
    Ok((qp, warm))
}

fn connect_inner(
    endpoint: &Endpoint,
    address: &str,
    timeout: Duration,
    warm: bool,
) -> Result<QueuePair> {
    let handle = endpoint
        .fabric
        .listener(address)
        .ok_or_else(|| FabricError::UnknownAddress(address.to_string()))?;
    let profile = endpoint.fabric.profile().clone();
    let client_qp = QueuePair::new(endpoint);
    let (reply_tx, reply_rx) = bounded(1);
    let request = ConnectRequest {
        client_qp: client_qp.clone(),
        client_time: endpoint.clock.now(),
        warm,
        reply: reply_tx,
    };
    handle
        .tx
        .send(request)
        .map_err(|_| FabricError::UnknownAddress(address.to_string()))?;
    match reply_rx.recv_timeout(timeout) {
        Ok(()) => {}
        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
            return Err(FabricError::Timeout {
                operation: "connect",
            })
        }
        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
            return Err(FabricError::ConnectionLost)
        }
    }
    // The client pays the connection-establishment latency of its tier.
    endpoint.clock.advance(if warm {
        profile.warm_connection_setup
    } else {
        profile.connection_setup
    });
    Ok(client_qp)
}

/// A message delivered through a [`DatagramSocket`].
#[derive(Debug, Clone)]
pub struct DatagramMessage {
    /// Address of the sending socket (reply-to).
    pub from: String,
    /// Message payload.
    pub payload: Vec<u8>,
    /// Fabric-model instant the last byte arrived.
    pub arrived_at: SimTime,
}

/// Cloneable handle stored in the fabric's datagram table.
#[derive(Clone)]
pub(crate) struct DatagramHandle {
    tx: Sender<DatagramMessage>,
    node: Arc<crate::fabric::FabricNode>,
    token: u64,
}

impl std::fmt::Debug for DatagramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatagramHandle")
            .field("node", &self.node.name())
            .field("token", &self.token)
            .finish()
    }
}

/// A UD/DC-style unreliable-datagram endpoint: per-message addressing, no
/// per-peer connection state, and a setup cost (`datagram_setup`) an order
/// of magnitude below the RC handshake. rFaaS-style control planes use this
/// for first contact — allocation requests and replies — and reserve RC
/// connections for the leased data path.
pub struct DatagramSocket {
    fabric: Arc<Fabric>,
    node: Arc<crate::fabric::FabricNode>,
    clock: Arc<sim_core::VirtualClock>,
    address: String,
    rx: Receiver<DatagramMessage>,
    token: u64,
}

impl std::fmt::Debug for DatagramSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatagramSocket")
            .field("address", &self.address)
            .finish()
    }
}

impl DatagramSocket {
    /// Bind a datagram socket at `address`, charging the (cheap) datagram
    /// endpoint setup on the endpoint's clock. Rebinding an address replaces
    /// the previous socket.
    pub fn bind(endpoint: &Endpoint, address: &str) -> DatagramSocket {
        let (tx, rx) = unbounded();
        let token = Fabric::next_listener_token();
        endpoint.fabric.register_datagram(
            address,
            DatagramHandle {
                tx,
                node: Arc::clone(&endpoint.node),
                token,
            },
        );
        endpoint
            .clock
            .advance(endpoint.fabric.profile().datagram_setup);
        DatagramSocket {
            fabric: Arc::clone(&endpoint.fabric),
            node: Arc::clone(&endpoint.node),
            clock: Arc::clone(&endpoint.clock),
            address: address.to_string(),
            rx,
            token,
        }
    }

    /// The address this socket is bound to.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Send `payload` to the socket bound at `dst`. No connection is
    /// involved: the sender pays the usual issue cost, the fabric model
    /// times the transfer, and the message queues at the destination.
    /// Returns the arrival instant.
    pub fn send_to(&self, dst: &str, payload: &[u8]) -> Result<SimTime> {
        let handle = self
            .fabric
            .datagram(dst)
            .ok_or_else(|| FabricError::UnknownAddress(dst.to_string()))?;
        let ready = self
            .clock
            .advance(self.fabric.profile().issue_cost(payload.len()));
        let timing = self
            .fabric
            .transfer(&self.node, &handle.node, payload.len(), ready);
        handle
            .tx
            .send(DatagramMessage {
                from: self.address.clone(),
                payload: payload.to_vec(),
                arrived_at: timing.arrive,
            })
            .map_err(|_| FabricError::UnknownAddress(dst.to_string()))?;
        Ok(timing.arrive)
    }

    /// Receive the next message, blocking up to the wall-clock `timeout`.
    /// The receiver's clock advances to the message's arrival and pays the
    /// completion pickup cost.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<DatagramMessage> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => {
                self.observe(&msg);
                Ok(msg)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(FabricError::Timeout {
                operation: "datagram receive",
            }),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(FabricError::ConnectionLost)
            }
        }
    }

    /// Non-blocking receive: `None` when no message is queued.
    pub fn try_recv(&self) -> Option<DatagramMessage> {
        let msg = self.rx.try_recv().ok()?;
        self.observe(&msg);
        Some(msg)
    }

    /// Number of messages waiting to be received.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    fn observe(&self, msg: &DatagramMessage) {
        self.clock
            .advance_to_then(msg.arrived_at, self.fabric.profile().completion_pickup);
    }
}

impl Drop for DatagramSocket {
    fn drop(&mut self) {
        if let Some(handle) = self.fabric.datagram(&self.address) {
            if handle.token == self.token {
                self.fabric.unregister_datagram(&self.address);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccessFlags;
    use crate::verbs::{RecvRequest, SendRequest, Sge};
    use std::thread;

    #[test]
    fn connect_and_accept_produce_linked_qps() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:9000");
        let server_ep = Endpoint::new(&fabric, &server_node);

        let fabric2 = Arc::clone(&fabric);
        let client_thread = thread::spawn(move || {
            let client_ep = Endpoint::new(&fabric2, &client_node);
            connect(&client_ep, "server:9000").unwrap()
        });
        let server_qp = listener.accept(&server_ep).unwrap();
        let client_qp = client_thread.join().unwrap();
        assert!(client_qp.is_connected());
        assert!(server_qp.is_connected());

        // Data flows across the established connection.
        let msg = client_qp
            .pd()
            .register_from(b"ping".to_vec(), AccessFlags::LOCAL_ONLY);
        let buf = server_qp.pd().register(8, AccessFlags::LOCAL_ONLY);
        server_qp
            .post_recv(RecvRequest {
                wr_id: 1,
                local: Sge::whole(&buf),
            })
            .unwrap();
        client_qp
            .post_send(
                1,
                SendRequest::Send {
                    local: Sge::whole(&msg),
                },
                false,
            )
            .unwrap();
        let wc = server_qp.recv_cq().poll_one().unwrap();
        assert_eq!(wc.byte_len, 4);
        assert_eq!(&buf.read(0, 4).unwrap(), b"ping");
    }

    #[test]
    fn connect_to_unknown_address_fails() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("n");
        let ep = Endpoint::new(&fabric, &node);
        let err = connect(&ep, "nowhere:1").unwrap_err();
        assert!(matches!(err, FabricError::UnknownAddress(_)));
    }

    #[test]
    fn connection_charges_setup_latency_on_client() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:1");
        let server_ep = Endpoint::new(&fabric, &server_node);
        let fabric2 = Arc::clone(&fabric);
        let t = thread::spawn(move || {
            let ep = Endpoint::new(&fabric2, &client_node);
            let qp = connect(&ep, "server:1").unwrap();
            qp.clock().now()
        });
        listener.accept(&server_ep).unwrap();
        let client_time = t.join().unwrap();
        let setup = fabric.profile().connection_setup;
        assert!(client_time.as_nanos() >= setup.as_nanos());
    }

    #[test]
    fn try_accept_returns_none_when_idle() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:2");
        let ep = Endpoint::new(&fabric, &node);
        assert!(listener.try_accept(&ep).unwrap().is_none());
        assert_eq!(listener.pending(), 0);
    }

    #[test]
    fn accept_timeout_expires() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:3");
        let ep = Endpoint::new(&fabric, &node);
        let got = listener
            .accept_timeout(&ep, Duration::from_millis(20))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn dropping_listener_unbinds_address() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("n");
        {
            let _listener = Listener::bind(&fabric, "temp:1");
            assert!(fabric.listener("temp:1").is_some());
        }
        assert!(fabric.listener("temp:1").is_none());
        let ep = Endpoint::new(&fabric, &node);
        assert!(connect(&ep, "temp:1").is_err());
    }

    #[test]
    fn rebinding_replaces_listener_without_breaking_drop() {
        let fabric = Fabric::with_defaults();
        let first = Listener::bind(&fabric, "svc:1");
        let second = Listener::bind(&fabric, "svc:1");
        drop(first);
        // The second listener must still be registered.
        assert!(fabric.listener("svc:1").is_some());
        drop(second);
        assert!(fabric.listener("svc:1").is_none());
    }

    #[test]
    fn multiple_clients_queue_on_one_listener() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:4");
        let server_ep = Endpoint::new(&fabric, &server_node);

        let mut clients = Vec::new();
        for i in 0..4 {
            let fabric = Arc::clone(&fabric);
            clients.push(thread::spawn(move || {
                let node = fabric.add_node(&format!("client-{i}"));
                let ep = Endpoint::new(&fabric, &node);
                connect(&ep, "server:4").unwrap()
            }));
        }
        let mut server_qps = Vec::new();
        for _ in 0..4 {
            server_qps.push(listener.accept(&server_ep).unwrap());
        }
        for c in clients {
            assert!(c.join().unwrap().is_connected());
        }
        assert_eq!(server_qps.len(), 4);
    }

    #[test]
    fn try_accept_on_replaced_listener_reports_connection_lost() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("server");
        let ep = Endpoint::new(&fabric, &node);
        let first = Listener::bind(&fabric, "svc:replaced");
        // Rebinding drops the table's clone of the first listener's sender;
        // once no sender remains, its channel reads as disconnected.
        let _second = Listener::bind(&fabric, "svc:replaced");
        assert!(matches!(
            first.try_accept(&ep),
            Err(FabricError::ConnectionLost)
        ));
        assert!(matches!(
            first.accept(&ep),
            Err(FabricError::ConnectionLost)
        ));
    }

    #[test]
    fn connect_times_out_against_unresponsive_listener() {
        let fabric = Fabric::with_defaults();
        let _server = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let _listener = Listener::bind(&fabric, "server:slow");
        let ep = Endpoint::new(&fabric, &client_node);
        // Nobody calls accept: the client must give up with a typed error,
        // not hang or report the address as unknown.
        let err = connect_with_timeout(&ep, "server:slow", Duration::from_millis(20)).unwrap_err();
        assert_eq!(
            err,
            FabricError::Timeout {
                operation: "connect"
            }
        );
    }

    #[test]
    fn accept_survives_client_that_gave_up() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:late");
        let server_ep = Endpoint::new(&fabric, &server_node);

        let client_ep = Endpoint::new(&fabric, &client_node);
        let err = connect_with_timeout(&client_ep, "server:late", Duration::from_millis(5));
        assert!(matches!(err, Err(FabricError::Timeout { .. })));

        // The request is still queued; accepting it must not panic even
        // though the client dropped its reply receiver.
        let qp = listener.accept(&server_ep).unwrap();
        assert!(qp.is_connected());
    }

    #[test]
    fn pooled_connect_charges_warm_tier_on_reuse() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:pooled");
        let server_ep = Endpoint::new(&fabric, &server_node);
        let pool = ConnectionPool::new();

        let fabric2 = Arc::clone(&fabric);
        let pool2 = pool.clone();
        let t = thread::spawn(move || {
            let ep = Endpoint::new(&fabric2, &client_node);
            let before = ep.clock.now();
            let (qp, warm) = connect_pooled(
                &ep,
                "server:pooled",
                &pool2,
                "server",
                Duration::from_secs(5),
            )
            .unwrap();
            let cold_cost = ep.clock.now().saturating_since(before);
            assert!(!warm);
            qp.disconnect();
            pool2.release("server", ep.clock.now());

            let before = ep.clock.now();
            let (qp, warm) = connect_pooled(
                &ep,
                "server:pooled",
                &pool2,
                "server",
                Duration::from_secs(5),
            )
            .unwrap();
            let warm_cost = ep.clock.now().saturating_since(before);
            assert!(warm);
            assert!(qp.is_connected());
            (cold_cost, warm_cost)
        });
        let first = listener.accept(&server_ep).unwrap();
        let server_cold = server_ep.clock.now();
        listener.accept(&server_ep).unwrap();
        let (cold_cost, warm_cost) = t.join().unwrap();
        drop(first);

        // Warm re-establishment is at least 5x cheaper on the client, and the
        // server's half-handshake share shrinks by the same tier change.
        assert!(
            warm_cost.as_nanos() * 5 <= cold_cost.as_nanos(),
            "warm {warm_cost:?} vs cold {cold_cost:?}"
        );
        assert!(server_cold.as_nanos() > 0);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn datagrams_deliver_payload_and_reply_address() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("ctl-a");
        let b = fabric.add_node("ctl-b");
        let ep_a = Endpoint::new(&fabric, &a);
        let ep_b = Endpoint::new(&fabric, &b);
        let sock_a = DatagramSocket::bind(&ep_a, "udp://a");
        let sock_b = DatagramSocket::bind(&ep_b, "udp://b");

        sock_a.send_to("udp://b", b"allocate 4 cores").unwrap();
        let msg = sock_b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.payload, b"allocate 4 cores");
        assert_eq!(msg.from, "udp://a");
        // The receiver's clock caught up to the arrival.
        assert!(ep_b.clock.now() >= msg.arrived_at);

        // Reply through the carried address: no connection state anywhere.
        sock_b.send_to(&msg.from, b"granted").unwrap();
        let reply = sock_a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(reply.payload, b"granted");
    }

    #[test]
    fn datagram_bind_is_cheaper_than_connection_setup() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("ctl");
        let ep = Endpoint::new(&fabric, &node);
        let before = ep.clock.now();
        let _sock = DatagramSocket::bind(&ep, "udp://ctl");
        let bind_cost = ep.clock.now().saturating_since(before);
        assert_eq!(bind_cost, fabric.profile().datagram_setup);
        assert!(bind_cost.as_nanos() * 5 <= fabric.profile().connection_setup.as_nanos());
    }

    #[test]
    fn datagram_recv_times_out_and_unknown_destination_fails() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("ctl");
        let ep = Endpoint::new(&fabric, &node);
        let sock = DatagramSocket::bind(&ep, "udp://lonely");
        assert!(matches!(
            sock.send_to("udp://nobody", b"hello"),
            Err(FabricError::UnknownAddress(_))
        ));
        assert_eq!(
            sock.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            FabricError::Timeout {
                operation: "datagram receive"
            }
        );
        assert!(sock.try_recv().is_none());
        assert_eq!(sock.pending(), 0);
    }

    #[test]
    fn dropping_datagram_socket_unbinds_address() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("ctl");
        let ep = Endpoint::new(&fabric, &node);
        {
            let _sock = DatagramSocket::bind(&ep, "udp://temp");
            assert!(fabric.datagram("udp://temp").is_some());
        }
        assert!(fabric.datagram("udp://temp").is_none());
        // Rebinding replaces; dropping the stale socket keeps the new one.
        let first = DatagramSocket::bind(&ep, "udp://re");
        let second = DatagramSocket::bind(&ep, "udp://re");
        drop(first);
        assert!(fabric.datagram("udp://re").is_some());
        drop(second);
        assert!(fabric.datagram("udp://re").is_none());
    }
}
