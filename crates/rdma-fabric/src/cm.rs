//! Connection management, the `rdma_cm` analogue.
//!
//! Servers bind a [`Listener`] at a string address ("host:service"); clients
//! call [`connect`] with an [`Endpoint`] describing where they run. The
//! handshake produces a connected [`QueuePair`] on both sides and charges the
//! reliable-connection establishment cost from the NIC profile — the cost
//! rFaaS clients amortise by caching connections inside leases (Sec. III-B).

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use sim_core::SimTime;

use crate::error::{FabricError, Result};
use crate::fabric::Fabric;
use crate::qp::{Endpoint, QueuePair};

/// Private message describing a pending connection request.
pub(crate) struct ConnectRequest {
    client_qp: QueuePair,
    client_time: SimTime,
    reply: Sender<()>,
}

/// Cloneable handle stored in the fabric's listener table.
#[derive(Clone)]
pub(crate) struct ListenerHandle {
    tx: Sender<ConnectRequest>,
    token: u64,
}

impl std::fmt::Debug for ListenerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListenerHandle")
            .field("token", &self.token)
            .finish()
    }
}

/// A listening endpoint accepting RDMA connection requests.
pub struct Listener {
    fabric: Arc<Fabric>,
    address: String,
    rx: Receiver<ConnectRequest>,
    token: u64,
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Listener")
            .field("address", &self.address)
            .finish()
    }
}

impl Listener {
    /// Bind a listener at `address`. Rebinding an address replaces the
    /// previous listener, like restarting a daemon on the same port.
    pub fn bind(fabric: &Arc<Fabric>, address: &str) -> Listener {
        let (tx, rx) = unbounded();
        let token = Fabric::next_listener_token();
        fabric.register_listener(address, ListenerHandle { tx, token });
        Listener {
            fabric: Arc::clone(fabric),
            address: address.to_string(),
            rx,
            token,
        }
    }

    /// The address this listener is bound to.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// Accept the next pending connection, blocking until one arrives.
    ///
    /// `endpoint` describes the accepting actor (its node, clock, protection
    /// domain and device function); the returned queue pair is connected to
    /// the requesting client.
    pub fn accept(&self, endpoint: &Endpoint) -> Result<QueuePair> {
        let request = self.rx.recv().map_err(|_| FabricError::ConnectionLost)?;
        self.finish_accept(endpoint, request)
    }

    /// Accept with a wall-clock timeout, returning `Ok(None)` on timeout.
    pub fn accept_timeout(
        &self,
        endpoint: &Endpoint,
        timeout: Duration,
    ) -> Result<Option<QueuePair>> {
        match self.rx.recv_timeout(timeout) {
            Ok(request) => self.finish_accept(endpoint, request).map(Some),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                Err(FabricError::ConnectionLost)
            }
        }
    }

    /// Non-blocking accept: returns `Ok(None)` when no request is pending.
    pub fn try_accept(&self, endpoint: &Endpoint) -> Result<Option<QueuePair>> {
        match self.rx.try_recv() {
            Ok(request) => self.finish_accept(endpoint, request).map(Some),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(FabricError::ConnectionLost),
        }
    }

    /// Number of connection requests waiting to be accepted.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    fn finish_accept(&self, endpoint: &Endpoint, request: ConnectRequest) -> Result<QueuePair> {
        let profile = self.fabric.profile().clone();
        let server_qp = QueuePair::new(endpoint);
        QueuePair::connect_pair(&request.client_qp, &server_qp)?;
        // The server observes the request one propagation delay after the
        // client issued it and spends half the handshake processing it.
        endpoint.clock.advance_to_then(
            request.client_time + profile.one_way_latency,
            profile.connection_setup / 2,
        );
        // Wake the connecting client; it may have given up (dropped receiver).
        let _ = request.reply.send(());
        Ok(server_qp)
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        // Only unregister if the table still points at this listener (it may
        // have been replaced by a rebind).
        if let Some(handle) = self.fabric.listener(&self.address) {
            if handle.token == self.token {
                self.fabric.unregister_listener(&self.address);
            }
        }
    }
}

/// Connect to a listener bound at `address`, blocking until the server
/// accepts. The returned queue pair is connected and ready for verbs.
pub fn connect(endpoint: &Endpoint, address: &str) -> Result<QueuePair> {
    connect_with_timeout(endpoint, address, Duration::from_secs(30))
}

/// Connect with an explicit wall-clock timeout (bounds test execution time).
pub fn connect_with_timeout(
    endpoint: &Endpoint,
    address: &str,
    timeout: Duration,
) -> Result<QueuePair> {
    let handle = endpoint
        .fabric
        .listener(address)
        .ok_or_else(|| FabricError::UnknownAddress(address.to_string()))?;
    let profile = endpoint.fabric.profile().clone();
    let client_qp = QueuePair::new(endpoint);
    let (reply_tx, reply_rx) = bounded(1);
    let request = ConnectRequest {
        client_qp: client_qp.clone(),
        client_time: endpoint.clock.now(),
        reply: reply_tx,
    };
    handle
        .tx
        .send(request)
        .map_err(|_| FabricError::UnknownAddress(address.to_string()))?;
    reply_rx
        .recv_timeout(timeout)
        .map_err(|_| FabricError::ConnectionLost)?;
    // The client pays the full connection-establishment latency.
    endpoint.clock.advance(profile.connection_setup);
    Ok(client_qp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccessFlags;
    use crate::verbs::{RecvRequest, SendRequest, Sge};
    use std::thread;

    #[test]
    fn connect_and_accept_produce_linked_qps() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:9000");
        let server_ep = Endpoint::new(&fabric, &server_node);

        let fabric2 = Arc::clone(&fabric);
        let client_thread = thread::spawn(move || {
            let client_ep = Endpoint::new(&fabric2, &client_node);
            connect(&client_ep, "server:9000").unwrap()
        });
        let server_qp = listener.accept(&server_ep).unwrap();
        let client_qp = client_thread.join().unwrap();
        assert!(client_qp.is_connected());
        assert!(server_qp.is_connected());

        // Data flows across the established connection.
        let msg = client_qp
            .pd()
            .register_from(b"ping".to_vec(), AccessFlags::LOCAL_ONLY);
        let buf = server_qp.pd().register(8, AccessFlags::LOCAL_ONLY);
        server_qp
            .post_recv(RecvRequest {
                wr_id: 1,
                local: Sge::whole(&buf),
            })
            .unwrap();
        client_qp
            .post_send(
                1,
                SendRequest::Send {
                    local: Sge::whole(&msg),
                },
                false,
            )
            .unwrap();
        let wc = server_qp.recv_cq().poll_one().unwrap();
        assert_eq!(wc.byte_len, 4);
        assert_eq!(&buf.read(0, 4).unwrap(), b"ping");
    }

    #[test]
    fn connect_to_unknown_address_fails() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("n");
        let ep = Endpoint::new(&fabric, &node);
        let err = connect(&ep, "nowhere:1").unwrap_err();
        assert!(matches!(err, FabricError::UnknownAddress(_)));
    }

    #[test]
    fn connection_charges_setup_latency_on_client() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let client_node = fabric.add_node("client");
        let listener = Listener::bind(&fabric, "server:1");
        let server_ep = Endpoint::new(&fabric, &server_node);
        let fabric2 = Arc::clone(&fabric);
        let t = thread::spawn(move || {
            let ep = Endpoint::new(&fabric2, &client_node);
            let qp = connect(&ep, "server:1").unwrap();
            qp.clock().now()
        });
        listener.accept(&server_ep).unwrap();
        let client_time = t.join().unwrap();
        let setup = fabric.profile().connection_setup;
        assert!(client_time.as_nanos() >= setup.as_nanos());
    }

    #[test]
    fn try_accept_returns_none_when_idle() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:2");
        let ep = Endpoint::new(&fabric, &node);
        assert!(listener.try_accept(&ep).unwrap().is_none());
        assert_eq!(listener.pending(), 0);
    }

    #[test]
    fn accept_timeout_expires() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:3");
        let ep = Endpoint::new(&fabric, &node);
        let got = listener
            .accept_timeout(&ep, Duration::from_millis(20))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn dropping_listener_unbinds_address() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("n");
        {
            let _listener = Listener::bind(&fabric, "temp:1");
            assert!(fabric.listener("temp:1").is_some());
        }
        assert!(fabric.listener("temp:1").is_none());
        let ep = Endpoint::new(&fabric, &node);
        assert!(connect(&ep, "temp:1").is_err());
    }

    #[test]
    fn rebinding_replaces_listener_without_breaking_drop() {
        let fabric = Fabric::with_defaults();
        let first = Listener::bind(&fabric, "svc:1");
        let second = Listener::bind(&fabric, "svc:1");
        drop(first);
        // The second listener must still be registered.
        assert!(fabric.listener("svc:1").is_some());
        drop(second);
        assert!(fabric.listener("svc:1").is_none());
    }

    #[test]
    fn multiple_clients_queue_on_one_listener() {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let listener = Listener::bind(&fabric, "server:4");
        let server_ep = Endpoint::new(&fabric, &server_node);

        let mut clients = Vec::new();
        for i in 0..4 {
            let fabric = Arc::clone(&fabric);
            clients.push(thread::spawn(move || {
                let node = fabric.add_node(&format!("client-{i}"));
                let ep = Endpoint::new(&fabric, &node);
                connect(&ep, "server:4").unwrap()
            }));
        }
        let mut server_qps = Vec::new();
        for _ in 0..4 {
            server_qps.push(listener.accept(&server_ep).unwrap());
        }
        for c in clients {
            assert!(c.join().unwrap().is_connected());
        }
        assert_eq!(server_qps.len(), 4);
    }
}
