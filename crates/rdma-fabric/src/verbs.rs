//! Work requests, scatter/gather entries and work completions.
//!
//! The types mirror the subset of the ibverbs API that rFaaS relies on:
//! `IBV_WR_SEND`, `IBV_WR_RDMA_WRITE`, `IBV_WR_RDMA_WRITE_WITH_IMM`,
//! `IBV_WR_RDMA_READ` and the two atomics, plus receive work requests and
//! their completions.

use sim_core::SimTime;

use crate::memory::{MemoryRegion, RemoteMemoryHandle};

/// Operation code of a work request / completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Two-sided send; consumes a posted receive at the remote.
    Send,
    /// One-sided write into remote memory; invisible to the remote CPU.
    Write,
    /// One-sided write that also consumes a posted receive and delivers a
    /// 32-bit immediate value to the remote completion queue.
    WriteWithImm,
    /// One-sided read from remote memory.
    Read,
    /// Remote atomic fetch-and-add on an 8-byte word.
    AtomicFetchAdd,
    /// Remote atomic compare-and-swap on an 8-byte word.
    AtomicCompareSwap,
    /// Completion of a posted receive.
    Recv,
}

impl OpCode {
    /// Whether the operation requires a posted receive at the destination.
    pub fn consumes_receive(self) -> bool {
        matches!(self, OpCode::Send | OpCode::WriteWithImm)
    }

    /// Whether the operation carries payload from initiator to target.
    pub fn moves_data_forward(self) -> bool {
        matches!(self, OpCode::Send | OpCode::Write | OpCode::WriteWithImm)
    }

    /// Whether the operation must wait for a round trip before the initiator
    /// sees its completion (reads and atomics return data).
    pub fn is_round_trip(self) -> bool {
        matches!(
            self,
            OpCode::Read | OpCode::AtomicFetchAdd | OpCode::AtomicCompareSwap
        )
    }
}

/// A local scatter/gather entry: a range of a registered memory region.
#[derive(Debug, Clone)]
pub struct Sge {
    /// The registered region the data lives in.
    pub region: MemoryRegion,
    /// Byte offset into the region.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Sge {
    /// A scatter/gather entry covering an entire region.
    pub fn whole(region: &MemoryRegion) -> Sge {
        Sge {
            offset: 0,
            len: region.len(),
            region: region.clone(),
        }
    }

    /// A scatter/gather entry covering `[offset, offset + len)` of `region`.
    pub fn range(region: &MemoryRegion, offset: usize, len: usize) -> Sge {
        Sge {
            region: region.clone(),
            offset,
            len,
        }
    }
}

/// Payload-less description of what to do when posting to a send queue.
#[derive(Debug, Clone)]
pub enum SendRequest {
    /// Two-sided send of the local SGE.
    Send {
        /// Data to transmit.
        local: Sge,
    },
    /// One-sided RDMA write.
    Write {
        /// Data to transmit.
        local: Sge,
        /// Destination address/rkey at the remote.
        remote: RemoteMemoryHandle,
    },
    /// One-sided RDMA write with a 32-bit immediate.
    WriteWithImm {
        /// Data to transmit.
        local: Sge,
        /// Destination address/rkey at the remote.
        remote: RemoteMemoryHandle,
        /// Immediate value delivered with the remote completion. rFaaS packs
        /// the invocation identifier and function index in here.
        imm: u32,
    },
    /// One-sided RDMA read into the local SGE.
    Read {
        /// Local destination for the fetched data.
        local: Sge,
        /// Remote source.
        remote: RemoteMemoryHandle,
    },
    /// Remote atomic fetch-and-add; the original value is written into the
    /// 8-byte local SGE.
    AtomicFetchAdd {
        /// Local 8-byte destination for the original value.
        local: Sge,
        /// Remote 8-byte target word.
        remote: RemoteMemoryHandle,
        /// Addend.
        add: u64,
    },
    /// Remote atomic compare-and-swap; the original value is written into the
    /// 8-byte local SGE.
    AtomicCompareSwap {
        /// Local 8-byte destination for the original value.
        local: Sge,
        /// Remote 8-byte target word.
        remote: RemoteMemoryHandle,
        /// Expected value.
        compare: u64,
        /// Replacement value.
        swap: u64,
    },
}

impl SendRequest {
    /// The opcode this request maps to.
    pub fn opcode(&self) -> OpCode {
        match self {
            SendRequest::Send { .. } => OpCode::Send,
            SendRequest::Write { .. } => OpCode::Write,
            SendRequest::WriteWithImm { .. } => OpCode::WriteWithImm,
            SendRequest::Read { .. } => OpCode::Read,
            SendRequest::AtomicFetchAdd { .. } => OpCode::AtomicFetchAdd,
            SendRequest::AtomicCompareSwap { .. } => OpCode::AtomicCompareSwap,
        }
    }

    /// Number of payload bytes moved over the wire by this request.
    pub fn wire_len(&self) -> usize {
        match self {
            SendRequest::Send { local }
            | SendRequest::Write { local, .. }
            | SendRequest::WriteWithImm { local, .. }
            | SendRequest::Read { local, .. } => local.len,
            SendRequest::AtomicFetchAdd { .. } | SendRequest::AtomicCompareSwap { .. } => 8,
        }
    }

    /// The local scatter/gather entry of the request.
    pub fn local(&self) -> &Sge {
        match self {
            SendRequest::Send { local }
            | SendRequest::Write { local, .. }
            | SendRequest::WriteWithImm { local, .. }
            | SendRequest::Read { local, .. }
            | SendRequest::AtomicFetchAdd { local, .. }
            | SendRequest::AtomicCompareSwap { local, .. } => local,
        }
    }
}

/// A receive work request: a buffer waiting for an incoming SEND or
/// WRITE_WITH_IMM.
#[derive(Debug, Clone)]
pub struct RecvRequest {
    /// User-chosen identifier echoed in the completion.
    pub wr_id: u64,
    /// Buffer the incoming message (for SEND) is placed into.
    pub local: Sge,
}

/// Status of a completed work request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompletionStatus {
    /// The operation completed successfully.
    Success,
    /// The operation failed.
    Error(crate::error::FabricError),
}

impl CompletionStatus {
    /// Whether the completion is successful.
    pub fn is_success(&self) -> bool {
        matches!(self, CompletionStatus::Success)
    }
}

/// A work completion delivered through a completion queue.
#[derive(Debug, Clone)]
pub struct WorkCompletion {
    /// User-chosen identifier of the completed work request.
    pub wr_id: u64,
    /// Operation that completed.
    pub opcode: OpCode,
    /// Success or failure.
    pub status: CompletionStatus,
    /// Number of payload bytes transferred.
    pub byte_len: usize,
    /// Immediate value, present for WRITE_WITH_IMM receive completions.
    pub imm: Option<u32>,
    /// Virtual time at which the completion became visible to its consumer.
    pub timestamp: SimTime,
    /// Queue pair number the completion belongs to.
    pub qp_num: u32,
}

impl WorkCompletion {
    /// Whether the completion reports success.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_classification() {
        assert!(OpCode::Send.consumes_receive());
        assert!(OpCode::WriteWithImm.consumes_receive());
        assert!(!OpCode::Write.consumes_receive());
        assert!(OpCode::Write.moves_data_forward());
        assert!(!OpCode::Read.moves_data_forward());
        assert!(OpCode::Read.is_round_trip());
        assert!(OpCode::AtomicFetchAdd.is_round_trip());
        assert!(!OpCode::Send.is_round_trip());
    }

    #[test]
    fn completion_status() {
        assert!(CompletionStatus::Success.is_success());
        assert!(!CompletionStatus::Error(crate::error::FabricError::NotConnected).is_success());
    }
}
