//! A software RDMA fabric with a calibrated performance model.
//!
//! This crate replaces the ibverbs/RoCEv2 stack the rFaaS paper runs on. It
//! reproduces the *semantics* rFaaS depends on — protection domains,
//! registered memory with remote keys, reliable-connected queue pairs,
//! one-sided WRITE / WRITE_WITH_IMM / READ, remote atomics, completion queues
//! with busy-polling and blocking waits, SR-IOV virtual functions — and a
//! virtual-time *performance model* calibrated to the paper's evaluation
//! cluster (3.69 µs RTT, 11 686 MiB/s, 128-byte inline threshold).
//!
//! Data really moves: a WRITE copies bytes into the peer's registered buffer.
//! Time is virtual: completion timestamps come from the link model, and each
//! actor's [`sim_core::VirtualClock`] advances to them when it observes the
//! completion, so measured latencies are deterministic and hardware-free.
//!
//! ```
//! use rdma_fabric::{Fabric, Endpoint, QueuePair, SendRequest, Sge, AccessFlags, RecvRequest};
//!
//! let fabric = Fabric::with_defaults();
//! let a = fabric.add_node("client");
//! let b = fabric.add_node("server");
//! let qa = QueuePair::new(&Endpoint::new(&fabric, &a));
//! let qb = QueuePair::new(&Endpoint::new(&fabric, &b));
//! QueuePair::connect_pair(&qa, &qb).unwrap();
//!
//! let payload = qa.pd().register_from(vec![42u8; 64], AccessFlags::LOCAL_ONLY);
//! let target = qb.pd().register(64, AccessFlags::REMOTE_WRITE);
//! let scratch = qb.pd().register(1, AccessFlags::LOCAL_ONLY);
//! qb.post_recv(RecvRequest { wr_id: 1, local: Sge::whole(&scratch) }).unwrap();
//! qa.post_send(7, SendRequest::WriteWithImm {
//!     local: Sge::whole(&payload),
//!     remote: target.remote_handle(),
//!     imm: 123,
//! }, false).unwrap();
//! let completion = qb.recv_cq().poll_one().unwrap();
//! assert_eq!(completion.imm, Some(123));
//! assert_eq!(target.read_all(), vec![42u8; 64]);
//! ```

pub mod cm;
pub mod cq;
pub mod device;
pub mod error;
pub mod fabric;
pub mod fork;
pub mod memory;
pub mod pd;
pub mod pool;
pub mod qp;
pub mod ring;
pub mod srq;
pub mod verbs;

pub use cm::{
    connect, connect_pooled, connect_with_timeout, DatagramMessage, DatagramSocket, Listener,
};
pub use cq::{CompletionQueue, CqNotifier, CqSet, WaitMode};
pub use device::{DeviceFunction, NicProfile};
pub use error::{FabricError, Result};
pub use fabric::{Fabric, FabricNode, TransferTiming};
pub use fork::{FaultBatch, PrefetchPlan};
pub use memory::{AccessFlags, MemoryRegion, RemoteMemoryHandle, PAGE_SIZE};
pub use pd::ProtectionDomain;
pub use pool::{ConnectionPool, PoolStats};
pub use qp::{Endpoint, QpState, QueuePair};
pub use ring::{ReceiveRing, RingCompletion, RingState};
pub use srq::{SharedReceiveQueue, SrqStats};
pub use verbs::{CompletionStatus, OpCode, RecvRequest, SendRequest, Sge, WorkCompletion};
