//! Error types for the software RDMA fabric.

use std::fmt;

/// Errors returned by fabric operations.
///
/// The real ibverbs API reports most of these through work-completion status
/// codes (`IBV_WC_*`); we surface them both as `Result` errors on the posting
/// path (for immediately detectable misuse) and as failed completions (for
/// asynchronous failures such as remote access violations).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FabricError {
    /// The queue pair is not in a state that allows the requested operation.
    InvalidQpState {
        /// The operation that was attempted.
        operation: &'static str,
        /// The state the queue pair was in.
        state: &'static str,
    },
    /// A local scatter/gather entry referenced memory outside its region.
    LocalAccessOutOfBounds {
        /// Requested offset within the region.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Actual region length.
        region_len: usize,
    },
    /// The remote key did not resolve to a registered memory region.
    InvalidRemoteKey(u64),
    /// The remote access violated the region's permissions.
    RemoteAccessDenied {
        /// Human-readable description of the required permission.
        required: &'static str,
    },
    /// The remote address range is outside the registered region.
    RemoteAccessOutOfBounds {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Region length.
        region_len: usize,
    },
    /// A receive was required (SEND or WRITE_WITH_IMM) but the remote receive
    /// queue was empty — `IBV_WC_RNR_RETRY_EXC_ERR` in ibverbs terms.
    ReceiverNotReady,
    /// The posted receive buffer is too small for the incoming message.
    ReceiveBufferTooSmall {
        /// Incoming message length.
        message_len: usize,
        /// Posted buffer length.
        buffer_len: usize,
    },
    /// The queue pair is not connected to a peer.
    NotConnected,
    /// The peer endpoint has been destroyed or the connection was torn down.
    ConnectionLost,
    /// No listener is bound at the requested fabric address.
    UnknownAddress(String),
    /// The listener's backlog of pending connections is empty.
    NoPendingConnection,
    /// An atomic operation was attempted on a misaligned or undersized target.
    InvalidAtomicTarget {
        /// Offset of the attempted atomic access.
        offset: usize,
    },
    /// The work-request opcode is not supported on this queue-pair type.
    UnsupportedOperation(&'static str),
    /// An inline post carried more bytes than the device can place in a WQE.
    InlineTooLarge {
        /// Requested inline payload length.
        len: usize,
        /// Device inline capacity (`max_inline_data`).
        max: usize,
    },
    /// Exceeded a device limit (queue depth, number of QPs, inline size, ...).
    DeviceLimitExceeded {
        /// Which limit was exceeded.
        limit: &'static str,
    },
    /// A blocking control-plane operation (connect, datagram receive) ran
    /// past its wall-clock deadline without the peer answering.
    Timeout {
        /// The operation that timed out.
        operation: &'static str,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidQpState { operation, state } => {
                write!(f, "cannot {operation} while queue pair is in state {state}")
            }
            FabricError::LocalAccessOutOfBounds { offset, len, region_len } => write!(
                f,
                "local access [{offset}, {}) exceeds region of {region_len} bytes",
                offset + len
            ),
            FabricError::InvalidRemoteKey(rkey) => write!(f, "unknown remote key {rkey:#x}"),
            FabricError::RemoteAccessDenied { required } => {
                write!(f, "remote access denied: region lacks {required} permission")
            }
            FabricError::RemoteAccessOutOfBounds { offset, len, region_len } => write!(
                f,
                "remote access [{offset}, {}) exceeds region of {region_len} bytes",
                offset + len
            ),
            FabricError::ReceiverNotReady => write!(f, "receiver not ready: no posted receive"),
            FabricError::ReceiveBufferTooSmall { message_len, buffer_len } => write!(
                f,
                "posted receive buffer ({buffer_len} B) smaller than incoming message ({message_len} B)"
            ),
            FabricError::NotConnected => write!(f, "queue pair is not connected"),
            FabricError::ConnectionLost => write!(f, "connection to peer was lost"),
            FabricError::UnknownAddress(addr) => write!(f, "no listener bound at '{addr}'"),
            FabricError::NoPendingConnection => write!(f, "no pending connection to accept"),
            FabricError::InvalidAtomicTarget { offset } => {
                write!(f, "atomic target at offset {offset} is not an aligned 8-byte word")
            }
            FabricError::UnsupportedOperation(op) => write!(f, "unsupported operation: {op}"),
            FabricError::InlineTooLarge { len, max } => write!(
                f,
                "inline payload of {len} B exceeds the device inline capacity of {max} B"
            ),
            FabricError::DeviceLimitExceeded { limit } => write!(f, "device limit exceeded: {limit}"),
            FabricError::Timeout { operation } => {
                write!(f, "{operation} timed out waiting for the peer")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Convenience alias used throughout the fabric crate.
pub type Result<T> = std::result::Result<T, FabricError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FabricError::LocalAccessOutOfBounds {
            offset: 8,
            len: 16,
            region_len: 12,
        };
        assert!(e.to_string().contains("exceeds region"));
        let e = FabricError::InvalidRemoteKey(0xdead);
        assert!(e.to_string().contains("dead"));
        let e = FabricError::ReceiverNotReady;
        assert!(e.to_string().contains("no posted receive"));
        let e = FabricError::UnknownAddress("manager:0".into());
        assert!(e.to_string().contains("manager:0"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FabricError::NotConnected, FabricError::NotConnected);
        assert_ne!(FabricError::NotConnected, FabricError::ConnectionLost);
    }
}
