//! The fabric: nodes, links and transfer timing.
//!
//! A [`Fabric`] models one RDMA network: a set of nodes (machines with one
//! NIC port each) connected through a non-blocking switch. Each node tracks
//! when its egress and ingress directions become free, which is what produces
//! bandwidth saturation when many parallel invocations move large payloads
//! (Fig. 10), and a shared notification channel that serialises blocking
//! completion events (the warm-invocation contention in the same figure).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sim_core::{SimDuration, SimTime};

use crate::device::NicProfile;

/// Timing of one data transfer computed by the link model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferTiming {
    /// When the initiator NIC finished serialising the message (send side).
    pub depart: SimTime,
    /// When the last byte arrived at the destination (receive side).
    pub arrive: SimTime,
}

#[derive(Debug, Default)]
struct PortState {
    egress_busy_until: SimTime,
    ingress_busy_until: SimTime,
    notification_busy_until: SimTime,
}

/// One machine attached to the fabric.
#[derive(Debug)]
pub struct FabricNode {
    name: String,
    state: Mutex<PortState>,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
}

impl FabricNode {
    fn new(name: String) -> FabricNode {
        FabricNode {
            name,
            state: Mutex::new(PortState::default()),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
        }
    }

    /// Node name (host name in the cluster).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total bytes sent by this node (traffic accounting).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes received by this node.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total messages sent by this node.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Reserve the egress direction for `duration` starting no earlier than
    /// `ready`. Returns the instant the reservation ends.
    fn reserve_egress(&self, ready: SimTime, duration: SimDuration) -> SimTime {
        let mut state = self.state.lock();
        let start = ready.max(state.egress_busy_until);
        let end = start + duration;
        state.egress_busy_until = end;
        end
    }

    /// Reserve the ingress direction so that a message whose last byte would
    /// arrive at `uncontended_arrival` (taking `duration` to stream in) is
    /// delayed behind any earlier arrivals. Returns the contended arrival.
    fn reserve_ingress(&self, uncontended_arrival: SimTime, duration: SimDuration) -> SimTime {
        let mut state = self.state.lock();
        let arrival = uncontended_arrival.max(state.ingress_busy_until + duration);
        state.ingress_busy_until = arrival;
        arrival
    }

    /// Serialise one blocking-notification event through the node's shared
    /// event channel: the event becomes visible `dispatch` after the channel
    /// frees up. Returns the visibility instant.
    pub(crate) fn serialize_notification(&self, event: SimTime, dispatch: SimDuration) -> SimTime {
        let mut state = self.state.lock();
        let start = event.max(state.notification_busy_until);
        let visible = start + dispatch;
        state.notification_busy_until = visible;
        visible
    }

    /// Reset contention state (used between benchmark repetitions).
    pub fn reset_contention(&self) {
        let mut state = self.state.lock();
        *state = PortState::default();
    }
}

static NEXT_LISTENER_TOKEN: AtomicU64 = AtomicU64::new(1);

/// An RDMA network connecting a set of nodes through a non-blocking switch.
#[derive(Debug)]
pub struct Fabric {
    profile: NicProfile,
    nodes: Mutex<BTreeMap<String, Arc<FabricNode>>>,
    listeners: Mutex<BTreeMap<String, crate::cm::ListenerHandle>>,
    datagrams: Mutex<BTreeMap<String, crate::cm::DatagramHandle>>,
}

impl Fabric {
    /// Create a fabric whose links follow `profile`.
    pub fn new(profile: NicProfile) -> Arc<Fabric> {
        Arc::new(Fabric {
            profile,
            nodes: Mutex::new(BTreeMap::new()),
            listeners: Mutex::new(BTreeMap::new()),
            datagrams: Mutex::new(BTreeMap::new()),
        })
    }

    /// Create a fabric with the default (paper-calibrated) profile.
    pub fn with_defaults() -> Arc<Fabric> {
        Fabric::new(NicProfile::default())
    }

    /// The NIC/link profile of this fabric.
    pub fn profile(&self) -> &NicProfile {
        &self.profile
    }

    /// Add (or look up) a node by name.
    pub fn add_node(&self, name: &str) -> Arc<FabricNode> {
        let mut nodes = self.nodes.lock();
        Arc::clone(
            nodes
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(FabricNode::new(name.to_string()))),
        )
    }

    /// Look up an existing node.
    pub fn node(&self, name: &str) -> Option<Arc<FabricNode>> {
        self.nodes.lock().get(name).cloned()
    }

    /// Number of nodes attached to the fabric.
    pub fn node_count(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Compute the timing of a transfer of `bytes` from `src` to `dst`,
    /// issued when the initiator was ready at `ready`, and account the
    /// occupancy on both ports. Loopback transfers (same node) skip the wire.
    pub fn transfer(
        &self,
        src: &FabricNode,
        dst: &FabricNode,
        bytes: usize,
        ready: SimTime,
    ) -> TransferTiming {
        src.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        src.messages_sent.fetch_add(1, Ordering::Relaxed);
        dst.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);

        if std::ptr::eq(src, dst) {
            // Intra-node transfer: loopback through the NIC, no wire latency,
            // but still bounded by PCIe/NIC bandwidth.
            let duration = self.profile.serialization(bytes);
            let depart = src.reserve_egress(ready, duration);
            return TransferTiming {
                depart,
                arrive: depart,
            };
        }

        let duration = self.profile.serialization(bytes);
        // Cut-through switching: the last byte leaves the source at `depart`
        // and arrives one propagation delay later, unless the destination
        // ingress is still draining earlier flows.
        let depart = src.reserve_egress(ready, duration);
        let uncontended_arrival = depart + self.profile.one_way_latency;
        let arrive = dst.reserve_ingress(uncontended_arrival, duration);
        TransferTiming { depart, arrive }
    }

    /// Timing for a zero-payload control message from `src` to `dst`.
    pub fn control_message(&self, src: &FabricNode, dst: &FabricNode, ready: SimTime) -> SimTime {
        self.transfer(src, dst, 0, ready).arrive
    }

    pub(crate) fn register_listener(&self, address: &str, handle: crate::cm::ListenerHandle) {
        self.listeners.lock().insert(address.to_string(), handle);
    }

    pub(crate) fn unregister_listener(&self, address: &str) {
        self.listeners.lock().remove(address);
    }

    pub(crate) fn listener(&self, address: &str) -> Option<crate::cm::ListenerHandle> {
        self.listeners.lock().get(address).cloned()
    }

    pub(crate) fn register_datagram(&self, address: &str, handle: crate::cm::DatagramHandle) {
        self.datagrams.lock().insert(address.to_string(), handle);
    }

    pub(crate) fn unregister_datagram(&self, address: &str) {
        self.datagrams.lock().remove(address);
    }

    pub(crate) fn datagram(&self, address: &str) -> Option<crate::cm::DatagramHandle> {
        self.datagrams.lock().get(address).cloned()
    }

    pub(crate) fn next_listener_token() -> u64 {
        NEXT_LISTENER_TOKEN.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_deduplicated_by_name() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("node-1");
        let b = fabric.add_node("node-1");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(fabric.node_count(), 1);
        assert!(fabric.node("node-1").is_some());
        assert!(fabric.node("missing").is_none());
    }

    #[test]
    fn single_transfer_is_latency_plus_serialization() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let bytes = 1024 * 1024;
        let t = fabric.transfer(&a, &b, bytes, SimTime::ZERO);
        let expected_ser = fabric.profile().serialization(bytes);
        assert_eq!(t.depart, SimTime::ZERO + expected_ser);
        assert_eq!(t.arrive, t.depart + fabric.profile().one_way_latency);
    }

    #[test]
    fn egress_contention_serialises_outgoing_flows() {
        // One sender pushing two 1 MiB messages back to back: the second
        // departs only after the first finished serialising.
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let c = fabric.add_node("c");
        let bytes = 1024 * 1024;
        let t1 = fabric.transfer(&a, &b, bytes, SimTime::ZERO);
        let t2 = fabric.transfer(&a, &c, bytes, SimTime::ZERO);
        assert!(t2.depart >= t1.depart + fabric.profile().serialization(bytes));
    }

    #[test]
    fn ingress_contention_serialises_incoming_flows() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let dst = fabric.add_node("dst");
        let bytes = 1024 * 1024;
        let t1 = fabric.transfer(&a, &dst, bytes, SimTime::ZERO);
        let t2 = fabric.transfer(&b, &dst, bytes, SimTime::ZERO);
        // Both senders are free, but the destination can only drain one at a
        // time: the second arrival is one serialization later.
        assert!(t2.arrive >= t1.arrive + fabric.profile().serialization(bytes));
    }

    #[test]
    fn small_messages_barely_contend() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let t1 = fabric.transfer(&a, &b, 64, SimTime::ZERO);
        let t2 = fabric.transfer(&a, &b, 64, SimTime::ZERO);
        let gap = t2.arrive.saturating_since(t1.arrive);
        assert!(
            gap.as_nanos() < 50,
            "64-byte messages should not queue: {gap}"
        );
    }

    #[test]
    fn loopback_skips_wire_latency() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let t = fabric.transfer(&a, &a, 4096, SimTime::ZERO);
        assert_eq!(t.depart, t.arrive);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        fabric.transfer(&a, &b, 100, SimTime::ZERO);
        fabric.transfer(&a, &b, 200, SimTime::ZERO);
        assert_eq!(a.bytes_sent(), 300);
        assert_eq!(a.messages_sent(), 2);
        assert_eq!(b.bytes_received(), 300);
        assert_eq!(b.bytes_sent(), 0);
    }

    #[test]
    fn reset_contention_clears_busy_state() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let bytes = 8 * 1024 * 1024;
        fabric.transfer(&a, &b, bytes, SimTime::ZERO);
        a.reset_contention();
        b.reset_contention();
        let t = fabric.transfer(&a, &b, 64, SimTime::ZERO);
        assert!(t.arrive.as_micros_f64() < 10.0);
    }

    #[test]
    fn control_message_is_one_way_latency() {
        let fabric = Fabric::with_defaults();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let arrive = fabric.control_message(&a, &b, SimTime::from_micros(5));
        assert_eq!(
            arrive,
            SimTime::from_micros(5) + fabric.profile().one_way_latency
        );
    }

    #[test]
    fn notification_serialisation_orders_events() {
        let fabric = Fabric::with_defaults();
        let n = fabric.add_node("n");
        let d = SimDuration::from_nanos(500);
        let v1 = n.serialize_notification(SimTime::from_micros(1), d);
        let v2 = n.serialize_notification(SimTime::from_micros(1), d);
        let v3 = n.serialize_notification(SimTime::from_micros(1), d);
        assert_eq!(v1.as_nanos(), 1_500);
        assert_eq!(v2.as_nanos(), 2_000);
        assert_eq!(v3.as_nanos(), 2_500);
    }
}
