//! The remote-fork data path: lazy page faults over one-sided RDMA reads.
//!
//! A forked executor starts with an empty address space and a page map
//! pointing at its warm parent. Touching a cold page triggers a fault that
//! the child serves itself with a one-sided READ from the parent node — no
//! parent CPU involvement, exactly like any other one-sided verb on the
//! fabric. Faulting page-at-a-time would pay the full issue + round-trip
//! overhead per page, so the fault handler prefetches a *window* of
//! consecutive pages per fault: one doorbell, chained WQEs, one shared round
//! trip ([`NicProfile::fork_read_cost`]).
//!
//! [`PrefetchPlan`] turns a snapshot's page map into the deterministic
//! schedule of fault batches a child will serve: which pages each batch
//! covers and what it costs on a given NIC. The platform layer charges one
//! batch per early invocation, so a forked child's first invocations pay
//! fault latency and its steady state pays nothing.

use sim_core::SimDuration;

use crate::device::NicProfile;

/// One batch of the fault schedule: `pages` consecutive pages starting at
/// `start_page`, served by a single chained READ costing `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBatch {
    /// First page of the window.
    pub start_page: usize,
    /// Pages fetched by this batch.
    pub pages: usize,
    /// Link cost of the batch on the plan's NIC.
    pub cost: SimDuration,
}

/// Deterministic prefetch schedule for faulting a snapshot's page map over a
/// given NIC: fixed window size, pages in ascending order.
#[derive(Debug, Clone)]
pub struct PrefetchPlan {
    profile: NicProfile,
    total_pages: usize,
    window: usize,
    page_bytes: usize,
}

impl PrefetchPlan {
    /// Plan for `total_pages` pages of `page_bytes` each, prefetched
    /// `window` pages at a time over `profile`'s link. A zero window is
    /// clamped to one (a plan that can never make progress is useless).
    pub fn new(
        profile: &NicProfile,
        total_pages: usize,
        window: usize,
        page_bytes: usize,
    ) -> PrefetchPlan {
        PrefetchPlan {
            profile: profile.clone(),
            total_pages,
            window: window.max(1),
            page_bytes,
        }
    }

    /// Pages covered by the plan.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Prefetch window in pages.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Cost of one batch of `pages` pages.
    pub fn batch_cost(&self, pages: usize) -> SimDuration {
        self.profile.fork_read_cost(pages, self.page_bytes)
    }

    /// Number of fault batches the child will serve.
    pub fn batch_count(&self) -> usize {
        self.total_pages.div_ceil(self.window)
    }

    /// The full fault schedule, in the order the child serves it.
    pub fn batches(&self) -> Vec<FaultBatch> {
        (0..self.batch_count())
            .map(|i| {
                let start_page = i * self.window;
                let pages = self.window.min(self.total_pages - start_page);
                FaultBatch {
                    start_page,
                    pages,
                    cost: self.batch_cost(pages),
                }
            })
            .collect()
    }

    /// Total link cost of faulting the whole map in.
    pub fn total_cost(&self) -> SimDuration {
        self.batches().iter().map(|b| b.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PAGE_SIZE;

    fn profiles() -> [NicProfile; 2] {
        [NicProfile::mellanox_cx5_100g(), NicProfile::soft_roce()]
    }

    #[test]
    fn empty_map_costs_nothing() {
        for profile in profiles() {
            let plan = PrefetchPlan::new(&profile, 0, 32, PAGE_SIZE);
            assert_eq!(plan.batch_count(), 0);
            assert!(plan.batches().is_empty());
            assert!(plan.total_cost().is_zero());
            assert!(profile.fork_read_cost(0, PAGE_SIZE).is_zero());
        }
    }

    #[test]
    fn batching_amortises_the_per_page_overhead() {
        for profile in profiles() {
            let one_by_one = profile.fork_page_read_cost(PAGE_SIZE) * 32;
            let batched = profile.fork_read_cost(32, PAGE_SIZE);
            assert!(
                batched < one_by_one,
                "batched window must beat page-at-a-time faulting"
            );
            // The batch still pays full serialisation for every page: it can
            // never be cheaper than the wire time alone.
            assert!(batched > profile.serialization(32 * PAGE_SIZE));
        }
    }

    #[test]
    fn schedule_covers_every_page_exactly_once() {
        let plan = PrefetchPlan::new(&NicProfile::mellanox_cx5_100g(), 130, 32, PAGE_SIZE);
        let batches = plan.batches();
        assert_eq!(batches.len(), 5);
        let mut next = 0;
        for batch in &batches {
            assert_eq!(batch.start_page, next);
            next += batch.pages;
        }
        assert_eq!(next, 130);
        // The tail batch is short and cheaper than a full window.
        assert_eq!(batches[4].pages, 2);
        assert!(batches[4].cost < batches[0].cost);
        assert_eq!(
            plan.total_cost(),
            batches.iter().map(|b| b.cost).sum::<SimDuration>()
        );
    }

    #[test]
    fn fault_residue_is_microseconds_on_the_evaluation_nic() {
        // A minimal executor image (130 pages, 32-page windows) must fault in
        // within a handful of invocations' worth of µs — the fork tier's
        // residue, not a second cold start.
        let plan = PrefetchPlan::new(&NicProfile::mellanox_cx5_100g(), 130, 32, PAGE_SIZE);
        let total = plan.total_cost().as_micros_f64();
        assert!(
            (20.0..500.0).contains(&total),
            "full fault-in {total} µs should be µs-scale"
        );
        let batch = plan.batch_cost(32).as_micros_f64();
        assert!(
            batch < 100.0,
            "one window {batch} µs stays well under 100 µs"
        );
    }

    #[test]
    fn zero_window_is_clamped() {
        let plan = PrefetchPlan::new(&NicProfile::soft_roce(), 10, 0, PAGE_SIZE);
        assert_eq!(plan.window(), 1);
        assert_eq!(plan.batch_count(), 10);
    }
}
